"""Hybrid fragmentation of an SD store: FragMode1 vs FragMode2 (Fig. 7d).

The single Store document is split into a remainder fragment (everything
but the Items) and four Section-based item fragments, materialized two
ways:

* FragMode1 — every selected Item becomes an independent tiny document;
* FragMode2 — one document per fragment, shaped like the original.

The paper found FragMode1 "very inefficient" because the query processor
"has to parse hundreds of small documents ... slower than parsing a huge
document a single time". This example reproduces that comparison.

Run with:  python examples/hybrid_store_fragmodes.py
"""

from repro.bench.scenarios import CENTRAL_SITE
from repro.cluster import Cluster, Site
from repro.partix import FragMode, Partix
from repro.workloads import (
    build_store_collection,
    store_hybrid_fragmentation,
    store_queries,
)


def run_mode(frag_mode: FragMode, store) -> dict[str, float]:
    # Paper-faithful engine settings: no document-level index pruning
    # (eXist 2005 iterated collections) and the simulated per-document
    # access overhead — with modern index pruning instead, FragMode1's
    # per-item documents win; see benchmarks/test_ablations.py.
    cluster = Cluster.with_sites(5, use_indexes=False, per_document_overhead=0.0025)
    cluster.add(Site(CENTRAL_SITE, use_indexes=False, per_document_overhead=0.0025))
    partix = Partix(cluster)
    partix.publish(store, store_hybrid_fragmentation(4), frag_mode=frag_mode)
    partix.publish_centralized(store, CENTRAL_SITE)
    times = {}
    for query in store_queries():
        result = partix.execute(query.text)
        times[query.qid] = result.parallel_seconds
    times["(centralized)"] = sum(
        partix.execute_centralized(q.text, CENTRAL_SITE).parallel_seconds
        for q in store_queries()
    )
    return times


def main() -> None:
    store = build_store_collection(400, item_kind="small", seed=5)
    mode1 = run_mode(FragMode.INDEPENDENT_DOCUMENTS, store)
    mode2 = run_mode(FragMode.SINGLE_DOCUMENT, store)

    print(f"{'query':<14} {'FragMode1':>10} {'FragMode2':>10} {'mode2 wins':>11}")
    for qid in [f"Q{i}" for i in range(1, 12)]:
        ratio = mode1[qid] / mode2[qid] if mode2[qid] else float("inf")
        print(
            f"{qid:<14} {mode1[qid] * 1000:>8.1f}ms {mode2[qid] * 1000:>8.1f}ms"
            f" {ratio:>10.2f}x"
        )
    total1 = sum(v for k, v in mode1.items() if k.startswith("Q"))
    total2 = sum(v for k, v in mode2.items() if k.startswith("Q"))
    winner = "FragMode2" if total2 < total1 else "FragMode1"
    factor = max(total1, total2) / max(min(total1, total2), 1e-9)
    print(
        f"\nworkload total: FragMode1 {total1 * 1000:.0f}ms,"
        f" FragMode2 {total2 * 1000:.0f}ms"
        f" -> {winner} is {factor:.1f}x faster overall"
        " (paper: FragMode2 wins under a document-iterating engine)"
    )


if __name__ == "__main__":
    main()
