"""Automatic fragmentation design (the paper's future-work methodology).

Feeds the advisor a collection and a weighted workload; it picks the
fragmentation type, derives the fragments, verifies the §3.3 correctness
rules, and explains itself. The recommended design is then published and
exercised against a centralized baseline.

Run with:  python examples/design_advisor.py
"""

from repro.bench.scenarios import CENTRAL_SITE
from repro.cluster import Cluster, Site
from repro.partix import FragmentationAdvisor, Partix, WorkloadQuery
from repro.workloads import build_items_collection, items_queries


def main() -> None:
    items = build_items_collection(150, seed=11)
    # Weight the workload: the Section-selective queries dominate.
    workload = [
        WorkloadQuery(q.text, frequency=4.0 if q.has("matches-fragmentation") else 1.0)
        for q in items_queries()
    ]

    advisor = FragmentationAdvisor(items, workload, site_count=4)
    design = advisor.recommend()

    print(f"recommended design: {design.kind}")
    print(design.fragmentation.describe())
    print("rationale:")
    for line in design.rationale:
        print(f"  - {line}")

    cluster = Cluster.with_sites(4)
    cluster.add(Site(CENTRAL_SITE))
    partix = Partix(cluster)
    partix.publish(items, design.fragmentation, allocations=design.allocations)
    partix.publish_centralized(items, CENTRAL_SITE)

    print("\nworkload over the recommended design:")
    for query in items_queries():
        distributed = partix.execute(query.text)
        centralized = partix.execute_centralized(query.text, CENTRAL_SITE)
        speedup = centralized.parallel_seconds / max(
            distributed.parallel_seconds, 1e-9
        )
        fragments = ",".join(distributed.plan.fragment_names) or "(none)"
        print(
            f"  {query.qid}: {speedup:5.2f}x"
            f"  fragments={fragments}"
        )


if __name__ == "__main__":
    main()
