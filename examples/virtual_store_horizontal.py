"""The ItemsSHor experiment in miniature (paper Figure 7a).

Builds the small-document items database at a scaled size, fragments it
by Section into 2, 4 and 8 fragments, and prints the per-query speedups
against a centralized site — the shape the paper reports: text-search and
aggregation queries (Q5-Q8) benefit the most, and more fragments help the
parallelizable queries.

Run with:  python examples/virtual_store_horizontal.py
"""

from repro.bench import build_items_scenario, format_scenario_table


def main() -> None:
    for fragment_count in (2, 4, 8):
        scenario = build_items_scenario(
            kind="small",
            paper_mb=20,  # the paper's 20MB point, scaled down
            fragment_count=fragment_count,
            scale=1 / 100,
        )
        result = scenario.run(repetitions=2)
        print(format_scenario_table(result))
        best = max(result.runs, key=lambda run: run.speedup)
        print(
            f"best speedup: {best.qid} at {best.speedup:.2f}x"
            f" ({best.description})\n"
        )


if __name__ == "__main__":
    main()
