"""Quickstart: fragment a collection, verify it, and query it.

Builds a small Citems collection (one XML document per store item),
splits it horizontally by Section over a two-site cluster, checks the
paper's correctness rules, and runs a few queries — comparing the
distributed answers and times against a centralized baseline.

Run with:  python examples/quickstart.py
"""

from repro.bench.scenarios import CENTRAL_SITE
from repro.cluster import Cluster, Site
from repro.partix import (
    FragmentationSchema,
    HorizontalFragment,
    Partix,
    verify_fragmentation,
)
from repro.paths import eq, ne
from repro.workloads import build_items_collection


def main() -> None:
    # 1. A collection of 200 Item documents (~2KB each).
    items = build_items_collection(200, kind="small", seed=1)
    print(f"collection {items.name!r}: {len(items)} documents")

    # 2. A fragmentation design: CD items vs everything else.
    design = FragmentationSchema(
        "Citems",
        [
            HorizontalFragment(
                "F_cd", "Citems", predicate=eq("/Item/Section", "CD")
            ),
            HorizontalFragment(
                "F_rest", "Citems", predicate=ne("/Item/Section", "CD")
            ),
        ],
        root_label="Item",
    )
    print(design.describe())

    # 3. Verify the §3.3 correctness rules before distributing anything.
    report = verify_fragmentation(design, items)
    print(
        f"correctness: complete={report.complete}"
        f" disjoint={report.disjoint} reconstructible={report.reconstructible}"
    )

    # 4. Publish over a two-site cluster (plus a baseline site).
    cluster = Cluster.with_sites(2)
    cluster.add(Site(CENTRAL_SITE))
    partix = Partix(cluster)
    publication = partix.publish(items, design)
    for fragment in publication.fragments:
        print(
            f"  {fragment.fragment}: {fragment.documents} docs,"
            f" {fragment.bytes / 1000:.1f}KB at {fragment.site}"
        )
    partix.publish_centralized(items, CENTRAL_SITE)

    # 5. Run queries. The decomposer localizes the first one to F_cd only.
    queries = [
        (
            "selection matching the fragmentation",
            'for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" return $i/Name/text()',
        ),
        (
            "text search + aggregation (the paper's best class)",
            'count(for $i in collection("Citems")/Item'
            ' where contains($i/Description, "good") return $i)',
        ),
    ]
    for description, query in queries:
        distributed = partix.execute(query)
        centralized = partix.execute_centralized(query, CENTRAL_SITE)
        first_line = distributed.result_text.splitlines()[:1]
        print(f"\n{description}")
        print(f"  fragments used: {distributed.plan.fragment_names}")
        print(f"  answer (first line): {first_line}")
        print(
            f"  centralized {centralized.parallel_seconds * 1000:.1f}ms vs"
            f" fragmented {distributed.parallel_seconds * 1000:.1f}ms"
            f" (x{centralized.parallel_seconds / distributed.parallel_seconds:.2f})"
        )


if __name__ == "__main__":
    main()
