"""Vertical fragmentation of XBench articles (paper Figure 7c).

The articles split into prolog / body / epilog fragments. Queries touching
a single fragment are rewritten to run on that fragment alone (cheap);
queries spanning fragments force the ID-join reconstruction (expensive) —
exactly the trade-off the paper's §5 discusses.

Run with:  python examples/xbench_vertical.py
"""

from repro.bench.scenarios import CENTRAL_SITE
from repro.cluster import Cluster, Site
from repro.partix import Partix
from repro.workloads import (
    build_xbench_collection,
    xbench_queries,
    xbench_vertical_fragmentation,
)


def main() -> None:
    papers = build_xbench_collection(8, doc_bytes=40_000, seed=7)
    cluster = Cluster.with_sites(3)
    cluster.add(Site(CENTRAL_SITE))
    partix = Partix(cluster)
    partix.publish(papers, xbench_vertical_fragmentation())
    partix.publish_centralized(papers, CENTRAL_SITE)

    print(f"{len(papers)} articles published into 3 vertical fragments\n")
    print(f"{'query':<5} {'plan':<28} {'central':>9} {'fragmented':>11}")
    for query in xbench_queries():
        distributed = partix.execute(query.text)
        centralized = partix.execute_centralized(query.text, CENTRAL_SITE)
        if distributed.plan.composition.kind == "reconstruct":
            plan = f"join over {len(distributed.plan.subqueries)} fragments"
        else:
            plan = ", ".join(distributed.plan.fragment_names)
        print(
            f"{query.qid:<5} {plan:<28}"
            f" {centralized.parallel_seconds * 1000:>7.1f}ms"
            f" {distributed.parallel_seconds * 1000:>9.1f}ms"
            f"   {query.description}"
        )
    print(
        "\nsingle-fragment queries run on one small fragment; multi-fragment"
        "\nqueries pay the ID-join — the paper's vertical trade-off."
    )


if __name__ == "__main__":
    main()
