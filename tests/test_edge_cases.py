"""Cross-cutting edge cases: unicode, empty inputs, deep structures,
disk-backed distributed execution, and failure injection."""

import pytest

from repro.cluster import Cluster, Site
from repro.datamodel import Collection, XMLNode, doc, elem
from repro.engine import XMLEngine
from repro.errors import FragmentationError, XMLSyntaxError
from repro.partix import (
    FragmentationSchema,
    HorizontalFragment,
    MiniXDriver,
    Partix,
    VerticalFragment,
)
from repro.paths import eq, evaluate_path, ne
from repro.xmltext import parse_xml, serialize


class TestUnicode:
    def test_unicode_content_round_trips(self):
        document = doc(elem("ação", elem("título", "café São Paulo — ünïcødé ★")))
        assert parse_xml(serialize(document)).tree_equal(document)

    def test_unicode_in_queries(self):
        engine = XMLEngine("u")
        engine.store_document("c", serialize(doc(elem("a", elem("b", "café")))), name="d.xml")
        result = engine.execute(
            'for $x in collection("c")/a where contains($x/b, "café") return $x/b/text()'
        )
        assert result.result_text == "café"

    def test_unicode_fulltext_tokens(self):
        engine = XMLEngine("u2")
        engine.store_document("c", "<a>resume building</a>", name="d.xml")
        # ASCII tokenization only; non-ASCII needles cannot prune but must
        # not crash or lose results.
        result = engine.execute(
            'count(for $x in collection("c")/a where contains($x, "resume") return $x)'
        )
        assert result.result_text == "1"


class TestDeepAndWide:
    def test_deep_nesting_parses(self):
        depth = 300
        text = "".join(f"<n{i}>" for i in range(depth))
        text += "x"
        text += "".join(f"</n{i}>" for i in reversed(range(depth)))
        document = parse_xml(text)
        assert document.node_count() == depth + 1

    def test_wide_element_paths(self):
        root = elem("r", *[elem("c", str(i)) for i in range(500)])
        document = doc(root)
        assert len(evaluate_path("/r/c", document)) == 500
        assert evaluate_path("/r/c[500]", document)[0].text_value() == "499"

    def test_projection_of_wide_document(self):
        from repro.algebra import Projection

        root = elem("r", elem("keep", *[elem("x", str(i)) for i in range(200)]),
                    elem("drop", *[elem("y", str(i)) for i in range(200)]))
        document = doc(root, name="w.xml")
        produced = Projection("/r", prune=["/r/drop"]).apply(document)[0]
        assert produced.root.first_child("drop") is None
        # (element_children: the cut-point annotation adds an attribute)
        assert len(produced.root.first_child("keep").element_children()) == 200


class TestEmptyInputs:
    def test_empty_collection_query(self):
        engine = XMLEngine("e")
        engine.create_collection("c")
        result = engine.execute('count(collection("c")/a)')
        assert result.result_text == "0"

    def test_fragmenting_empty_collection(self):
        cluster = Cluster.with_sites(2)
        partix = Partix(cluster)
        design = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/a/b", "x")),
            HorizontalFragment("F2", "c", predicate=ne("/a/b", "x")),
        ], root_label="a")
        report = partix.publish(Collection("c"), design)
        assert report.total_documents == 0
        result = partix.execute('count(collection("c")/a)')
        assert result.result_text == "0"

    def test_vertical_fragment_with_no_matches_anywhere(self):
        cluster = Cluster.with_sites(2)
        partix = Partix(cluster)
        docs = [doc(elem("a", elem("p", "1")), name="d.xml")]
        design = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/a/p"),
            VerticalFragment("F2", "c", path="/a/q"),  # never present
        ], root_label="a")
        partix.publish(Collection("c", docs), design)
        result = partix.execute('collection("c")/a/p/text()')
        assert result.result_text == "1"


class TestDiskBackedCluster:
    def test_distributed_execution_survives_engine_restart(self, tmp_path):
        site_dir = tmp_path / "site0"
        engine = XMLEngine("site0", storage_dir=str(site_dir))
        cluster = Cluster([Site("site0", driver=MiniXDriver(engine))])
        partix = Partix(cluster)
        docs = [doc(elem("Item", elem("Section", "CD"), elem("Code", f"I{i}")),
                    name=f"d{i}.xml") for i in range(4)]
        design = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "c", predicate=ne("/Item/Section", "CD")),
        ], root_label="Item")
        partix.publish(Collection("c", docs), design)

        # "Restart" the site: a fresh engine over the same directory.
        reborn = XMLEngine("site0", storage_dir=str(site_dir))
        result = reborn.execute('count(collection("F1")/Item)')
        assert result.result_text == "4"


class TestFailureInjection:
    def test_malformed_stored_document_surfaces_clearly(self):
        engine = XMLEngine("f")
        engine.create_collection("c")
        stored = (
            __import__("repro.engine.store", fromlist=["StoredDocument"])
            .StoredDocument("bad.xml", b"<a><unclosed></a>")
        )
        engine.store.collection("c").put(
            stored,
            document=doc(elem("placeholder")),  # skip ingest-time parse
        )
        # Drop the binary table so access takes the text-parse fallback
        # (the situation of an old on-disk store holding corrupt bytes).
        stored.binary = None
        with pytest.raises(XMLSyntaxError):
            engine.execute('collection("c")/a')

    def test_publishing_to_missing_site_fails(self, items_collection):
        from repro.partix import DataPublisher, FragmentAllocation

        cluster = Cluster.with_sites(1)
        publisher = DataPublisher(cluster)
        design = FragmentationSchema("Citems", [
            HorizontalFragment("F1", "Citems", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "Citems", predicate=ne("/Item/Section", "CD")),
        ], root_label="Item")
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            publisher.publish(items_collection, design, allocations=[
                FragmentAllocation("F1", "site0", "F1"),
                FragmentAllocation("F2", "ghost-site", "F2"),
            ])

    def test_empty_cluster_publish_fails(self, items_collection):
        from repro.partix import DataPublisher

        publisher = DataPublisher(Cluster())
        design = FragmentationSchema("Citems", [
            HorizontalFragment("F1", "Citems", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "Citems", predicate=ne("/Item/Section", "CD")),
        ], root_label="Item")
        with pytest.raises(FragmentationError, match="no sites"):
            publisher.publish(items_collection, design)


class TestAnnotationTextSafety:
    def test_strip_annotation_text_only_touches_attributes(self):
        from repro.partix.composer import strip_annotation_text

        text = '<a pxid="3" pxparent="1" pxorigin="d.xml" keep="pxid">body pxid text</a>'
        stripped = strip_annotation_text(text)
        assert stripped == '<a keep="pxid">body pxid text</a>'

    def test_attribute_nodes_survive_constructor_copies(self):
        # Regression guard: constructor copies must not lose attributes.
        engine = XMLEngine("ann")
        engine.store_document("c", '<a id="9"><b>x</b></a>', name="d.xml")
        result = engine.execute(
            'for $x in collection("c")/a return element w { $x/@id }'
        )
        assert result.result_text == '<w id="9"/>'
