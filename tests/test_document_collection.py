"""Unit tests for documents and collections (SD/MD, homogeneity)."""

import pytest

from repro.datamodel import (
    Collection,
    RepositoryKind,
    XMLDocument,
    XMLNode,
    doc,
    elem,
)
from repro.xschema import ChildDecl, Schema, SimpleType


class TestDocument:
    def test_root_must_be_element(self):
        with pytest.raises(ValueError):
            XMLDocument(XMLNode.text("x"))

    def test_root_must_be_detached(self):
        parent = elem("a", elem("b"))
        with pytest.raises(ValueError):
            XMLDocument(parent.children[0])

    def test_ids_assigned_on_creation(self):
        document = doc(elem("a", elem("b")))
        assert [n.node_id for n in document.nodes()] == [0, 1]

    def test_assign_ids_false_preserves(self):
        original = doc(elem("a", elem("b")))
        clone_root = original.root.clone(deep=True)
        fragment = XMLDocument(clone_root, assign_ids=False)
        assert [n.node_id for n in fragment.nodes()] == [0, 1]

    def test_origin_defaults_to_name(self):
        document = doc(elem("a"), name="d.xml")
        assert document.origin == "d.xml"

    def test_find_by_id(self):
        document = doc(elem("a", elem("b"), elem("c")))
        node = document.find_by_id(2)
        assert node is not None and node.label == "c"
        assert document.find_by_id(99) is None

    def test_clone_preserves_origin_and_ids(self):
        document = doc(elem("a", elem("b")), name="d.xml")
        copy = document.clone()
        assert copy.origin == "d.xml"
        assert copy.tree_equal(document, compare_ids=True)

    def test_node_count(self):
        assert doc(elem("a", elem("b", "t"))).node_count() == 3


class TestCollection:
    def test_anonymous_documents_get_names(self):
        collection = Collection("c")
        document = collection.add(doc(elem("a")))
        assert document.name is not None and document.name.startswith("c-")

    def test_duplicate_names_rejected(self):
        collection = Collection("c")
        collection.add(doc(elem("a"), name="x.xml"))
        with pytest.raises(ValueError, match="duplicate"):
            collection.add(doc(elem("a"), name="x.xml"))

    def test_sd_holds_single_document(self):
        collection = Collection("c", kind=RepositoryKind.SINGLE_DOCUMENT)
        collection.add(doc(elem("a")))
        with pytest.raises(ValueError, match="single document"):
            collection.add(doc(elem("a")))

    def test_membership_and_get(self):
        collection = Collection("c", [doc(elem("a"), name="x.xml")])
        assert "x.xml" in collection
        assert collection.get("x.xml") is not None
        assert collection.get("y.xml") is None

    def test_remove(self):
        collection = Collection("c", [doc(elem("a"), name="x.xml")])
        collection.remove("x.xml")
        assert len(collection) == 0

    def test_weak_homogeneity_by_root_label(self):
        collection = Collection("c", [doc(elem("a")), doc(elem("a"))])
        assert collection.is_homogeneous()
        collection.add(doc(elem("b")))
        assert not collection.is_homogeneous()

    def test_declared_homogeneity_validates(self):
        schema = Schema("s")
        schema.element("leaf", content=SimpleType.STRING)
        schema.element("root", children=[ChildDecl("leaf")])
        good = doc(elem("root", elem("leaf", "x")))
        bad = doc(elem("root", elem("leaf", "x"), elem("leaf", "y")))
        collection = Collection("c", [good], schema=schema, root_type="root")
        assert collection.is_homogeneous()
        collection.add(bad)
        assert not collection.is_homogeneous()

    def test_total_nodes(self):
        collection = Collection("c", [doc(elem("a", elem("b"))), doc(elem("a"))])
        assert collection.total_nodes() == 3

    def test_empty_collection_is_homogeneous(self):
        assert Collection("c").is_homogeneous()
