"""Unit tests for the MiniX storage engine: store, indexes, planner, exec."""

import pytest

from repro.datamodel import doc, elem
from repro.engine import (
    DocumentStore,
    Planner,
    XMLEngine,
    serialize_sequence,
    tokenize_text,
)
from repro.errors import (
    CollectionNotFoundError,
    DocumentNotFoundError,
    StorageError,
)
from repro.paths import And, Or, contains, empty, eq, exists, ne


def make_item(i, section, description):
    return doc(
        elem(
            "Item",
            elem("Code", f"I{i}"),
            elem("Section", section),
            elem("Description", description),
        ),
        name=f"item{i}.xml",
    )


@pytest.fixture
def engine():
    eng = XMLEngine("test")
    for i in range(10):
        eng.store_document(
            "items",
            make_item(i, "CD" if i % 2 == 0 else "DVD",
                      "a good thing" if i < 4 else "plain stuff"),
        )
    return eng


class TestDocumentStore:
    def test_create_and_drop(self):
        store = DocumentStore()
        store.create_collection("c")
        assert store.has_collection("c")
        store.drop_collection("c")
        assert not store.has_collection("c")

    def test_duplicate_collection_rejected(self):
        store = DocumentStore()
        store.create_collection("c")
        with pytest.raises(StorageError):
            store.create_collection("c")

    def test_missing_collection(self):
        with pytest.raises(CollectionNotFoundError):
            DocumentStore().collection("nope")

    def test_store_and_load_document(self):
        store = DocumentStore()
        store.create_collection("c")
        store.store_document("c", doc(elem("a", "x"), name="d.xml"))
        loaded = store.load_document("c", "d.xml")
        assert loaded.data == b"<a>x</a>"
        assert loaded.origin == "d.xml"

    def test_store_text_document(self):
        store = DocumentStore()
        store.create_collection("c")
        stored = store.store_document("c", "<a/>", name="d.xml")
        assert stored.size == 4

    def test_anonymous_names_generated(self):
        store = DocumentStore()
        store.create_collection("c")
        stored = store.store_document("c", "<a/>")
        assert stored.name.startswith("c-")

    def test_remove_document(self):
        store = DocumentStore()
        store.create_collection("c")
        store.store_document("c", "<a/>", name="d.xml")
        store.remove_document("c", "d.xml")
        with pytest.raises(DocumentNotFoundError):
            store.load_document("c", "d.xml")

    def test_replace_updates_indexes(self):
        store = DocumentStore()
        collection = store.create_collection("c")
        store.store_document("c", "<a>alpha</a>", name="d.xml")
        store.store_document("c", "<a>bravo</a>", name="d.xml")
        assert collection.fulltext.lookup_substring("alpha") == set()
        assert collection.fulltext.lookup_substring("bravo") == {"d.xml"}

    def test_disk_persistence_round_trip(self, tmp_path):
        store = DocumentStore(storage_dir=tmp_path)
        store.create_collection("c")
        store.store_document("c", "<a>x</a>", name="d.xml", origin="orig.xml")
        reloaded = DocumentStore(storage_dir=tmp_path)
        assert reloaded.has_collection("c")
        loaded = reloaded.load_document("c", "d.xml")
        assert loaded.data == b"<a>x</a>"
        assert loaded.origin == "orig.xml"

    def test_disk_drop_removes_files(self, tmp_path):
        store = DocumentStore(storage_dir=tmp_path)
        store.create_collection("c")
        store.store_document("c", "<a/>", name="d.xml")
        store.drop_collection("c")
        assert not (tmp_path / "c").exists()


class TestIndexes:
    def test_tokenize(self):
        assert tokenize_text("Hello, WORLD-42!") == {"hello", "world", "42"}

    def test_fulltext_substring_match(self, engine):
        collection = engine.store.collection("items")
        hits = collection.fulltext.lookup_substring("good")
        assert hits == {f"item{i}.xml" for i in range(4)}

    def test_fulltext_matches_inside_tokens(self):
        store = DocumentStore()
        collection = store.create_collection("c")
        store.store_document("c", "<a>goodness gracious</a>", name="d.xml")
        assert collection.fulltext.lookup_substring("good") == {"d.xml"}

    def test_fulltext_multi_token_needle_intersects(self):
        store = DocumentStore()
        collection = store.create_collection("c")
        store.store_document("c", "<a>alpha bravo</a>", name="1.xml")
        store.store_document("c", "<a>alpha charlie</a>", name="2.xml")
        assert collection.fulltext.lookup_substring("alpha bravo") == {"1.xml"}

    def test_value_index_lookup(self, engine):
        collection = engine.store.collection("items")
        assert len(collection.values.lookup("Section", "CD")) == 5
        assert collection.values.covers_label("Section")
        assert not collection.values.covers_label("Nope")

    def test_value_index_attributes(self):
        store = DocumentStore()
        collection = store.create_collection("c")
        store.store_document("c", '<a id="7"/>', name="d.xml")
        assert collection.values.lookup("@id", "7") == {"d.xml"}

    def test_element_index(self, engine):
        collection = engine.store.collection("items")
        assert len(collection.elements.lookup("Description")) == 10
        assert collection.elements.lookup("PictureList") == set()


class TestPlanner:
    def test_no_predicate_scans_all(self, engine):
        collection = engine.store.collection("items")
        names, lookups = Planner().candidate_documents(collection, None)
        assert len(names) == 10 and lookups == 0

    def test_equality_uses_value_index(self, engine):
        collection = engine.store.collection("items")
        names, lookups = Planner().candidate_documents(
            collection, eq("/Item/Section", "CD")
        )
        assert len(names) == 5 and lookups == 1

    def test_contains_uses_fulltext(self, engine):
        collection = engine.store.collection("items")
        names, _ = Planner().candidate_documents(
            collection, contains("/Item/Description", "good")
        )
        assert len(names) == 4

    def test_conjunction_intersects(self, engine):
        collection = engine.store.collection("items")
        predicate = And(
            (eq("/Item/Section", "CD"), contains("/Item/Description", "good"))
        )
        names, _ = Planner().candidate_documents(collection, predicate)
        assert set(names) == {"item0.xml", "item2.xml"}

    def test_disjunction_unions(self, engine):
        collection = engine.store.collection("items")
        predicate = Or((eq("/Item/Section", "CD"), eq("/Item/Section", "DVD")))
        names, _ = Planner().candidate_documents(collection, predicate)
        assert len(names) == 10

    def test_unprunable_atom_falls_back(self, engine):
        collection = engine.store.collection("items")
        names, _ = Planner().candidate_documents(
            collection, ne("/Item/Section", "CD")
        )
        assert len(names) == 10

    def test_exists_uses_element_index(self, engine):
        collection = engine.store.collection("items")
        names, _ = Planner().candidate_documents(
            collection, exists("/Item/PictureList")
        )
        assert names == []

    def test_empty_predicate_not_prunable(self, engine):
        collection = engine.store.collection("items")
        names, _ = Planner().candidate_documents(
            collection, empty("/Item/PictureList")
        )
        assert len(names) == 10

    def test_indexes_can_be_disabled(self, engine):
        collection = engine.store.collection("items")
        names, lookups = Planner(use_indexes=False).candidate_documents(
            collection, eq("/Item/Section", "CD")
        )
        assert len(names) == 10 and lookups == 0


class TestExecution:
    def test_simple_query(self, engine):
        result = engine.execute(
            'for $i in collection("items")/Item where $i/Section = "CD"'
            " return $i/Code/text()"
        )
        assert result.result_text.split() == ["I0", "I2", "I4", "I6", "I8"]

    def test_index_pruning_limits_parsing(self, engine):
        result = engine.execute(
            'count(for $i in collection("items")/Item'
            ' where contains($i/Description, "good") return $i)'
        )
        assert result.result_text == "4"
        assert result.documents_parsed == 4
        assert result.documents_pruned == 6

    def test_stats_accumulate(self, engine):
        engine.execute('collection("items")/Item')
        engine.execute('collection("items")/Item')
        assert engine.stats.queries_executed == 2
        assert engine.stats.documents_parsed == 20

    def test_default_collection(self, engine):
        result = engine.execute(
            "count(collection()/Item)", default_collection="items"
        )
        assert result.result_text == "10"

    def test_default_collection_missing(self, engine):
        from repro.errors import XQueryEvaluationError

        with pytest.raises(XQueryEvaluationError):
            engine.execute("count(collection()/Item)")

    def test_unknown_collection(self, engine):
        with pytest.raises(StorageError):
            engine.execute('collection("nope")/Item')

    def test_extra_predicate_prunes_more(self, engine):
        result = engine.execute(
            'count(collection("items")/Item)',
            extra_predicate=eq("/Item/Section", "CD"),
        )
        # The extra predicate is a pruning hint: only CD docs are scanned,
        # so only they are counted.
        assert result.documents_parsed == 5

    def test_parse_cache_off_by_default(self, engine):
        engine.execute('collection("items")/Item')
        engine.execute('collection("items")/Item')
        assert engine.stats.documents_parsed == 20

    def test_parse_cache_on(self):
        eng = XMLEngine("cached", cache_parsed=True)
        eng.store_document("c", "<a>x</a>", name="d.xml")
        eng.execute('collection("c")/a')
        eng.execute('collection("c")/a')
        assert eng.stats.documents_parsed == 1

    def test_result_bytes_measures_serialized_output(self, engine):
        result = engine.execute(
            'for $i in collection("items")/Item where $i/Code = "I3" return $i'
        )
        assert result.result_bytes == len(result.result_text.encode())
        assert "<Item>" in result.result_text

    def test_serialize_sequence_mixes_nodes_and_atomics(self):
        from repro.datamodel import XMLNode

        text = serialize_sequence([XMLNode.element("a"), 3, "x", True])
        assert text == "<a/>\n3\nx\ntrue"

    def test_document_count_and_bytes(self, engine):
        assert engine.document_count("items") == 10
        assert engine.collection_bytes("items") > 0

    def test_drop_collection_clears_cache(self):
        eng = XMLEngine("cached", cache_parsed=True)
        eng.store_document("c", "<a/>", name="d.xml")
        eng.execute('collection("c")/a')
        eng.drop_collection("c")
        assert not eng.has_collection("c")


class TestCacheHitAccounting:
    """Regression: cache hits must still pay per-document accounting."""

    def _engine(self) -> XMLEngine:
        eng = XMLEngine(
            "hit", cache_parsed=True, per_document_overhead=0.01,
            use_indexes=False,
        )
        for i in range(5):
            eng.store_document("c", f"<a>{i}</a>", name=f"d{i}.xml")
        return eng

    def test_cache_hits_counted_and_overhead_charged(self):
        eng = self._engine()
        cold = eng.execute('collection("c")/a')
        warm = eng.execute('collection("c")/a')
        assert cold.cache_hits == 0
        assert cold.documents_parsed == 5
        assert warm.cache_hits == 5
        assert warm.documents_parsed == 0
        # The simulated per-document access cost applies on hits too:
        # a resident tree still costs catalog/locking/buffer work.
        assert warm.simulated_overhead_seconds == pytest.approx(0.05)
        assert warm.elapsed_seconds >= 0.05
        assert eng.stats.cache_hits == 5
        assert eng.stats.simulated_overhead_seconds == pytest.approx(0.10)

    def test_direct_load_parsed_hit_updates_shared_stats(self):
        eng = self._engine()
        eng.load_parsed("c", "d0.xml")
        eng.load_parsed("c", "d0.xml")
        assert eng.stats.documents_parsed == 1
        assert eng.stats.cache_hits == 1
        assert eng.stats.simulated_overhead_seconds == pytest.approx(0.02)


class TestMissingCollectionContract:
    """Regression: engine raises, driver returns 0 — one explicit contract."""

    def test_engine_raises_clear_storage_error(self):
        eng = XMLEngine("strict")
        with pytest.raises(CollectionNotFoundError, match="no collection 'ghost'"):
            eng.document_count("ghost")
        with pytest.raises(StorageError, match="'ghost'"):
            eng.collection_bytes("ghost")

    def test_driver_boundary_is_lenient(self):
        from repro.partix.driver import MiniXDriver

        driver = MiniXDriver(XMLEngine("lenient"))
        assert driver.document_count("ghost") == 0
        assert driver.collection_bytes("ghost") == 0
        driver.store_document("real", "<a/>", name="d.xml")
        assert driver.document_count("real") == 1
        assert driver.collection_bytes("real") > 0
        with pytest.raises(StorageError):
            driver.engine.document_count("ghost")


class TestSimulatedOverhead:
    def test_overhead_added_to_elapsed_not_slept(self):
        import time

        engine = XMLEngine("oh", per_document_overhead=0.05, use_indexes=False)
        for i in range(10):
            engine.store_document("c", f"<a>{i}</a>", name=f"d{i}.xml")
        started = time.perf_counter()
        result = engine.execute('count(collection("c")/a)')
        wall = time.perf_counter() - started
        assert result.simulated_overhead_seconds == pytest.approx(0.5)
        assert result.elapsed_seconds >= 0.5
        assert wall < 0.25  # the overhead was simulated, not slept
        assert result.measured_seconds < 0.25

    def test_overhead_defaults_to_zero(self):
        engine = XMLEngine("oh0")
        engine.store_document("c", "<a/>", name="d.xml")
        result = engine.execute('collection("c")/a')
        assert result.simulated_overhead_seconds == 0.0

    def test_overhead_tracked_in_stats(self):
        engine = XMLEngine("oh2", per_document_overhead=0.01, use_indexes=False)
        engine.store_document("c", "<a/>", name="d.xml")
        engine.execute('collection("c")/a')
        engine.execute('collection("c")/a')
        assert engine.stats.simulated_overhead_seconds == pytest.approx(0.02)


class TestRangeIndex:
    def _collection(self):
        store = DocumentStore()
        collection = store.create_collection("c")
        rows = [("10", "a"), ("25", "b"), ("300", "c"), ("zebra", "d"), ("apple", "e")]
        for value, tag in rows:
            store.store_document(
                "c", f"<r><v>{value}</v></r>", name=f"{tag}.xml"
            )
        return collection

    def test_numeric_range_lookup(self):
        collection = self._collection()
        # numeric entries compare numerically; non-numeric ones as strings
        hits = collection.ranges.lookup("v", ">", 20)
        assert {"b.xml", "c.xml"} <= hits
        assert "a.xml" not in hits

    def test_numeric_probe_includes_string_comparisons(self):
        collection = self._collection()
        # "zebra" > "20" lexicographically: must be included for soundness
        hits = collection.ranges.lookup("v", ">", 20)
        assert "d.xml" in hits

    def test_string_range_lookup(self):
        collection = self._collection()
        hits = collection.ranges.lookup("v", ">=", "apple")
        assert "e.xml" in hits and "d.xml" in hits

    def test_covers_label(self):
        collection = self._collection()
        assert collection.ranges.covers_label("v")
        assert not collection.ranges.covers_label("w")

    def test_remove_document(self):
        collection = self._collection()
        collection.remove("c.xml")
        assert "c.xml" not in collection.ranges.lookup("v", ">", 20)

    def test_planner_uses_range_index(self):
        engine = XMLEngine("rg")
        for i in range(10):
            engine.store_document(
                "c", f"<Item><Release>200{i % 6}-01-01</Release><Code>I{i}</Code></Item>",
                name=f"d{i}.xml",
            )
        result = engine.execute(
            'for $i in collection("c")/Item'
            ' where $i/Release >= "2004-01-01" return $i/Code/text()'
        )
        # Only matching docs are parsed (range-pruned).
        assert result.documents_parsed == result.result_text.count("I")
        assert result.documents_pruned > 0

    def test_range_lookup_soundness_against_evaluation(self):
        from repro.paths import cmp

        engine = XMLEngine("snd")
        values = ["5", "50", "500", "abc", "2004-06-01", "-3.5"]
        for i, value in enumerate(values):
            engine.store_document("c", f"<r><v>{value}</v></r>", name=f"{i}.xml")
        collection = engine.store.collection("c")
        for op in ("<", "<=", ">", ">="):
            for probe in (10, "2004-01-01", "b", -1):
                hits = collection.ranges.lookup("v", op, probe)
                predicate = cmp("/r/v", op, probe)
                for i, value in enumerate(values):
                    document = engine.load_parsed("c", f"{i}.xml")
                    if predicate.evaluate(document):
                        assert f"{i}.xml" in hits, (op, probe, value)


class TestPathIndex:
    def _collection(self):
        store = DocumentStore()
        collection = store.create_collection("c")
        store.store_document(
            "c", "<Store><Items><Item><PictureList/></Item></Items></Store>",
            name="with.xml",
        )
        store.store_document(
            "c", "<Store><Items><Item><Code>1</Code></Item></Items></Store>",
            name="without.xml",
        )
        return collection

    def test_exact_lookup(self):
        collection = self._collection()
        hits = collection.paths.lookup_exact(
            ("Store", "Items", "Item", "PictureList")
        )
        assert hits == {"with.xml"}

    def test_suffix_lookup(self):
        collection = self._collection()
        hits = collection.paths.lookup_suffix(("Item", "PictureList"))
        assert hits == {"with.xml"}
        assert collection.paths.lookup_suffix(("Item",)) == {
            "with.xml", "without.xml"
        }

    def test_attribute_paths_indexed(self):
        store = DocumentStore()
        collection = store.create_collection("c")
        store.store_document("c", '<a><b id="1"/></a>', name="d.xml")
        assert collection.paths.lookup_exact(("a", "b", "@id")) == {"d.xml"}

    def test_planner_uses_structural_index_for_exists(self):
        engine = XMLEngine("px")
        engine.store_document(
            "c", "<Store><Items><Item><PictureList/></Item></Items></Store>",
            name="with.xml",
        )
        engine.store_document(
            "c", "<Store><Items><Item><Code>1</Code></Item></Items></Store>",
            name="without.xml",
        )
        # Label-only index would match nothing different here, but the
        # structural key (full path) prunes precisely.
        result = engine.execute(
            'for $i in collection("c")/Store/Items/Item'
            " where $i/PictureList return $i"
        )
        assert result.documents_parsed == 1

    def test_structural_exists_distinguishes_context(self):
        # The same label under different parents: the label index cannot
        # tell them apart, the structural one can.
        engine = XMLEngine("px2")
        engine.store_document("c", "<r><a><x/></a></r>", name="1.xml")
        engine.store_document("c", "<r><b><x/></b></r>", name="2.xml")
        from repro.paths import exists

        collection = engine.store.collection("c")
        names, _ = engine.planner.candidate_documents(
            collection, exists("/r/a/x")
        )
        assert names == ["1.xml"]
        names, _ = engine.planner.candidate_documents(
            collection, exists("//b/x")
        )
        assert names == ["2.xml"]


class TestExplain:
    def test_explain_reports_candidates(self, engine):
        report = engine.explain(
            'count(for $i in collection("items")/Item'
            ' where contains($i/Description, "good") return $i)'
        )
        assert report["aggregate"] == "count"
        assert report["uses_text_search"]
        assert report["collections"]["items"]["documents"] == 10
        assert report["collections"]["items"]["candidates"] == 4

    def test_explain_without_predicate(self, engine):
        report = engine.explain('collection("items")/Item')
        assert report["predicate"] is None
        assert report["collections"]["items"]["candidates"] == 10

    def test_explain_does_not_execute(self, engine):
        engine.explain('collection("items")/Item')
        assert engine.stats.queries_executed == 0
