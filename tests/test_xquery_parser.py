"""Unit tests for the XQuery lexer, parser and unparser."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery.ast_nodes import (
    AxisStep,
    BinaryOp,
    ElementConstructor,
    FLWOR,
    ForClause,
    FunctionCall,
    LetClause,
    Literal,
    PathApply,
    Quantified,
    SequenceExpr,
    VarRef,
)
from repro.xquery.lexer import TokenType, tokenize
from repro.xquery.parser import parse_query
from repro.xquery.unparse import unparse


class TestLexer:
    def test_keywords_and_names(self):
        tokens = tokenize("for $x in Item return $x")
        kinds = [t.type for t in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert kinds[1] is TokenType.VARIABLE
        assert tokens[1].value == "x"

    def test_string_with_doubled_quotes(self):
        tokens = tokenize('"say ""hi"" now"')
        assert tokens[0].value == 'say "hi" now'

    def test_numbers(self):
        tokens = tokenize("3.25 42")
        assert tokens[0].value == "3.25"
        assert tokens[1].value == "42"

    def test_comments_skipped(self):
        tokens = tokenize("1 (: a comment :) 2")
        assert [t.value for t in tokens[:2]] == ["1", "2"]

    def test_multichar_symbols(self):
        tokens = tokenize("// := <= >= !=")
        assert [t.value for t in tokens[:5]] == ["//", ":=", "<=", ">=", "!="]

    def test_unexpected_character(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize("a # b")


class TestParser:
    def test_flwor_structure(self):
        ast = parse_query(
            'for $i in collection("c")/Item where $i/Section = "CD"'
            " order by $i/Code descending return $i/Name"
        )
        assert isinstance(ast, FLWOR)
        assert isinstance(ast.clauses[0], ForClause)
        assert ast.where is not None
        assert ast.order_by[0].descending

    def test_multiple_bindings_in_one_for(self):
        ast = parse_query("for $a in (1,2), $b in (3,4) return $a + $b")
        assert isinstance(ast, FLWOR)
        assert len(ast.clauses) == 2

    def test_let_clause(self):
        ast = parse_query("let $x := 1 return $x")
        assert isinstance(ast.clauses[0], LetClause)

    def test_for_at_position(self):
        ast = parse_query("for $x at $p in (5,6) return $p")
        assert ast.clauses[0].position_var == "p"

    def test_path_with_predicate(self):
        ast = parse_query('collection("c")/Item[Section="CD"]/Name')
        assert isinstance(ast, PathApply)
        assert ast.steps[0].predicates

    def test_absolute_path(self):
        ast = parse_query("/Store/Items")
        assert isinstance(ast, PathApply)
        assert ast.absolute and ast.primary is None

    def test_descendant_axis_and_attribute(self):
        ast = parse_query("$x//Picture/@id")
        steps = ast.steps
        assert steps[0].axis == "descendant-or-self"
        assert steps[1].is_attribute

    def test_text_test(self):
        ast = parse_query("$x/Name/text()")
        assert ast.steps[-1].is_text

    def test_operator_precedence(self):
        ast = parse_query("1 + 2 * 3 = 7")
        assert isinstance(ast, BinaryOp) and ast.op == "="
        assert isinstance(ast.left, BinaryOp) and ast.left.op == "+"
        assert isinstance(ast.left.right, BinaryOp) and ast.left.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        ast = parse_query("1 = 1 or 2 = 2 and 3 = 4")
        assert ast.op == "or"
        assert isinstance(ast.right, BinaryOp) and ast.right.op == "and"

    def test_if_then_else(self):
        ast = parse_query("if (1 = 1) then 2 else 3")
        assert ast.then_branch == Literal(2)

    def test_quantified(self):
        ast = parse_query("some $x in (1,2) satisfies $x = 2")
        assert isinstance(ast, Quantified) and ast.kind == "some"

    def test_element_constructor(self):
        ast = parse_query('element result { count((1,2)), attribute n { "x" } }')
        assert isinstance(ast, ElementConstructor)
        assert len(ast.content) == 2

    def test_function_call_with_prefix(self):
        ast = parse_query("fn:count((1,2))")
        assert isinstance(ast, FunctionCall) and ast.name == "count"

    def test_empty_sequence(self):
        assert parse_query("()") == SequenceExpr(())

    def test_comma_sequence(self):
        ast = parse_query("(1, 2, 3)")
        assert isinstance(ast, SequenceExpr) and len(ast.items) == 3

    def test_bare_name_is_context_step(self):
        ast = parse_query("Section")
        assert isinstance(ast, PathApply)
        assert isinstance(ast.steps[0], AxisStep)

    def test_range(self):
        ast = parse_query("1 to 5")
        assert type(ast).__name__ == "RangeExpr"

    @pytest.mark.parametrize(
        "text",
        [
            "for $x return $x",  # missing in
            "let $x = 1 return $x",  # = instead of :=
            "if (1) then 2",  # missing else
            "1 +",
            "collection(",
            "for in x return 1",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(XQuerySyntaxError):
            parse_query(text)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(XQuerySyntaxError, match="trailing"):
            parse_query("1 2 3 oops (")


class TestUnparse:
    @pytest.mark.parametrize(
        "query",
        [
            'for $i in collection("c")/Item where $i/Section = "CD" return $i/Name/text()',
            'count(for $i in collection("c")/Item where contains($i/D, "good") return $i)',
            "for $x at $p in (1 to 5) order by $x descending return ($x, $p)",
            'element r { attribute n { "x" }, $y/Name }',
            "if ($a = 1) then 2 else 3",
            "some $x in $s satisfies $x/a = 5",
            "let $x := avg($s) return $x * 2",
            '$a//Picture/@id[. = "7"]',
            "-1 + 2 div 3 mod 4",
            '(collection("a")/x | collection("b")/y)',
            'doc("d.xml")/a/b[3]/text()',
        ],
    )
    def test_parse_unparse_fixpoint(self, query):
        ast = parse_query(query)
        text = unparse(ast)
        assert parse_query(text) == ast
