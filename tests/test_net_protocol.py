"""Unit tests for the PartiX wire protocol (framing + error mapping)."""

import json
import struct

import pytest

import repro.net.protocol as protocol
from repro.errors import (
    CollectionNotFoundError,
    ProtocolError,
    RemoteExecutionError,
    XQuerySyntaxError,
)
from repro.net.protocol import (
    Frame,
    FrameType,
    HEADER_BYTES,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    exception_to_payload,
    payload_to_exception,
)

#: A representative payload for each frame type (round-trip coverage).
PAYLOADS = {
    FrameType.HELLO: {"version": PROTOCOL_VERSION},
    FrameType.WELCOME: {"version": PROTOCOL_VERSION, "site": "site0"},
    FrameType.REJECT: {"reason": "protocol version mismatch"},
    FrameType.PING: {},
    FrameType.PONG: {"site": "site0", "queries_executed": 3},
    FrameType.EXECUTE: {
        "query": 'for $i in collection("C")//item return $i',
        "default_collection": "C",
    },
    FrameType.RESULT: {"result_text": "<Item/>", "elapsed_seconds": 0.01},
    FrameType.ERROR: {"error_type": "ValueError", "message": "boom"},
    FrameType.CREATE_COLLECTION: {"collection": "C"},
    FrameType.STORE_DOCUMENT: {
        "collection": "C",
        "document": "<Item code=\"1\">café ☃</Item>",
        "name": "doc1",
        "origin": "doc1.xml",
    },
    FrameType.DOCUMENT_COUNT: {"collection": "C"},
    FrameType.COLLECTION_BYTES: {"collection": "C"},
    FrameType.STATS: {},
    FrameType.SHUTDOWN: {},
    FrameType.OK: {"count": 7},
    FrameType.RESULT_CHUNK: {},  # raw-payload frame: payload stays {}
    FrameType.RESULT_END: {"result_bytes": 42, "elapsed_seconds": 0.01},
    FrameType.QUERY: {
        "query": 'count(collection("C")//Item)',
        "collection": "C",
        "deadline_seconds": 2.5,
    },
    FrameType.QUERY_RESULT: {
        "result_text": "7",
        "result_bytes": 1,
        "elapsed_seconds": 0.01,
    },
    FrameType.QUERY_ERROR: {
        "error_type": "AdmissionRejected",
        "message": "coordinator overloaded",
        "shed": True,
    },
    FrameType.ADVISE: {"collection": "Citems", "top": 3},
    FrameType.REBALANCE: {
        "collection": "Citems",
        "action": {"kind": "split", "collection": "Citems", "fragment": "F1"},
    },
}

#: Raw bytes for the raw-payload frame types.
RAW_BODIES = {
    FrameType.RESULT_CHUNK: "<Item>café ☃</Item>".encode("utf-8"),
}


class TestRoundTrip:
    @pytest.mark.parametrize("frame_type", list(FrameType))
    def test_every_frame_type_round_trips(self, frame_type):
        frame = Frame(
            type=frame_type,
            request_id=41 + int(frame_type),
            payload=PAYLOADS[frame_type],
            raw=RAW_BODIES.get(frame_type, b""),
        )
        decoded, consumed = decode_frame(encode_frame(frame))
        assert decoded == frame
        assert consumed == len(encode_frame(frame))

    def test_result_chunk_payload_is_raw_bytes(self):
        # No JSON escaping: the wire body is exactly the chunk's bytes,
        # even when they are not valid UTF-8 (a chunk may split a
        # multi-byte character).
        body = "é".encode("utf-8")[:1] + b"\xff\x00<not json"
        frame = Frame(type=FrameType.RESULT_CHUNK, request_id=9, raw=body)
        data = encode_frame(frame)
        assert data[HEADER_BYTES:] == body
        decoded, _ = decode_frame(data)
        assert decoded.raw == body
        assert decoded.payload == {}

    def test_unicode_payload_survives(self):
        frame = Frame(
            type=FrameType.STORE_DOCUMENT,
            request_id=1,
            payload={"document": "élément ☃ \U0001f409"},
        )
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded.payload["document"] == "élément ☃ \U0001f409"

    def test_header_layout_is_stable(self):
        # The fixed 16-byte layout is the wire contract; a change breaks
        # every deployed peer.
        assert HEADER_BYTES == 16
        data = encode_frame(Frame(type=FrameType.PING, request_id=7))
        assert data[:2] == MAGIC
        assert data[2] == PROTOCOL_VERSION
        assert data[3] == int(FrameType.PING)
        assert int.from_bytes(data[4:12], "big") == 7
        assert int.from_bytes(data[12:16], "big") == len(data) - HEADER_BYTES

    def test_trailing_bytes_are_not_consumed(self):
        data = encode_frame(Frame(type=FrameType.PING)) + b"extra"
        _, consumed = decode_frame(data)
        assert consumed == len(data) - len(b"extra")


class TestRejection:
    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="truncated frame header"):
            decode_frame(b"PX\x01")

    def test_truncated_payload(self):
        data = encode_frame(
            Frame(type=FrameType.OK, payload={"count": 123456})
        )
        with pytest.raises(ProtocolError, match="truncated frame payload"):
            decode_frame(data[:-4])

    def test_bad_magic(self):
        data = bytearray(encode_frame(Frame(type=FrameType.PING)))
        data[:2] = b"ZZ"
        with pytest.raises(ProtocolError, match="bad frame magic"):
            decode_frame(bytes(data))

    def test_unknown_frame_type(self):
        header = struct.Struct("!2sBBQI").pack(MAGIC, PROTOCOL_VERSION, 200, 1, 0)
        with pytest.raises(ProtocolError, match="unknown frame type 200"):
            decode_frame(header)

    def test_oversized_length_prefix_rejected_before_allocation(self):
        header = struct.Struct("!2sBBQI").pack(
            MAGIC, PROTOCOL_VERSION, int(FrameType.PING), 1,
            MAX_PAYLOAD_BYTES + 1,
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(header)

    def test_oversized_payload_refused_on_encode(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_PAYLOAD_BYTES", 16)
        with pytest.raises(ProtocolError, match="oversized frame"):
            encode_frame(
                Frame(type=FrameType.OK, payload={"blob": "x" * 64})
            )

    def test_garbage_payload_is_not_json(self):
        body = b"not json at all"
        header = struct.Struct("!2sBBQI").pack(
            MAGIC, PROTOCOL_VERSION, int(FrameType.OK), 1, len(body)
        )
        with pytest.raises(ProtocolError, match="garbage frame payload"):
            decode_frame(header + body)

    def test_payload_must_be_a_json_object(self):
        body = json.dumps([1, 2, 3]).encode()
        header = struct.Struct("!2sBBQI").pack(
            MAGIC, PROTOCOL_VERSION, int(FrameType.OK), 1, len(body)
        )
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            decode_frame(header + body)


class TestErrorMapping:
    def test_repro_error_round_trips_to_same_class(self):
        payload = exception_to_payload(CollectionNotFoundError("no collection 'C'"))
        error = payload_to_exception(payload)
        assert type(error) is CollectionNotFoundError
        assert str(error) == "no collection 'C'"

    def test_query_error_round_trips(self):
        error = payload_to_exception(
            exception_to_payload(XQuerySyntaxError("unexpected token"))
        )
        assert type(error) is XQuerySyntaxError

    def test_builtin_error_round_trips(self):
        error = payload_to_exception(exception_to_payload(ValueError("bad")))
        assert type(error) is ValueError
        assert str(error) == "bad"

    def test_unknown_class_degrades_to_remote_execution_error(self):
        error = payload_to_exception(
            {"error_type": "SomeProprietaryError", "message": "details"}
        )
        assert type(error) is RemoteExecutionError
        assert "SomeProprietaryError" in str(error)
        assert "details" in str(error)

    def test_empty_payload_degrades_gracefully(self):
        error = payload_to_exception({})
        assert type(error) is RemoteExecutionError
