"""Unit tests for query decomposition and localization."""

import pytest

from repro.cluster import Cluster
from repro.errors import DecompositionError
from repro.partix import (
    CompositionSpec,
    DataPublisher,
    FragMode,
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    QueryDecomposer,
    SubQuery,
    VerticalFragment,
    annotated,
    rename_collections,
    rewrite_avg_to_sum_count,
    rewrite_paths_for_fragment_root,
)
from repro.paths import eq, ne
from repro.xquery.parser import parse_query
from repro.xquery.unparse import unparse


def _publish(collection, design, frag_mode=FragMode.SINGLE_DOCUMENT, sites=4):
    cluster = Cluster.with_sites(sites)
    publisher = DataPublisher(cluster)
    publisher.publish(collection, design, frag_mode=frag_mode)
    return QueryDecomposer(publisher.catalog)


@pytest.fixture
def horizontal_decomposer(items_collection):
    design = FragmentationSchema("Citems", [
        HorizontalFragment("F_cd", "Citems", predicate=eq("/Item/Section", "CD")),
        HorizontalFragment("F_dvd", "Citems", predicate=eq("/Item/Section", "DVD")),
        HorizontalFragment("F_rest", "Citems", predicate=(
            ne("/Item/Section", "CD") & ne("/Item/Section", "DVD"))),
    ], root_label="Item")
    return _publish(items_collection, design)


@pytest.fixture
def vertical_decomposer(papers_collection):
    design = FragmentationSchema("Cpapers", [
        VerticalFragment("F_prolog", "Cpapers", path="/article/prolog"),
        VerticalFragment("F_body", "Cpapers", path="/article/body"),
        VerticalFragment("F_epilog", "Cpapers", path="/article/epilog"),
    ], root_label="article")
    return _publish(papers_collection, design)


class TestHorizontalDecomposition:
    def test_all_fragments_without_predicate(self, horizontal_decomposer):
        plan = horizontal_decomposer.decompose(
            'for $i in collection("Citems")/Item return $i/Code/text()'
        )
        assert plan.fragment_names == ["F_cd", "F_dvd", "F_rest"]
        assert plan.composition.kind == "concat"

    def test_matching_predicate_prunes(self, horizontal_decomposer):
        plan = horizontal_decomposer.decompose(
            'for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" return $i/Name/text()'
        )
        assert plan.fragment_names == ["F_cd"]
        assert any("pruned" in note for note in plan.notes)

    def test_subquery_renames_collection(self, horizontal_decomposer):
        plan = horizontal_decomposer.decompose(
            'count(collection("Citems")/Item)'
        )
        assert all(f'collection("{sq.fragment}")' in sq.query
                   for sq in plan.subqueries)

    def test_aggregate_composition(self, horizontal_decomposer):
        plan = horizontal_decomposer.decompose(
            'count(for $i in collection("Citems")/Item return $i)'
        )
        assert plan.composition.kind == "aggregate"
        assert plan.composition.aggregate == "count"

    def test_avg_ships_sum_count_pair(self, horizontal_decomposer):
        plan = horizontal_decomposer.decompose(
            'avg(for $i in collection("Citems")/Item'
            " return string-length($i/Name))"
        )
        assert plan.composition.aggregate == "avg"
        assert "sum(" in plan.subqueries[0].query
        assert "count(" in plan.subqueries[0].query

    def test_contradicting_all_fragments_yields_empty_plan(
        self, horizontal_decomposer
    ):
        plan = horizontal_decomposer.decompose(
            'for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" and $i/Section = "DVD" return $i'
        )
        assert plan.subqueries == []

    def test_unfragmented_collection_rejected(self, horizontal_decomposer):
        with pytest.raises(Exception):
            horizontal_decomposer.decompose('collection("Other")/x')

    def test_query_without_collection_rejected(self, horizontal_decomposer):
        with pytest.raises(DecompositionError):
            horizontal_decomposer.decompose("1 + 1")


class TestVerticalDecomposition:
    def test_single_fragment_rewritten(self, vertical_decomposer):
        plan = vertical_decomposer.decompose(
            'for $a in collection("Cpapers")/article'
            ' where contains($a/prolog/title, "x")'
            " return $a/prolog/title/text()"
        )
        assert plan.fragment_names == ["F_prolog"]
        assert plan.composition.kind == "concat"
        assert 'collection("F_prolog")/prolog' in plan.subqueries[0].query

    def test_direct_path_rewritten(self, vertical_decomposer):
        plan = vertical_decomposer.decompose(
            'count(collection("Cpapers")/article/epilog/country)'
        )
        assert plan.fragment_names == ["F_epilog"]
        assert plan.composition.kind == "aggregate"

    def test_multi_fragment_reconstructs(self, vertical_decomposer):
        plan = vertical_decomposer.decompose(
            'for $a in collection("Cpapers")/article'
            ' where contains($a/body/abstract, "x")'
            " return $a/prolog/title/text()"
        )
        assert set(plan.fragment_names) == {"F_prolog", "F_body"}
        assert plan.composition.kind == "reconstruct"
        assert all(sq.purpose == "fetch" for sq in plan.subqueries)
        assert plan.composition.root_label == "article"

    def test_descendant_path_goes_everywhere(self, vertical_decomposer):
        plan = vertical_decomposer.decompose(
            'count(collection("Cpapers")//title)'
        )
        # //title may live in any fragment: all three are relevant.
        assert len(plan.fragment_names) == 3


@pytest.fixture
def store_design():
    return FragmentationSchema("Cstore", [
        VerticalFragment("F1", "Cstore", path="/Store",
                         prune=("/Store/Items",), stub_prunes=True),
        HybridFragment("F2", "Cstore", path="/Store/Items",
                       unit_label="Item", predicate=eq("/Item/Section", "CD")),
        HybridFragment("F3", "Cstore", path="/Store/Items",
                       unit_label="Item", predicate=ne("/Item/Section", "CD")),
    ], root_label="Store")


class TestHybridDecomposition:
    def test_unit_query_prunes_by_predicate(self, store_collection, store_design):
        decomposer = _publish(store_collection, store_design)
        plan = decomposer.decompose(
            'for $i in collection("Cstore")/Store/Items/Item'
            ' where $i/Section = "CD" return $i/Code/text()'
        )
        assert plan.fragment_names == ["F2"]

    def test_fragmode2_query_unchanged_shape(self, store_collection, store_design):
        decomposer = _publish(store_collection, store_design)
        plan = decomposer.decompose(
            'for $i in collection("Cstore")/Store/Items/Item return $i'
        )
        assert "/Store/Items/Item" in plan.subqueries[0].query

    def test_fragmode1_query_rewritten(self, store_collection, store_design):
        decomposer = _publish(
            store_collection, store_design,
            frag_mode=FragMode.INDEPENDENT_DOCUMENTS,
        )
        plan = decomposer.decompose(
            'for $i in collection("Cstore")/Store/Items/Item return $i'
        )
        assert 'collection("F2")/Item' in plan.subqueries[0].query

    def test_remainder_query_routed(self, store_collection, store_design):
        decomposer = _publish(store_collection, store_design)
        plan = decomposer.decompose(
            'for $s in collection("Cstore")/Store/Sections/SectionEntry'
            " return $s/Name/text()"
        )
        assert plan.fragment_names == ["F1"]

    def test_spanning_query_reconstructs(self, store_collection, store_design):
        decomposer = _publish(store_collection, store_design)
        plan = decomposer.decompose(
            'for $s in collection("Cstore")/Store'
            " return count($s/Items/Item)"
        )
        assert plan.composition.kind == "reconstruct"


class TestRewriters:
    def test_rename_collections(self):
        ast = parse_query('count(collection("a")/x) + count(collection("b")/y)')
        renamed = rename_collections(ast, {"a": "a2"})
        text = unparse(renamed)
        assert 'collection("a2")/x' in text
        assert 'collection("b")/y' in text

    def test_avg_rewrite(self):
        ast = parse_query("avg(collection(\"c\")/x/v)")
        rewritten = rewrite_avg_to_sum_count(ast)
        text = unparse(rewritten)
        assert "sum(" in text and "count(" in text

    def test_fragment_root_full_chain(self):
        ast = parse_query('collection("c")/a/b/c')
        rewritten = rewrite_paths_for_fragment_root(ast, ["a", "b"])
        assert unparse(rewritten) == 'collection("c")/b/c'

    def test_fragment_root_partial_binding(self):
        ast = parse_query(
            'for $x in collection("c")/a where $x/b/c = 1 return $x/b/d'
        )
        rewritten = rewrite_paths_for_fragment_root(ast, ["a", "b"])
        text = unparse(rewritten)
        assert 'collection("c")/b' in text
        assert "$x/c" in text and "$x/d" in text

    def test_fragment_root_bare_var_fails(self):
        ast = parse_query('for $x in collection("c")/a return $x')
        assert rewrite_paths_for_fragment_root(ast, ["a", "b"]) is None

    def test_descendant_paths_untouched(self):
        ast = parse_query('collection("c")//d')
        rewritten = rewrite_paths_for_fragment_root(ast, ["a", "b"])
        assert unparse(rewritten) == 'collection("c")//d'

    def test_unrelated_root_untouched(self):
        ast = parse_query('collection("c")/z/w')
        rewritten = rewrite_paths_for_fragment_root(ast, ["a", "b"])
        assert unparse(rewritten) == 'collection("c")/z/w'


class TestAnnotatedMode:
    def test_annotated_builds_plan(self):
        plan = annotated(
            "c",
            [SubQuery("F1", "s0", "F1", 'collection("F1")/x')],
            CompositionSpec(kind="concat"),
        )
        assert plan.fragment_names == ["F1"]

    def test_annotated_requires_subqueries(self):
        with pytest.raises(DecompositionError):
            annotated("c", [], CompositionSpec(kind="concat"))


class TestReplicaSelection:
    def test_subqueries_spread_over_replica_sites(self, items_collection):
        from repro.cluster import Cluster
        from repro.partix import DataPublisher, FragmentAllocation

        cluster = Cluster.with_sites(2)
        publisher = DataPublisher(cluster)
        design = FragmentationSchema("Citems", [
            HorizontalFragment("F_cd", "Citems", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F_dvd", "Citems", predicate=eq("/Item/Section", "DVD")),
            HorizontalFragment("F_rest", "Citems", predicate=(
                ne("/Item/Section", "CD") & ne("/Item/Section", "DVD"))),
        ], root_label="Item")
        # Every fragment fully replicated on both sites.
        allocations = [
            FragmentAllocation(f, site, f)
            for f in ("F_cd", "F_dvd", "F_rest")
            for site in ("site0", "site1")
        ]
        publisher.publish(items_collection, design, allocations=allocations)
        decomposer = QueryDecomposer(publisher.catalog)
        plan = decomposer.decompose(
            'for $i in collection("Citems")/Item return $i/Code/text()'
        )
        sites = [sq.site for sq in plan.subqueries]
        # Three sub-queries over two sites: the greedy balancer puts at
        # most two on any site instead of all three on the primary.
        assert max(sites.count(s) for s in set(sites)) == 2

    def test_replicated_fragments_answer_correctly(self, items_collection):
        from repro.cluster import Cluster
        from repro.partix import DataPublisher, FragmentAllocation, Partix

        cluster = Cluster.with_sites(2)
        partix = Partix(cluster)
        design = FragmentationSchema("Citems", [
            HorizontalFragment("F_cd", "Citems", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F_rest", "Citems", predicate=ne("/Item/Section", "CD")),
        ], root_label="Item")
        allocations = [
            FragmentAllocation(f, site, f)
            for f in ("F_cd", "F_rest")
            for site in ("site0", "site1")
        ]
        partix.publish(items_collection, design, allocations=allocations)
        result = partix.execute('count(collection("Citems")/Item)')
        assert result.result_text == "12"
        sites = {sq.site for sq in result.plan.subqueries}
        assert sites == {"site0", "site1"}
