"""Plan IR tests: logical shapes, lowering, EXPLAIN, execution modes.

The decomposer emits a logical plan (what happens), lowering commits it
to sites with the cost model (where it happens), and the physical plan
is what ``Partix.explain`` renders and the single executor runs. These
tests pin the plan *shapes* per fragmentation kind and the mode parser's
contract; end-to-end answer equivalence lives in test_integration.py.
"""

import json

import pytest

from repro.cluster import Cluster
from repro.partix import (
    CompositionSpec,
    DataPublisher,
    FragmentationSchema,
    HorizontalFragment,
    QueryDecomposer,
    SubQuery,
    VerticalFragment,
    annotated,
)
from repro.paths import eq, ne
from repro.plan import (
    Compose,
    ExecutionMode,
    FragmentScan,
    IdJoin,
    MergeAggregate,
    PartialAggregate,
    Union,
    lower,
    plan_from_dict,
)


def _publish(collection, design, sites=4):
    cluster = Cluster.with_sites(sites)
    publisher = DataPublisher(cluster)
    publisher.publish(collection, design)
    return QueryDecomposer(publisher.catalog)


@pytest.fixture
def horizontal(items_collection):
    design = FragmentationSchema("Citems", [
        HorizontalFragment("F_cd", "Citems", predicate=eq("/Item/Section", "CD")),
        HorizontalFragment("F_dvd", "Citems", predicate=eq("/Item/Section", "DVD")),
        HorizontalFragment("F_rest", "Citems", predicate=(
            ne("/Item/Section", "CD") & ne("/Item/Section", "DVD"))),
    ], root_label="Item")
    return _publish(items_collection, design)


@pytest.fixture
def vertical(papers_collection):
    design = FragmentationSchema("Cpapers", [
        VerticalFragment("F_prolog", "Cpapers", path="/article/prolog"),
        VerticalFragment("F_body", "Cpapers", path="/article/body"),
        VerticalFragment("F_epilog", "Cpapers", path="/article/epilog"),
    ], root_label="article")
    return _publish(papers_collection, design)


class TestLogicalShapes:
    def test_concat_is_compose_union_of_scans(self, horizontal):
        logical = horizontal.decompose_logical(
            'for $i in collection("Citems")/Item return $i/Code/text()'
        )
        assert isinstance(logical.root, Compose)
        assert isinstance(logical.root.child, Union)
        scans = logical.scans()
        assert [scan.fragment for scan in scans] == ["F_cd", "F_dvd", "F_rest"]
        assert all(isinstance(scan, FragmentScan) for scan in scans)
        assert all(scan.purpose == "answer" for scan in scans)

    def test_aggregate_is_merge_of_partials(self, horizontal):
        logical = horizontal.decompose_logical(
            'count(for $i in collection("Citems")/Item return $i)'
        )
        merge = logical.root.child
        assert isinstance(merge, MergeAggregate)
        assert merge.op == "count"
        assert all(
            isinstance(partial, PartialAggregate) and partial.op == "count"
            for partial in merge.children
        )
        assert len(merge.children) == 3

    def test_all_fragments_pruned_keeps_shape_with_zero_scans(self, horizontal):
        logical = horizontal.decompose_logical(
            'for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" and $i/Section = "DVD" return $i'
        )
        assert isinstance(logical.root.child, Union)
        assert logical.scans() == []
        plan = lower(logical)
        assert plan.lanes == []
        assert plan.subqueries == []
        assert plan.estimated_parallel_seconds == 0.0
        # The empty plan still renders: header plus compose/union nodes.
        rendered = plan.render()
        assert "lanes=0" in rendered
        assert "union" in rendered

    def test_single_fragment_vertical_rewrite(self, vertical):
        logical = vertical.decompose_logical(
            'for $a in collection("Cpapers")/article'
            ' where contains($a/prolog/title, "x")'
            " return $a/prolog/title/text()"
        )
        assert isinstance(logical.root.child, Union)
        (scan,) = logical.scans()
        assert scan.fragment == "F_prolog"
        # Every candidate carries the sub-query rewritten for that
        # replica's stored collection and the fragment-local path shape.
        for candidate in scan.candidates:
            assert f'collection("{candidate.stored_collection}")' in candidate.query
        plan = lower(logical)
        assert plan.fragment_names == ["F_prolog"]
        assert plan.composition.kind == "concat"
        assert "scan F_prolog" in plan.render()

    def test_multi_fragment_id_join_shape(self, vertical):
        logical = vertical.decompose_logical(
            'for $a in collection("Cpapers")/article'
            ' where contains($a/body/abstract, "novel") return $a'
        )
        join = logical.root.child
        assert isinstance(join, IdJoin)
        assert join.root_label == "article"
        fetched = {scan.fragment for scan in join.children}
        assert fetched == {"F_prolog", "F_body", "F_epilog"}
        assert all(scan.purpose == "fetch" for scan in join.children)
        plan = lower(logical)
        assert plan.composition.kind == "reconstruct"
        rendered = plan.render()
        assert "id-join root=article" in rendered
        assert "purpose=fetch" in rendered


class TestLowering:
    def test_lanes_mirror_scan_order_with_estimates(self, horizontal):
        plan = horizontal.decompose(
            'for $i in collection("Citems")/Item return $i/Code/text()'
        )
        assert [lane.index for lane in plan.lanes] == [0, 1, 2]
        assert [lane.node_id for lane in plan.lanes] == ["scan0", "scan1", "scan2"]
        for lane in plan.lanes:
            assert lane.estimate is not None
            assert lane.estimate.total_seconds > 0.0
        assert plan.estimated_parallel_seconds > 0.0
        assert set(plan.estimated_lane_seconds()) == {"scan0", "scan1", "scan2"}

    def test_aggregate_pushdown_estimates_scalar_results(self, horizontal):
        plan = horizontal.decompose(
            'count(for $i in collection("Citems")/Item return $i)'
        )
        # A pushed-down partial returns one scalar, not the fragment's
        # bytes — the cost model must reflect that in every lane.
        for lane in plan.lanes:
            assert lane.estimate.result_bytes <= 64
        rendered = plan.render()
        assert "merge-aggregate(count)" in rendered
        assert "partial-aggregate(count)" in rendered

    def test_annotated_lowering_keeps_given_sites(self, horizontal):
        subqueries = [
            SubQuery(
                fragment="F_cd",
                site="site3",
                collection="F_cd",
                query='collection("F_cd")/Item/Code/text()',
            )
        ]
        plan = annotated("Citems", subqueries, CompositionSpec(kind="concat"))
        (lane,) = plan.lanes
        assert lane.subquery.site == "site3"
        assert lane.candidates == 1
        assert "scan F_cd @ site3/F_cd" in plan.render()

    def test_with_execution_sets_attributes_without_copying_lanes(self, horizontal):
        plan = horizontal.decompose(
            'for $i in collection("Citems")/Item return $i/Code/text()'
        )
        streamed = plan.with_execution(streaming=True, chunk_bytes=512)
        assert streamed.streaming and streamed.chunk_bytes == 512
        assert not plan.streaming
        assert streamed.lanes is plan.lanes
        assert plan.with_execution(streaming=False, chunk_bytes=None) is plan


class TestExplainStability:
    QUERIES = [
        'for $i in collection("Citems")/Item return $i/Code/text()',
        'count(for $i in collection("Citems")/Item return $i)',
        'for $i in collection("Citems")/Item'
        ' where $i/Section = "CD" return $i/Name/text()',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_planning_is_deterministic(self, horizontal, query):
        first = horizontal.decompose(query)
        second = horizontal.decompose(query)
        assert first.render() == second.render()
        assert first.to_dict() == second.to_dict()

    @pytest.mark.parametrize("query", QUERIES)
    def test_explain_round_trips_through_json(self, horizontal, query):
        plan = horizontal.decompose(query)
        payload = json.loads(json.dumps(plan.to_dict()))
        restored = plan_from_dict(payload)
        assert restored.render() == plan.render()
        assert [sq.site for sq in restored.subqueries] == [
            sq.site for sq in plan.subqueries
        ]


class TestExecutionMode:
    def test_registry_covers_public_modes(self):
        assert ExecutionMode.names() == (
            "simulated", "threads", "tcp", "tcp-stream"
        )

    def test_simulated_is_serial_in_process(self):
        mode = ExecutionMode.parse("simulated")
        assert (mode.transport, mode.streaming, mode.concurrent) == (
            "in-process", False, False
        )

    def test_tcp_stream_is_streaming_tcp(self):
        mode = ExecutionMode.parse("tcp-stream")
        assert (mode.transport, mode.streaming, mode.concurrent) == (
            "tcp", True, True
        )

    def test_streaming_flag_promotes_mode(self):
        assert ExecutionMode.parse("threads", streaming=True).streaming

    def test_invalid_mode_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            ExecutionMode.parse("turbo")
        message = str(excinfo.value)
        assert "'turbo'" in message
        for name in ExecutionMode.names():
            assert repr(name) in message
