"""Unit tests for fragment definitions and fragmentation schemas."""

import pytest

from repro.errors import FragmentationError
from repro.partix import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths import eq, ne, parse_path
from repro.xschema import ChildDecl, Schema, SimpleType


class TestHorizontalFragment:
    def test_kind_and_operator(self):
        fragment = HorizontalFragment("F1", "c", predicate=eq("/Item/S", "x"))
        assert fragment.kind == "horizontal"
        assert "σ" in str(fragment.operator())

    def test_requires_predicate(self):
        with pytest.raises(FragmentationError):
            HorizontalFragment("F1", "c")

    def test_describe_uses_paper_notation(self):
        fragment = HorizontalFragment("F1", "c", predicate=eq("/Item/S", "x"))
        assert fragment.describe().startswith("F1 := ⟨c, σ[")


class TestVerticalFragment:
    def test_accepts_string_paths(self):
        fragment = VerticalFragment(
            "F1", "c", path="/a/b", prune=("/a/b/c",)
        )
        assert str(fragment.path) == "/a/b"
        assert [str(p) for p in fragment.prune] == ["/a/b/c"]

    def test_requires_path(self):
        with pytest.raises(FragmentationError):
            VerticalFragment("F1", "c")

    def test_kind(self):
        assert VerticalFragment("F", "c", path="/a").kind == "vertical"


class TestHybridFragment:
    def test_unit_path(self):
        fragment = HybridFragment(
            "F", "c", path="/Store/Items", unit_label="Item",
            predicate=eq("/Item/S", "x"),
        )
        assert str(fragment.unit_path()) == "/Store/Items/Item"
        assert fragment.kind == "hybrid"

    def test_requires_unit_label(self):
        with pytest.raises(FragmentationError):
            HybridFragment("F", "c", path="/Store/Items")

    def test_operator_without_predicate_keeps_all_units(self):
        from repro.datamodel import doc, elem

        fragment = HybridFragment("F", "c", path="/a", unit_label="b")
        document = doc(elem("a", elem("b", "1"), elem("b", "2")))
        assert len(fragment.operator().apply(document)) == 2


class TestFragmentationSchema:
    def _horizontal(self):
        return [
            HorizontalFragment("F1", "c", predicate=eq("/Item/S", "x")),
            HorizontalFragment("F2", "c", predicate=ne("/Item/S", "x")),
        ]

    def test_basic_accessors(self):
        schema = FragmentationSchema("c", self._horizontal(), root_label="Item")
        assert schema.fragment_names() == ["F1", "F2"]
        assert schema.is_horizontal and not schema.is_vertical
        assert len(schema) == 2
        assert schema.fragment("F1").name == "F1"

    def test_unknown_fragment(self):
        schema = FragmentationSchema("c", self._horizontal())
        with pytest.raises(FragmentationError):
            schema.fragment("F9")

    def test_requires_fragments(self):
        with pytest.raises(FragmentationError):
            FragmentationSchema("c", [])

    def test_duplicate_names_rejected(self):
        fragments = [
            HorizontalFragment("F1", "c", predicate=eq("/a", "x")),
            HorizontalFragment("F1", "c", predicate=ne("/a", "x")),
        ]
        with pytest.raises(FragmentationError, match="duplicate"):
            FragmentationSchema("c", fragments)

    def test_wrong_collection_rejected(self):
        fragments = [HorizontalFragment("F1", "other", predicate=eq("/a", "x"))]
        with pytest.raises(FragmentationError, match="references collection"):
            FragmentationSchema("c", fragments)

    def test_kinds_mixed(self):
        schema = FragmentationSchema(
            "c",
            [
                VerticalFragment("V", "c", path="/a", prune=("/a/b",)),
                HybridFragment("H", "c", path="/a/b", unit_label="x"),
            ],
        )
        assert schema.kinds == {"vertical", "hybrid"}
        assert len(schema.hybrid_fragments()) == 1

    def test_describe_lists_fragments(self):
        schema = FragmentationSchema("c", self._horizontal())
        assert schema.describe().count("F1") == 1


class TestStaticValidity:
    def _schema(self):
        schema = Schema("s")
        schema.element("leaf", content=SimpleType.STRING)
        schema.element("many", children=[ChildDecl("leaf", 0, None)])
        schema.element(
            "root", children=[ChildDecl("many", 0, 1), ChildDecl("leaf", 0, 1)]
        )
        return schema

    def test_single_cardinality_path_accepted(self):
        FragmentationSchema(
            "c",
            [VerticalFragment("F", "c", path="/root/many")],
            schema=self._schema(),
            root_type="root",
        )

    def test_unbounded_path_rejected(self):
        with pytest.raises(FragmentationError, match="Definition 3"):
            FragmentationSchema(
                "c",
                [VerticalFragment("F", "c", path="/root/many/leaf")],
                schema=self._schema(),
                root_type="root",
            )

    def test_positional_step_pins_one(self):
        FragmentationSchema(
            "c",
            [VerticalFragment("F", "c", path=parse_path("/root/many/leaf[1]"))],
            schema=self._schema(),
            root_type="root",
        )

    def test_wrong_root_rejected(self):
        with pytest.raises(FragmentationError, match="does not start"):
            FragmentationSchema(
                "c",
                [VerticalFragment("F", "c", path="/other/x")],
                schema=self._schema(),
                root_type="root",
            )
