"""Unit tests for the fragmentation design advisor (paper future work)."""

import pytest

from repro.errors import FragmentationError
from repro.partix import verify_fragmentation
from repro.partix.advisor import (
    DesignRecommendation,
    FragmentationAdvisor,
    WorkloadQuery,
)
from repro.workloads import (
    build_items_collection,
    build_store_collection,
    build_xbench_collection,
    items_queries,
    store_queries,
    xbench_queries,
)


class TestHorizontalRecommendation:
    @pytest.fixture(scope="class")
    def recommendation(self):
        collection = build_items_collection(60, seed=3)
        workload = [WorkloadQuery(q.text) for q in items_queries()]
        advisor = FragmentationAdvisor(collection, workload, site_count=4)
        return advisor.recommend(), collection

    def test_picks_horizontal_by_section(self, recommendation):
        design, _ = recommendation
        assert design.kind == "horizontal"
        described = design.fragmentation.describe()
        assert "/Item/Section" in described

    def test_design_is_correct(self, recommendation):
        design, collection = recommendation
        report = verify_fragmentation(design.fragmentation, collection)
        assert report.ok, report.violations

    def test_fragment_count_fits_sites(self, recommendation):
        design, _ = recommendation
        assert 2 <= len(design.fragmentation) <= 4

    def test_residual_fragment_present(self, recommendation):
        design, _ = recommendation
        assert "F_rest" in design.fragmentation.fragment_names()

    def test_rationale_mentions_selector(self, recommendation):
        design, _ = recommendation
        assert any("selector" in line for line in design.rationale)
        assert any("verified" in line for line in design.rationale)


class TestVerticalRecommendation:
    @pytest.fixture(scope="class")
    def recommendation(self):
        collection = build_xbench_collection(8, doc_bytes=4_000, seed=5)
        # A prolog/epilog-heavy workload without usable equality selectors
        # pushes the advisor toward the vertical design.
        workload = [
            WorkloadQuery(q.text, frequency=3.0 if q.has("single-fragment") else 1.0)
            for q in xbench_queries()
            if not q.has("aggregation") or q.has("single-fragment")
        ]
        advisor = FragmentationAdvisor(collection, workload, site_count=3)
        return advisor.recommend(), collection

    def test_picks_vertical_regions(self, recommendation):
        design, _ = recommendation
        assert design.kind == "vertical"
        names = set(design.fragmentation.fragment_names())
        assert {"F_prolog", "F_body", "F_epilog"} <= names

    def test_design_is_correct(self, recommendation):
        design, collection = recommendation
        report = verify_fragmentation(design.fragmentation, collection)
        assert report.ok, report.violations

    def test_allocations_cover_every_fragment(self, recommendation):
        design, _ = recommendation
        assert design.allocations is not None
        allocated = {a.fragment for a in design.allocations}
        assert allocated == set(design.fragmentation.fragment_names())

    def test_coaccessed_regions_share_a_site(self, recommendation):
        design, _ = recommendation
        # Q4/Q9 co-access prolog+body; affinity should co-locate at least
        # one frequently-joined pair.
        sites = {a.fragment: a.site for a in design.allocations}
        assert len(set(sites.values())) <= 3


class TestHybridRecommendation:
    @pytest.fixture(scope="class")
    def recommendation(self):
        collection = build_store_collection(50, seed=9)
        workload = [WorkloadQuery(q.text) for q in store_queries()]
        advisor = FragmentationAdvisor(collection, workload, site_count=5)
        return advisor.recommend(), collection

    def test_picks_hybrid_design(self, recommendation):
        design, _ = recommendation
        assert design.kind == "hybrid"
        names = design.fragmentation.fragment_names()
        assert "F_rest" in names and "F_other" in names
        assert len(design.fragmentation.hybrid_fragments()) >= 2

    def test_unit_and_selector_found(self, recommendation):
        design, _ = recommendation
        assert any("Item" in line for line in design.rationale)
        assert any("/Item/Section" in line for line in design.rationale)

    def test_design_is_correct(self, recommendation):
        design, collection = recommendation
        report = verify_fragmentation(design.fragmentation, collection)
        assert report.ok, report.violations


class TestAdvisorGuards:
    def test_needs_sites(self):
        collection = build_items_collection(5)
        with pytest.raises(FragmentationError, match="sites"):
            FragmentationAdvisor(collection, [WorkloadQuery("1")], site_count=1)

    def test_needs_workload(self):
        collection = build_items_collection(5)
        with pytest.raises(FragmentationError, match="workload"):
            FragmentationAdvisor(collection, [], site_count=2)

    def test_needs_documents(self):
        from repro.datamodel import Collection

        with pytest.raises(FragmentationError, match="non-empty"):
            FragmentationAdvisor(
                Collection("c"), [WorkloadQuery("1 + 1")], site_count=2
            )

    def test_no_signal_fails_cleanly(self):
        collection = build_items_collection(5)
        # A workload with no predicates and no path structure: the MD
        # vertical path still applies (items have several regions), so
        # the advisor returns *something* correct rather than failing.
        workload = [WorkloadQuery('count(collection("Citems")/Item)')]
        advisor = FragmentationAdvisor(collection, workload, site_count=2)
        design = advisor.recommend()
        assert isinstance(design, DesignRecommendation)
        report = verify_fragmentation(design.fragmentation, collection)
        assert report.ok


class TestRecommendedDesignEndToEnd:
    def test_recommended_design_answers_queries(self):
        from repro.bench.scenarios import CENTRAL_SITE, _result_signature
        from repro.cluster import Cluster, Site
        from repro.partix import Partix

        collection = build_items_collection(40, seed=17)
        workload = [WorkloadQuery(q.text) for q in items_queries()]
        design = FragmentationAdvisor(
            collection, workload, site_count=3
        ).recommend()
        cluster = Cluster.with_sites(3)
        cluster.add(Site(CENTRAL_SITE))
        partix = Partix(cluster)
        partix.publish(collection, design.fragmentation, allocations=design.allocations)
        partix.publish_centralized(collection, CENTRAL_SITE)
        for query in items_queries():
            distributed = partix.execute(query.text)
            centralized = partix.execute_centralized(query.text, CENTRAL_SITE)
            assert _result_signature(distributed.result_text) == _result_signature(
                centralized.result_text
            ), query.qid
