"""Tests for the differential fuzz harness itself.

Three layers: the generator's determinism contracts, the oracle's
green path, and — the part that proves the harness can actually bite —
an injected composer-ordering bug that must be detected, minimized and
written out as a runnable reproducer.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster.dispatch import ParallelDispatcher
from repro.fuzz import (
    CaseSpec,
    generate_case,
    minimize_spec,
    run_case,
    run_fuzz,
    spec_for_iteration,
    write_repro,
)
from repro.fuzz.generator import FAMILIES, GenerationError
from repro.partix.middleware import Partix
from repro.xmltext import serialize

SMOKE_SPECS = [
    CaseSpec(seed=11, family="items", doc_count=4, fragment_count=2),
    CaseSpec(seed=12, family="articles", doc_count=3, fragment_count=3),
    CaseSpec(seed=13, family="store", doc_count=5, fragment_count=2, frag_mode=1),
    CaseSpec(seed=13, family="store", doc_count=5, fragment_count=2, frag_mode=2),
]


class TestGenerator:
    def test_same_spec_same_case(self):
        spec = CaseSpec(seed=77, family="items", doc_count=5, fragment_count=3)
        first, second = generate_case(spec), generate_case(spec)
        assert first.queries == second.queries
        assert [serialize(d.root) for d in first.collection] == [
            serialize(d.root) for d in second.collection
        ]
        assert [f.describe() for f in first.design] == [
            f.describe() for f in second.design
        ]

    def test_spec_for_iteration_is_deterministic_and_covers_families(self):
        specs = [spec_for_iteration(2006, i) for i in range(9)]
        again = [spec_for_iteration(2006, i) for i in range(9)]
        assert specs == again
        assert {s.family for s in specs} == set(FAMILIES)

    def test_spec_roundtrips_through_dict(self):
        spec = spec_for_iteration(1, 4)
        assert CaseSpec.from_dict(spec.to_dict()) == spec

    def test_invalid_spec_rejected(self):
        with pytest.raises(GenerationError):
            CaseSpec(seed=1, family="nope", doc_count=3, fragment_count=2)
        with pytest.raises(GenerationError):
            CaseSpec(seed=1, family="items", doc_count=0, fragment_count=2)

    def test_query_index_pins_one_query(self):
        spec = CaseSpec(
            seed=5, family="items", doc_count=3, fragment_count=2, query_index=2
        )
        case = generate_case(spec)
        assert len(case.queries) == spec.query_count
        assert case.active_queries == [(2, case.queries[2])]


class TestOracleGreenPath:
    @pytest.mark.parametrize(
        "spec", SMOKE_SPECS, ids=lambda s: f"{s.family}-m{s.frag_mode}"
    )
    def test_clean_case_has_no_mismatches(self, spec):
        outcome = run_case(spec)
        assert outcome.ok, [m.detail for m in outcome.mismatches]
        assert outcome.queries_run + outcome.queries_skipped == spec.query_count

    def test_run_fuzz_summary_shape(self):
        summary = run_fuzz(seed=2006, iterations=3, minimize=False)
        assert summary["ok"] is True
        assert summary["cases"] == 3
        assert summary["failures"] == []
        json.dumps(summary)  # JSON-able end to end


def _order_scrambling_partix(cluster):
    """A middleware whose dispatcher mis-aligns completed sub-queries —
    the composer-ordering bug the oracle must catch."""

    class ScramblingDispatcher(ParallelDispatcher):
        def dispatch(self, cluster_, subqueries, default_collection=None):
            outcome = super().dispatch(cluster_, subqueries, default_collection)
            outcome.executions_by_index.reverse()
            return outcome

    return Partix(cluster, dispatcher=ScramblingDispatcher())


def _find_injected_failure():
    """First iteration whose case trips the injected ordering bug."""
    for iteration in range(40):
        spec = spec_for_iteration(2006, iteration)
        outcome = run_case(spec, partix_factory=_order_scrambling_partix)
        if not outcome.ok:
            return spec, outcome
    raise AssertionError("injected ordering bug never detected in 40 cases")


class TestInjectedOrderingBug:
    def test_detected_minimized_and_reproduced(self, tmp_path):
        spec, outcome = _find_injected_failure()
        assert "mode" in outcome.mismatch_kinds() or "answer" in outcome.mismatch_kinds()

        minimized = minimize_spec(
            spec, outcome, partix_factory=_order_scrambling_partix
        )
        assert minimized.mismatch_kinds() == outcome.mismatch_kinds()
        assert minimized.spec.query_index is not None  # pinned to one query
        assert minimized.spec.doc_count <= spec.doc_count
        assert minimized.spec.fragment_count <= spec.fragment_count

        repro_dir = tmp_path / "tests" / "repros"
        path = write_repro(minimized, str(repro_dir))
        assert Path(path).is_file()
        body = Path(path).read_text()
        assert "CaseSpec.from_dict" in body
        # The reproducer is valid Python and pins the minimized spec.
        namespace = {}
        exec(compile(body, path, "exec"), namespace)  # noqa: S102 — own artifact
        assert namespace["SPEC"] == minimized.spec
        # Against the FIXED stack the reproducer passes (regression test
        # semantics); under the injected bug it fails.
        test = next(v for k, v in namespace.items() if k.startswith("test_"))
        test()  # must not raise
        assert not run_case(
            minimized.spec, partix_factory=_order_scrambling_partix
        ).ok

    def test_run_fuzz_reports_and_writes_repro(self, tmp_path):
        summary = run_fuzz(
            seed=2006,
            iterations=10,
            partix_factory=_order_scrambling_partix,
            repro_dir=str(tmp_path),
            max_failures=1,
        )
        assert summary["ok"] is False
        assert summary["failures"]
        failure = summary["failures"][0]
        assert failure["repro_path"].startswith(str(tmp_path))
        assert Path(failure["repro_path"]).is_file()
        assert "minimized" in failure


class TestPlanOrderStability:
    """Regression for the composer-ordering satellite: composition must
    follow plan order no matter in which order dispatch lanes complete.
    The middleware guarantees this by re-pairing results through
    ``executions_by_index``; these tests pin that contract."""

    def test_threads_mode_is_byte_identical_across_repeats(self):
        spec = CaseSpec(seed=99, family="items", doc_count=6, fragment_count=4)
        case = generate_case(spec)
        from repro.cluster.site import Cluster, Site
        from repro.fuzz.runner import CENTRAL_SITE

        cluster = Cluster.with_sites(len(case.design))
        partix = Partix(cluster)
        partix.publish(case.collection, case.design, frag_mode=case.frag_mode)
        cluster.add(Site(CENTRAL_SITE))
        partix.publish_centralized(case.collection, CENTRAL_SITE)
        for _, query in case.active_queries:
            baseline = partix.execute(query, "Cfuzz").result_text
            for _ in range(3):
                threaded = partix.execute(
                    query, "Cfuzz", execution_mode="threads"
                ).result_text
                assert threaded == baseline

    def test_completion_order_does_not_leak_into_composition(self):
        # A dispatcher that reports completions in reverse plan order but
        # keeps the index alignment intact: the composed answer must not
        # change — only misaligned *indices* (the injected bug above) may
        # break it.
        class ReverseCompletion(ParallelDispatcher):
            def dispatch(self, cluster_, subqueries, default_collection=None):
                outcome = super().dispatch(
                    cluster_, subqueries, default_collection
                )
                outcome.round.executions.reverse()  # completion log only
                return outcome

        spec = CaseSpec(seed=41, family="items", doc_count=5, fragment_count=3)
        outcome = run_case(
            spec, partix_factory=lambda c: Partix(c, dispatcher=ReverseCompletion())
        )
        assert outcome.ok, [m.detail for m in outcome.mismatches]


class TestCli:
    def test_cli_green_session(self, tmp_path):
        output = tmp_path / "summary.json"
        process = subprocess.run(
            [
                sys.executable, "-m", "repro.fuzz",
                "--seed", "2006", "--iterations", "3",
                "--no-repros", "--output", str(output),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert process.returncode == 0, process.stderr
        summary = json.loads(output.read_text())
        assert summary["ok"] is True and summary["cases"] == 3
        assert "repro.fuzz" in process.stderr  # human digest on stderr

    def test_cli_replay(self):
        spec_json = json.dumps(
            CaseSpec(seed=11, family="items", doc_count=3, fragment_count=2).to_dict()
        )
        process = subprocess.run(
            [sys.executable, "-m", "repro.fuzz", "--replay", spec_json],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert process.returncode == 0, process.stderr
        payload = json.loads(process.stdout)
        assert payload["ok"] is True
