"""Binary node tables: encoding, prefix labels, postings, persistence.

PR 9's storage layer: every stored document carries a compact preorder
node table (strings interned in a per-collection pool, each node holding
a Dewey-style prefix label), the path evaluator and predicate engine run
directly over it, indexes post prefix labels, and engines with a
``storage_dir`` reload the tables from disk without ever re-tokenizing
XML text.
"""

import pytest

from repro.datamodel import doc, elem
from repro.datamodel.binary import (
    KIND_ATTRIBUTE,
    KIND_ELEMENT,
    KIND_TEXT,
    BinaryXMLDocument,
    StringPool,
)
from repro.engine import XMLEngine
from repro.engine.store import DocumentStore
from repro.paths.evaluator import evaluate_path, evaluate_path_binary
from repro.paths.parser import parse_path
from repro.paths.predicates import (
    contains,
    eq,
    evaluate_on_binary,
    exists,
    func_cmp,
)
from repro.xmltext import parse_xml, serialize


def _sample_document(name="sample.xml"):
    return doc(
        elem(
            "Store",
            elem(
                "Items",
                elem(
                    "Item",
                    elem("Code", "17"),
                    elem("Description", "good red bicycle"),
                    category="bikes",
                ),
                elem(
                    "Item",
                    elem("Code", "42"),
                    elem("Description", "plain kettle"),
                    category="kitchen",
                ),
            ),
        ),
        name=name,
    )


class TestEncodeDecode:
    def test_round_trip_preserves_tree_and_node_ids(self):
        document = _sample_document()
        pool = StringPool()
        binary = BinaryXMLDocument.encode(document, pool)
        restored = BinaryXMLDocument.from_bytes(binary.to_bytes(), pool)
        materialized = restored.materialize(name=document.name)
        assert materialized.tree_equal(document, compare_ids=True)
        assert materialized.name == document.name

    def test_kinds_and_interning(self):
        document = _sample_document()
        pool = StringPool()
        binary = BinaryXMLDocument.encode(document, pool)
        kinds = set(binary.kinds)
        assert kinds == {KIND_ELEMENT, KIND_ATTRIBUTE, KIND_TEXT}
        # "Item", "Code", … are interned once however often they occur.
        item_ids = {
            binary.names[i]
            for i in range(len(binary))
            if binary.kinds[i] == KIND_ELEMENT
            and binary.name_of(i) == "Item"
        }
        assert len(item_ids) == 1

    def test_pool_is_append_only_across_documents(self):
        pool = StringPool()
        first = BinaryXMLDocument.encode(_sample_document("a.xml"), pool)
        size_after_first = len(pool)
        BinaryXMLDocument.encode(
            doc(elem("Other", elem("Brand", "new")), name="b.xml"), pool
        )
        # Older tables stay decodable: their ids are still valid.
        assert len(pool) >= size_after_first
        assert first.materialize().tree_equal(_sample_document("a.xml"))

    def test_corrupt_bytes_rejected(self):
        pool = StringPool()
        with pytest.raises(ValueError):
            BinaryXMLDocument.from_bytes(b"not a node table", pool)
        with pytest.raises(ValueError):
            StringPool.from_bytes(b"junk")


class TestPrefixLabels:
    def test_labels_follow_parents(self):
        document = _sample_document()
        binary = BinaryXMLDocument.encode(document, StringPool())
        for index in range(len(binary)):
            parent = binary.parents[index]
            if parent < 0:
                assert binary.labels[index] == ()
            else:
                # A child's label is its parent's plus one component.
                assert binary.labels[index][:-1] == binary.labels[parent]

    def test_ancestor_is_proper_label_prefix(self):
        binary = BinaryXMLDocument.encode(_sample_document(), StringPool())
        for a in range(len(binary)):
            for d in range(len(binary)):
                by_range = binary.is_ancestor(a, d)
                la, ld = binary.labels[a], binary.labels[d]
                by_prefix = len(la) < len(ld) and ld[: len(la)] == la
                assert by_range == by_prefix

    def test_descendant_range_is_contiguous_preorder(self):
        binary = BinaryXMLDocument.encode(_sample_document(), StringPool())
        for index in range(len(binary)):
            inside = set(binary.descendant_range(index))
            walked = {
                d for d in range(len(binary)) if binary.is_ancestor(index, d)
            }
            assert inside == walked

    def test_path_evaluation_matches_dom(self):
        document = _sample_document()
        binary = BinaryXMLDocument.encode(document, StringPool())
        for text in (
            "/Store/Items/Item",
            "//Item/Code",
            "//Description",
            "/Store//Item/@category",
            "//Missing",
        ):
            path = parse_path(text)
            dom_nodes = evaluate_path(path, document.root)
            positions = evaluate_path_binary(path, binary)
            assert [binary.path_labels(p) for p in positions] == [
                tuple(
                    ("@" + n.label) if n.kind.value == "attribute" else n.label
                    for n in _path_to(node)
                )
                for node in dom_nodes
            ], text

    def test_predicates_match_dom_evaluation(self):
        document = _sample_document()
        binary = BinaryXMLDocument.encode(document, StringPool())
        cases = [
            eq("//Code", 17),
            eq("//Code", 99),
            contains("//Description", "bicycle"),
            exists("//Item/@category"),
            exists("//Brand"),
            func_cmp("count", "//Item", ">", 1),
        ]
        for predicate in cases:
            assert evaluate_on_binary(predicate, binary) == bool(
                predicate.evaluate(document.root)
            ), str(predicate)


def _path_to(node):
    chain = []
    while node is not None:
        chain.append(node)
        node = node.parent
    return list(reversed(chain))


class TestLabelPostings:
    def test_value_index_posts_prefix_labels(self):
        store = DocumentStore()
        store.create_collection("c")
        store.store_document(
            "c", serialize(_sample_document()), name="s.xml"
        )
        collection = store.collection("c")
        postings = collection.values.lookup_nodes("Code", "17")
        assert set(postings) == {"s.xml"}
        binary = collection.get("s.xml").binary
        (label,) = postings["s.xml"]
        matches = [
            i
            for i in range(len(binary))
            if binary.labels[i] == tuple(label)
        ]
        assert len(matches) == 1
        assert binary.name_of(matches[0]) == "Code"
        assert binary.text_value(matches[0]) == "17"

    def test_path_index_posts_prefix_labels(self):
        store = DocumentStore()
        store.create_collection("c")
        store.store_document(
            "c", serialize(_sample_document()), name="s.xml"
        )
        collection = store.collection("c")
        postings = collection.paths.lookup_exact_nodes(
            ("Store", "Items", "Item")
        )
        assert set(postings) == {"s.xml"}
        assert len(postings["s.xml"]) == 2  # two Item elements


class TestPersistence:
    def _store_two(self, path):
        engine = XMLEngine("p", storage_dir=str(path))
        engine.create_collection("c")
        engine.store_document(
            "c", serialize(_sample_document("a.xml")), name="a.xml"
        )
        engine.store_document(
            "c",
            "<Store><Items><Item><Code>5</Code></Item></Items></Store>",
            name="b.xml",
        )
        return engine

    def test_reload_decodes_without_reparsing(self, tmp_path, monkeypatch):
        self._store_two(tmp_path)
        # A fresh engine over the same directory must answer from the
        # persisted node tables alone — re-tokenizing XML text anywhere
        # on the query path is the regression this guard exists for.
        import repro.engine.store as store_module

        def _forbidden(*args, **kwargs):
            raise AssertionError(
                "reload must not re-parse XML text"
            )

        monkeypatch.setattr(store_module, "parse_xml", _forbidden)
        reloaded = XMLEngine("p2", storage_dir=str(tmp_path))
        result = reloaded.execute(
            'for $i in collection("c")/Store/Items/Item'
            " where $i/Code = 5 return $i/Code",
            use_indexes=False,
        )
        assert "5" in result.result_text
        assert result.binary_decodes > 0

    def test_pool_file_written(self, tmp_path):
        self._store_two(tmp_path)
        assert (tmp_path / "c" / "_pool.bin").exists()
        assert (tmp_path / "c" / "a.xml.pxb").exists()

    def test_missing_tables_fall_back_to_reencoding(self, tmp_path):
        self._store_two(tmp_path)
        for table in (tmp_path / "c").glob("*.pxb"):
            table.unlink()
        (tmp_path / "c" / "_pool.bin").unlink()
        reloaded = XMLEngine("p3", storage_dir=str(tmp_path))
        result = reloaded.execute(
            'for $i in collection("c")/Store/Items/Item'
            " where $i/Code = 5 return $i/Code",
            use_indexes=False,
        )
        assert "5" in result.result_text
        # Old on-disk stores hold raw bytes only: the documents parse
        # once and the indexes still ingest from a freshly built table.
        assert reloaded.store.collection("c").values.lookup("Code", "5")


class TestLabelPushdownPruning:
    @staticmethod
    def _load(engine):
        engine.create_collection("c")
        for index in range(6):
            items = [
                elem("Item", elem("Code", str(i)))
                for i in range(1 if index % 2 else 3)
            ]
            engine.store_document(
                "c",
                serialize(doc(elem("Store", *items), name=f"d{index}.xml")),
                name=f"d{index}.xml",
            )

    def test_unindexable_predicate_prunes_before_dom(self):
        engine = XMLEngine("prune", use_indexes=True)
        self._load(engine)
        query = 'for $s in collection("c")/Store return $s/Item/Code'
        predicate = func_cmp("count", "//Item", ">", 2)
        result = engine.execute(query, extra_predicate=predicate)
        # count(...) has no index; candidates stay the whole collection
        # and exact binary verification drops the non-matching half
        # without materializing any of them.
        assert result.label_pruned > 0
        assert result.documents_parsed < 6
        # Pushing a predicate is a pruning *hint* — pruning with it is
        # only sound for documents where it holds, which is exactly what
        # a collection of just the matching documents expresses.
        baseline = XMLEngine("scan", use_indexes=False)
        baseline.create_collection("c")
        for index in range(0, 6, 2):
            items = [elem("Item", elem("Code", str(i))) for i in range(3)]
            baseline.store_document(
                "c",
                serialize(doc(elem("Store", *items), name=f"d{index}.xml")),
                name=f"d{index}.xml",
            )
        assert result.result_text == baseline.execute(query).result_text
