"""Integration tests: the three experiments end-to-end at tiny scale.

For every benchmark query of every experiment, the fragmented execution
must return the same answer as the centralized baseline — this is the
operational meaning of the §3.3 correctness rules.
"""

import pytest

from repro.bench.scenarios import CENTRAL_SITE, _result_signature
from repro.cluster import Cluster, Site
from repro.partix import FragMode, Partix
from repro.workloads import (
    build_items_collection,
    build_store_collection,
    build_xbench_collection,
    items_horizontal_fragmentation,
    items_queries,
    store_hybrid_fragmentation,
    store_queries,
    xbench_queries,
    xbench_vertical_fragmentation,
)


def make_partix(fragment_sites):
    cluster = Cluster.with_sites(fragment_sites)
    cluster.add(Site(CENTRAL_SITE))
    return Partix(cluster)


def assert_equivalent(partix, query):
    distributed = partix.execute(query.text)
    centralized = partix.execute_centralized(query.text, CENTRAL_SITE)
    assert _result_signature(distributed.result_text) == _result_signature(
        centralized.result_text
    ), f"{query.qid}: fragmented result differs\nplan notes: {distributed.notes}"
    return distributed


class TestHorizontalExperiment:
    @pytest.fixture(scope="class", params=[2, 4, 8])
    def setup(self, request):
        collection = build_items_collection(40, kind="small", seed=11)
        partix = make_partix(request.param)
        partix.publish(collection, items_horizontal_fragmentation(request.param))
        partix.publish_centralized(collection, CENTRAL_SITE)
        return partix

    @pytest.mark.parametrize("qid", [f"Q{i}" for i in range(1, 9)])
    def test_query_equivalence(self, setup, qid):
        query = {q.qid: q for q in items_queries()}[qid]
        assert_equivalent(setup, query)

    def test_matching_query_uses_single_fragment(self, setup):
        query = {q.qid: q for q in items_queries()}["Q2"]
        result = setup.execute(query.text)
        assert len(result.plan.subqueries) == 1


class TestVerticalExperiment:
    @pytest.fixture(scope="class")
    def setup(self):
        collection = build_xbench_collection(6, doc_bytes=4_000, seed=3)
        partix = make_partix(3)
        partix.publish(collection, xbench_vertical_fragmentation())
        partix.publish_centralized(collection, CENTRAL_SITE)
        return partix

    @pytest.mark.parametrize("qid", [f"Q{i}" for i in range(1, 11)])
    def test_query_equivalence(self, setup, qid):
        query = {q.qid: q for q in xbench_queries()}[qid]
        assert_equivalent(setup, query)

    def test_single_fragment_queries_avoid_join(self, setup):
        queries = {q.qid: q for q in xbench_queries()}
        for qid in ("Q1", "Q2", "Q3", "Q6"):
            result = setup.execute(queries[qid].text)
            assert result.plan.composition.kind != "reconstruct", qid
            assert len(result.plan.subqueries) == 1, qid

    def test_multi_fragment_queries_reconstruct(self, setup):
        queries = {q.qid: q for q in xbench_queries()}
        for qid in ("Q4", "Q8", "Q9"):
            result = setup.execute(queries[qid].text)
            assert result.plan.composition.kind == "reconstruct", qid


class TestHybridExperiment:
    @pytest.fixture(
        scope="class",
        params=[FragMode.INDEPENDENT_DOCUMENTS, FragMode.SINGLE_DOCUMENT],
        ids=["FragMode1", "FragMode2"],
    )
    def setup(self, request):
        collection = build_store_collection(40, seed=13)
        partix = make_partix(5)
        partix.publish(
            collection,
            store_hybrid_fragmentation(4),
            frag_mode=request.param,
        )
        partix.publish_centralized(collection, CENTRAL_SITE)
        return partix

    @pytest.mark.parametrize("qid", [f"Q{i}" for i in range(1, 12)])
    def test_query_equivalence(self, setup, qid):
        query = {q.qid: q for q in store_queries()}[qid]
        assert_equivalent(setup, query)

    def test_pruning_queries_hit_remainder_only(self, setup):
        queries = {q.qid: q for q in store_queries()}
        for qid in ("Q9", "Q10"):
            result = setup.execute(queries[qid].text)
            assert result.plan.fragment_names == ["F1"], qid

    def test_section_query_localizes(self, setup):
        queries = {q.qid: q for q in store_queries()}
        result = setup.execute(queries["Q2"].text)
        assert len(result.plan.subqueries) == 1


class TestLargeDocumentHorizontalExperiment:
    """ItemsLHor at tiny scale: equivalence holds for 80KB documents too."""

    @pytest.fixture(scope="class")
    def setup(self):
        collection = build_items_collection(6, kind="large", seed=19)
        partix = make_partix(2)
        partix.publish(collection, items_horizontal_fragmentation(2))
        partix.publish_centralized(collection, CENTRAL_SITE)
        return partix

    @pytest.mark.parametrize("qid", ["Q2", "Q4", "Q5", "Q7", "Q8"])
    def test_query_equivalence(self, setup, qid):
        query = {q.qid: q for q in items_queries()}[qid]
        assert_equivalent(setup, query)

    def test_large_items_have_picture_lists(self, setup):
        result = setup.execute(
            'count(for $i in collection("Citems")/Item'
            " where $i/PictureList return $i)"
        )
        assert result.result_text == "6"


class TestReplicatedExperiment:
    """Full replication across two sites still answers every query."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.partix import FragmentAllocation

        collection = build_items_collection(20, kind="small", seed=23)
        partix = make_partix(2)
        design = items_horizontal_fragmentation(4)
        allocations = [
            FragmentAllocation(name, site, name)
            for name in design.fragment_names()
            for site in ("site0", "site1")
        ]
        partix.publish(collection, design, allocations=allocations)
        partix.publish_centralized(collection, CENTRAL_SITE)
        return partix

    @pytest.mark.parametrize("qid", ["Q1", "Q2", "Q5", "Q8"])
    def test_query_equivalence(self, setup, qid):
        query = {q.qid: q for q in items_queries()}[qid]
        assert_equivalent(setup, query)

    def test_plan_balances_sites(self, setup):
        # Cost-based lane scheduling over fully replicated fragments:
        # the seed-23 collection is skewed (F1 holds 12 of 20 documents),
        # so the planner isolates the heavy fragment on one site and
        # packs the three light ones onto the other — a better projected
        # makespan than spreading by sub-query count.
        plan = setup.explain('count(collection("Citems")/Item)')
        sites = [sq.site for sq in plan.subqueries]
        assert set(sites) == {"site0", "site1"}
        heavy_site = next(
            sq.site for sq in plan.subqueries if sq.fragment == "F1"
        )
        assert sites.count(heavy_site) == 1
        busy: dict[str, float] = {}
        for lane in plan.lanes:
            busy[lane.subquery.site] = (
                busy.get(lane.subquery.site, 0.0)
                + lane.estimate.total_seconds
            )
        light_site = next(s for s in busy if s != heavy_site)
        # Greedy min-projected-busy: the light site's total stays under
        # the heavy fragment's cost (otherwise a lane would have moved).
        assert busy[light_site] <= busy[heavy_site]
