"""Unit tests for the XQuery evaluator and function library."""

import math

import pytest

from repro.datamodel import XMLNode, doc, elem
from repro.errors import XQueryEvaluationError, XQueryTypeError
from repro.xmltext import serialize
from repro.xquery import evaluate_query


class ListProvider:
    """A DocumentProvider over in-memory documents."""

    def __init__(self, documents):
        self.documents = documents

    def collection_roots(self, name):
        return [d.root for d in self.documents]

    def document_root(self, name):
        for document in self.documents:
            if document.name == name:
                return document.root
        return None


@pytest.fixture
def provider():
    documents = []
    for i in range(6):
        documents.append(
            doc(
                elem(
                    "Item",
                    elem("Code", f"I{i}"),
                    elem("Section", "CD" if i % 2 == 0 else "DVD"),
                    elem("Price", str(10 + i)),
                    elem("Description", f"number {i} " + ("good" if i < 3 else "plain")),
                ),
                name=f"item{i}.xml",
            )
        )
    return ListProvider(documents)


def run(query, provider=None, **kwargs):
    return evaluate_query(query, provider=provider, **kwargs)


class TestBasics:
    def test_literals_and_arithmetic(self):
        assert run("1 + 2 * 3") == [7]
        assert run("10 div 4") == [2.5]
        assert run("10 mod 3") == [1]
        assert run("-(2 + 3)") == [-5]

    def test_division_by_zero(self):
        with pytest.raises(XQueryEvaluationError, match="zero"):
            run("1 div 0")

    def test_sequences_flatten(self):
        assert run("(1, (2, 3), ())") == [1, 2, 3]

    def test_range(self):
        assert run("2 to 5") == [2, 3, 4, 5]
        assert run("5 to 2") == []

    def test_comparison_general(self):
        assert run("(1, 2) = (2, 3)") == [True]
        assert run("(1, 2) = (5, 6)") == [False]
        assert run('"abc" < "abd"') == [True]

    def test_numeric_promotion_in_comparison(self):
        assert run('"10" > 9') == [True]

    def test_and_or_short_circuit(self):
        assert run("1 = 1 or 1 div 0 = 1") == [True]
        assert run("1 = 2 and 1 div 0 = 1") == [False]

    def test_if_else(self):
        assert run("if (1 = 1) then 10 else 20") == [10]
        assert run("if (()) then 10 else 20") == [20]

    def test_unbound_variable(self):
        with pytest.raises(XQueryEvaluationError, match="unbound"):
            run("$nope")

    def test_injected_variables(self):
        assert run("$x + 1", variables={"x": [41]}) == [42]


class TestPathsAndContext:
    def test_collection_roots_match_first_step(self, provider):
        assert len(run('collection("c")/Item', provider)) == 6

    def test_collection_descendant(self, provider):
        assert len(run('collection("c")//Code', provider)) == 6

    def test_doc_function(self, provider):
        result = run('doc("item2.xml")/Item/Code/text()', provider)
        assert [n.value for n in result] == ["I2"]

    def test_doc_missing_is_empty(self, provider):
        assert run('doc("nope.xml")', provider) == []

    def test_step_on_atomic_rejected(self):
        with pytest.raises(XQueryTypeError):
            run("(1)/a", None, variables={})

    def test_predicate_boolean(self, provider):
        result = run('collection("c")/Item[Section = "CD"]', provider)
        assert len(result) == 3

    def test_predicate_positional(self, provider):
        result = run('collection("c")/Item[2]/Code/text()', provider)
        # positional over the step result sequence per context node; the
        # roots are separate contexts so [2] filters within each (1 item
        # each) -> empty
        assert result == []

    def test_positional_within_document(self):
        document = doc(elem("a", *[elem("b", str(i)) for i in range(4)]))
        provider = ListProvider([document])
        result = run('collection("c")/a/b[3]/text()', provider)
        assert [n.value for n in result] == ["2"]

    def test_position_last_functions(self):
        document = doc(elem("a", elem("b", "0"), elem("b", "1"), elem("b", "2")))
        provider = ListProvider([document])
        assert len(run('collection("c")/a/b[position() = last()]', provider)) == 1

    def test_filter_expr_on_variable(self):
        document = doc(elem("a", elem("b", "1"), elem("b", "2")))
        result = run(
            "$xs[2]", variables={"xs": list(document.root.children)}
        )
        assert result[0].text_value() == "2"

    def test_attribute_step(self):
        document = doc(elem("a", elem("b", id="7")))
        provider = ListProvider([document])
        result = run('collection("c")/a/b/@id', provider)
        assert result[0].value == "7"

    def test_text_step(self):
        document = doc(elem("a", elem("b", "hello")))
        provider = ListProvider([document])
        result = run('collection("c")/a/b/text()', provider)
        assert result[0].value == "hello"

    def test_union_operator(self):
        document = doc(elem("a", elem("b", "1"), elem("c", "2")))
        provider = ListProvider([document])
        result = run('(collection("x")/a/b | collection("x")/a/c)', provider)
        assert len(result) == 2


class TestFLWOR:
    def test_where_filters(self, provider):
        result = run(
            'for $i in collection("c")/Item where $i/Price > 13'
            " return $i/Code/text()",
            provider,
        )
        assert [n.value for n in result] == ["I4", "I5"]

    def test_let_binds_sequence(self, provider):
        result = run(
            'let $all := collection("c")/Item return count($all)', provider
        )
        assert result == [6]

    def test_nested_for_cross_product(self):
        assert run("for $a in (1,2) for $b in (10,20) return $a * $b") == [
            10,
            20,
            20,
            40,
        ]

    def test_position_variable(self):
        assert run('for $x at $p in ("a","b","c") return $p') == [1, 2, 3]

    def test_order_by_ascending_numeric(self, provider):
        result = run(
            'for $i in collection("c")/Item order by $i/Price descending'
            " return $i/Code/text()",
            provider,
        )
        assert [n.value for n in result] == ["I5", "I4", "I3", "I2", "I1", "I0"]

    def test_order_by_string(self):
        result = run('for $x in ("pear", "apple", "fig") order by $x return $x')
        assert result == ["apple", "fig", "pear"]

    def test_order_by_two_keys(self):
        result = run(
            "for $x in (3, 1, 2, 1) order by $x, $x * -1 return $x"
        )
        assert result == [1, 1, 2, 3]

    def test_quantifiers(self, provider):
        assert run(
            'some $i in collection("c")/Item satisfies $i/Price > 14', provider
        ) == [True]
        assert run(
            'every $i in collection("c")/Item satisfies $i/Price > 14', provider
        ) == [False]


class TestConstructors:
    def test_element_with_attribute_and_text(self, provider):
        result = run(
            'for $i in collection("c")/Item[Code = "I1"]'
            " return element hit { attribute code { $i/Code }, $i/Section/text() }",
            provider,
        )
        assert serialize(result[0]) == '<hit code="I1">DVD</hit>'

    def test_atomics_joined_with_space(self):
        result = run('element r { "a", "b", 3 }')
        assert serialize(result[0]) == "<r>a b 3</r>"

    def test_nodes_are_copied(self, provider):
        result = run('for $i in collection("c")/Item[1] return element w { $i/Code }', provider)
        inner = result[0].element_children()[0]
        assert inner.label == "Code"
        assert inner.parent is result[0]

    def test_text_constructor(self):
        result = run('text { "hi" }')
        assert isinstance(result[0], XMLNode) and result[0].value == "hi"


class TestFunctions:
    def test_count_sum_avg_min_max(self):
        assert run("count((1,2,3))") == [3]
        assert run("sum((1,2,3))") == [6.0]
        assert run("avg((2,4))") == [3.0]
        assert run("min((3,1,2))") == [1]
        assert run("max((3,1,2))") == [3]
        assert run("avg(())") == []
        assert run("sum(())") == [0.0]

    def test_min_max_strings(self):
        assert run('min(("b","a"))') == ["a"]

    def test_sum_non_numeric_raises(self):
        with pytest.raises(XQueryTypeError):
            run('sum(("a","b"))')

    def test_boolean_functions(self):
        assert run("not(1 = 1)") == [False]
        assert run("empty(())") == [True]
        assert run("exists((1))") == [True]
        assert run("true()") == [True]
        assert run("boolean(0)") == [False]

    def test_string_functions(self):
        assert run('contains("goodness", "good")') == [True]
        assert run('starts-with("partix", "par")') == [True]
        assert run('ends-with("partix", "ix")') == [True]
        assert run('string-length("abcd")') == [4]
        assert run('concat("a", "b", "c")') == ["abc"]
        assert run('substring("abcdef", 2, 3)') == ["bcd"]
        assert run('substring("abcdef", 4)') == ["def"]
        assert run('string-join(("a","b"), "-")') == ["a-b"]
        assert run('normalize-space("  a   b  ")') == ["a b"]
        assert run('upper-case("ab")') == ["AB"]
        assert run('lower-case("AB")') == ["ab"]

    def test_contains_over_node_sequence_is_existential(self, provider):
        result = run(
            'count(for $i in collection("c")/Item'
            ' where contains($i/Description, "good") return $i)',
            provider,
        )
        assert result == [3]

    def test_numeric_functions(self):
        assert run('number("3.5")') == [3.5]
        assert math.isnan(run("number(())")[0])
        assert run("round(2.5)") == [3.0]
        assert run("floor(2.9)") == [2.0]
        assert run("ceiling(2.1)") == [3.0]

    def test_distinct_values(self):
        assert run('distinct-values(("a", "b", "a", "b"))') == ["a", "b"]

    def test_data_atomizes_nodes(self):
        document = doc(elem("a", elem("b", "x")))
        result = run("data($n)", variables={"n": [document.root.children[0]]})
        assert result == ["x"]

    def test_name_function(self):
        document = doc(elem("a", elem("b")))
        assert run("name($n)", variables={"n": [document.root]}) == ["a"]

    def test_string_of_node(self):
        document = doc(elem("a", elem("b", "xy")))
        assert run("string($n)", variables={"n": [document.root]}) == ["xy"]

    def test_unknown_function(self):
        with pytest.raises(XQueryEvaluationError, match="unknown function"):
            run("frobnicate(1)")

    def test_arity_checked(self):
        with pytest.raises(XQueryTypeError):
            run("count(1, 2)")


class TestEffectiveBoolean:
    def test_multi_atomic_sequence_has_no_ebv(self):
        with pytest.raises(XQueryTypeError):
            run("if ((1, 2)) then 1 else 2")

    def test_node_sequence_is_true(self, provider):
        assert run(
            'if (collection("c")/Item) then "yes" else "no"', provider
        ) == ["yes"]


class TestNodeSetOperators:
    def _provider(self):
        document = doc(elem("a",
            elem("b", elem("x", "1")),
            elem("b", elem("y", "2")),
            elem("b", elem("x", "3"), elem("y", "4"))))
        return ListProvider([document])

    def test_intersect(self):
        result = run(
            '(collection("c")/a/b intersect collection("c")/a/b[x])',
            self._provider(),
        )
        assert len(result) == 2

    def test_except(self):
        result = run(
            '(collection("c")/a/b except collection("c")/a/b[x])',
            self._provider(),
        )
        assert len(result) == 1
        assert result[0].first_child("y") is not None

    def test_chained_set_ops(self):
        result = run(
            '(collection("c")/a/b[x] intersect collection("c")/a/b[y])',
            self._provider(),
        )
        assert len(result) == 1  # only the third b has both

    def test_set_ops_reject_atomics(self):
        with pytest.raises(XQueryTypeError):
            run("((1,2) intersect (2,3))")

    def test_unparse_round_trip(self):
        from repro.xquery.parser import parse_query
        from repro.xquery.unparse import unparse

        text = '(collection("c")/a except collection("c")/a/b)'
        ast = parse_query(text)
        assert parse_query(unparse(ast)) == ast


class TestExtendedStringFunctions:
    def test_substring_before_after(self):
        assert run('substring-before("2005-01-15", "-")') == ["2005"]
        assert run('substring-after("2005-01-15", "-")') == ["01-15"]
        assert run('substring-before("abc", "z")') == [""]
        assert run('substring-after("abc", "z")') == [""]

    def test_translate(self):
        assert run('translate("bar", "abc", "ABC")') == ["BAr"]
        # Characters without a target mapping are removed.
        assert run('translate("abcdabc", "abc", "AB")') == ["ABdAB"]

    def test_matches_and_replace(self):
        assert run('matches("item-042", "[0-9]+$")') == [True]
        assert run('matches("item", "[0-9]")') == [False]
        assert run('replace("a1b2", "[0-9]", "#")') == ["a#b#"]

    def test_tokenize(self):
        assert run('tokenize("a,b,,c", ",")') == ["a", "b", "", "c"]
        assert run('tokenize("", ",")') == []

    def test_abs(self):
        assert run("abs(-7)") == [7.0]
        assert run("abs(())") == []
