"""A deterministic clock for timing tests.

``FakeClock`` is injected into the dispatcher (``clock=clock,
sleep=clock.sleep``) and into scripted drivers: every sleep *advances*
the clock instead of blocking, so retry-budget and deadline assertions
are exact and instant — no real sleeps, no slack for machine load.
"""

from __future__ import annotations

import threading


class FakeClock:
    """Monotonic fake time: reading never advances, sleeping does."""

    def __init__(self, start: float = 0.0):
        self._now = start
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self._now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        self.sleep(seconds)
