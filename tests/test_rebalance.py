"""The online-rebalancing battery: Rebalancer, QueryLog, WorkloadAdvisor.

The core property mirrors the fuzz ``--migrate`` oracle: every
migration — split, move, promote, replicate, merge — must preserve
query answers across the catalog swap. Answers are byte-identical
except where a split legitimately reorders a multi-fragment
concatenation, in which case the line multiset must match.
"""

import threading

import pytest

from repro.cluster.site import Cluster
from repro.coordinate import Coordinator, CoordinatorClient
from repro.errors import CatalogContention, RebalanceError
from repro.partix.advisor import RebalanceAction, WorkloadAdvisor
from repro.partix.middleware import Partix
from repro.plan.cache import PlanCache
from repro.rebalance import QueryLog, Rebalancer
from repro.workloads.queries import items_queries
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)


def _published_partix(fragment_count=2, item_count=24, sites=4, **kwargs):
    collection = build_items_collection(item_count, kind="small", seed=11)
    cluster = Cluster.with_sites(sites)
    partix = Partix(cluster, **kwargs)
    partix.publish(collection, items_horizontal_fragmentation(fragment_count))
    return partix, collection


def _baselines(partix, collection):
    """qid -> (query text, serial answer) before any migration."""
    return {
        query.qid: (
            query.text,
            partix.execute(
                query.text,
                collection=collection.name,
                execution_mode="simulated",
            ).result_text,
        )
        for query in items_queries(collection.name)
    }


def _assert_answers_preserved(partix, collection, baselines):
    for qid, (text, expected) in baselines.items():
        actual = partix.execute(
            text, collection=collection.name, execution_mode="simulated"
        ).result_text
        if actual != expected:
            assert sorted(actual.splitlines()) == sorted(
                expected.splitlines()
            ), f"{qid} diverged beyond reordering"


def _fill_log(partix, collection, repetitions=3):
    """Execute the bench workload and record it like the coordinator."""
    log = QueryLog()
    catalog = partix.distribution_catalog
    for _ in range(repetitions):
        for query in items_queries(collection.name):
            result = partix.execute(
                query.text,
                collection=collection.name,
                execution_mode="simulated",
            )
            log.record_result(
                query.text,
                collection.name,
                result,
                elapsed_seconds=0.01,
                catalog_version=catalog.version,
                catalog=catalog,
            )
    return log


class TestSplit:
    def test_split_preserves_answers_and_bumps_version(self):
        partix, collection = _published_partix()
        baselines = _baselines(partix, collection)
        catalog = partix.distribution_catalog
        version = catalog.version

        report = Rebalancer(partix).split(collection.name, "F1")

        assert report.completed
        assert report.kind == "split"
        assert report.catalog_version_before == version
        assert catalog.version > version
        assert report.catalog_version_after == catalog.version
        design = catalog.fragmentation(collection.name)
        names = design.fragment_names()
        assert "F1" not in names
        for child in report.new_fragments:
            assert child in names
        _assert_answers_preserved(partix, collection, baselines)

    def test_split_halves_are_both_non_empty(self):
        partix, collection = _published_partix()
        catalog = partix.distribution_catalog
        parent_docs = catalog.statistics(
            collection.name, "F1", catalog.allocation(collection.name, "F1").site
        ).documents

        report = Rebalancer(partix).split(collection.name, "F1")

        assert report.documents_moved == parent_docs
        assert report.split_path == "/Item/Section"
        assert report.split_values
        for child in report.new_fragments:
            primary = catalog.allocation(collection.name, child)
            stats = catalog.statistics(collection.name, child, primary.site)
            assert stats is not None and stats.documents >= 1

    def test_split_respects_explicit_target_sites(self):
        partix, collection = _published_partix()
        report = Rebalancer(partix).split(
            collection.name, "F1", target_sites=("site2", "site3")
        )
        catalog = partix.distribution_catalog
        assert report.target_sites == ["site2", "site3"]
        placed = {
            catalog.allocation(collection.name, child).site
            for child in report.new_fragments
        }
        assert placed == {"site2", "site3"}

    def test_split_invalidates_cached_plans_via_version_bump(self):
        partix, collection = _published_partix(plan_cache=PlanCache())
        query = items_queries(collection.name)[0].text
        baseline = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        ).result_text

        Rebalancer(partix).split(collection.name, "F1")
        after = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )

        assert after.result_text == baseline
        # The replan saw the new design: no lane scans the dead parent.
        assert all(
            execution.fragment != "F1"
            for execution in after.round.executions
        )

    def test_split_unknown_fragment_raises_typed_error(self):
        partix, collection = _published_partix()
        with pytest.raises(RebalanceError):
            Rebalancer(partix).split(collection.name, "nope")

    def test_split_needs_exactly_two_targets(self):
        partix, collection = _published_partix()
        with pytest.raises(RebalanceError, match="exactly 2 target sites"):
            Rebalancer(partix).split(
                collection.name, "F1", target_sites=("site2",)
            )


class TestMoveAndReplicate:
    def test_move_re_places_the_primary(self):
        partix, collection = _published_partix()
        baselines = _baselines(partix, collection)
        catalog = partix.distribution_catalog
        version = catalog.version

        report = Rebalancer(partix).move(collection.name, "F1", "site2")

        assert report.completed and report.kind == "move"
        assert catalog.allocation(collection.name, "F1").site == "site2"
        assert catalog.version > version
        assert report.documents_moved > 0
        _assert_answers_preserved(partix, collection, baselines)

    def test_move_to_replica_site_promotes_without_copying(self):
        partix, collection = _published_partix()
        rebalancer = Rebalancer(partix)
        rebalancer.replicate(collection.name, "F1", "site3")

        report = rebalancer.move(collection.name, "F1", "site3")

        assert report.kind == "promote"
        assert report.documents_moved == 0
        catalog = partix.distribution_catalog
        assert catalog.allocation(collection.name, "F1").site == "site3"

    def test_move_to_current_primary_rejected(self):
        partix, collection = _published_partix()
        primary = partix.distribution_catalog.allocation(
            collection.name, "F1"
        ).site
        with pytest.raises(RebalanceError, match="already primary"):
            Rebalancer(partix).move(collection.name, "F1", primary)

    def test_replicate_adds_a_replica_and_preserves_answers(self):
        partix, collection = _published_partix()
        baselines = _baselines(partix, collection)
        report = Rebalancer(partix).replicate(collection.name, "F1", "site3")

        assert report.completed and report.kind == "replicate"
        replicas = partix.distribution_catalog.replicas(
            collection.name, "F1"
        )
        assert [r.site for r in replicas][-1] == "site3"
        _assert_answers_preserved(partix, collection, baselines)

    def test_replicate_duplicate_site_rejected(self):
        partix, collection = _published_partix()
        rebalancer = Rebalancer(partix)
        rebalancer.replicate(collection.name, "F1", "site3")
        with pytest.raises(RebalanceError, match="already has a replica"):
            rebalancer.replicate(collection.name, "F1", "site3")


class TestMerge:
    def test_merge_fuses_two_siblings(self):
        partix, collection = _published_partix(fragment_count=4)
        baselines = _baselines(partix, collection)
        catalog = partix.distribution_catalog
        before = len(catalog.fragmentation(collection.name).fragments)

        report = Rebalancer(partix).merge(collection.name, "F1", "F2")

        assert report.completed and report.kind == "merge"
        design = catalog.fragmentation(collection.name)
        assert len(design.fragments) == before - 1
        assert "F1" not in design.fragment_names()
        assert "F2" not in design.fragment_names()
        assert report.new_fragments[0] in design.fragment_names()
        _assert_answers_preserved(partix, collection, baselines)

    def test_apply_merge_without_partner_rejected(self):
        partix, collection = _published_partix(fragment_count=4)
        action = RebalanceAction(
            kind="merge", collection=collection.name, fragment="F1"
        )
        with pytest.raises(RebalanceError, match="partner fragment"):
            Rebalancer(partix).apply(action)

    def test_apply_unknown_kind_rejected(self):
        partix, collection = _published_partix()
        action = RebalanceAction(
            kind="defragment", collection=collection.name, fragment="F1"
        )
        with pytest.raises(RebalanceError, match="unknown rebalance action"):
            Rebalancer(partix).apply(action)


class TestQueryLog:
    def test_ring_buffer_bounds_and_counts(self):
        log = QueryLog(capacity=3)
        partix, collection = _published_partix()
        result = partix.execute(
            "doc('i')", collection=collection.name, execution_mode="simulated"
        )
        for index in range(5):
            log.record_result(
                f"q{index}", collection.name, result, 0.01, catalog_version=1
            )
        assert len(log) == 3
        assert log.stats_payload()["recorded"] == 5
        assert [e.query for e in log.entries()] == ["q2", "q3", "q4"]

    def test_record_result_builds_lanes_with_selectivity(self):
        partix, collection = _published_partix()
        log = _fill_log(partix, collection, repetitions=1)
        entry = log.entries(collection.name)[0]
        assert entry.lanes, "executions should become lane observations"
        for lane in entry.lanes:
            assert lane.site and lane.fragment
            assert lane.selectivity is None or 0.0 <= lane.selectivity <= 1.0

    def test_frequencies_and_stats_payload(self):
        partix, collection = _published_partix()
        log = _fill_log(partix, collection, repetitions=2)
        tally = log.frequencies(collection.name)
        assert all(count == 2 for count in tally.values())
        payload = log.stats_payload()
        assert payload["distinct_queries"] == len(tally)
        assert payload["busiest_sites"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)


class TestWorkloadAdvisor:
    def _advisor(self, partix, log):
        return WorkloadAdvisor(
            partix.distribution_catalog,
            partix.cost_model,
            log,
            partix.cluster.site_names(),
        )

    def test_empty_log_advises_nothing(self):
        partix, collection = _published_partix()
        assert self._advisor(partix, QueryLog()).advise() == []

    def test_ranked_actions_lead_with_a_positive_score(self):
        partix, collection = _published_partix()
        log = _fill_log(partix, collection)
        actions = self._advisor(partix, log).advise(collection=collection.name)
        assert actions
        scores = [action.score for action in actions]
        assert scores == sorted(scores, reverse=True)
        top = actions[0]
        assert top.kind in ("split", "move")
        assert top.score > 0.0
        assert top.projected_bottleneck_seconds < top.current_bottleneck_seconds
        assert top.rationale

    def test_split_targets_keep_the_bottleneck_and_use_a_cold_site(self):
        partix, collection = _published_partix()
        log = _fill_log(partix, collection)
        actions = self._advisor(partix, log).advise(collection=collection.name)
        split = next(a for a in actions if a.kind == "split")
        assert len(split.target_sites) == 2
        # The second target is a site holding no fragment yet.
        catalog = partix.distribution_catalog
        primaries = {
            catalog.allocation(collection.name, name).site
            for name in catalog.fragmentation(collection.name).fragment_names()
        }
        assert split.target_sites[1] not in primaries

    def test_replicate_is_scored_at_zero_latency_benefit(self):
        partix, collection = _published_partix()
        log = _fill_log(partix, collection)
        actions = self._advisor(partix, log).advise(collection=collection.name)
        replicate = next(a for a in actions if a.kind == "replicate")
        assert replicate.score == 0.0
        assert (
            replicate.projected_bottleneck_seconds
            == replicate.current_bottleneck_seconds
        )

    def test_top_limits_the_ranking(self):
        partix, collection = _published_partix()
        log = _fill_log(partix, collection)
        actions = self._advisor(partix, log).advise(
            collection=collection.name, top=1
        )
        assert len(actions) == 1

    def test_action_round_trips_through_dict(self):
        action = RebalanceAction(
            kind="split",
            collection="C",
            fragment="F1",
            target_sites=("a", "b"),
            score=1.25,
            current_bottleneck_seconds=3.0,
            projected_bottleneck_seconds=1.75,
            rationale="because",
            split_path="/Item/Section",
        )
        assert RebalanceAction.from_dict(action.to_dict()) == action

    def test_advised_top_action_is_applicable(self):
        partix, collection = _published_partix()
        log = _fill_log(partix, collection)
        top = self._advisor(partix, log).advise(collection=collection.name)[0]
        baselines = _baselines(partix, collection)
        report = Rebalancer(partix).apply(top)
        assert report.completed
        _assert_answers_preserved(partix, collection, baselines)


class TestCoordinatorRebalanceFrames:
    def _serve(self, partix):
        return Coordinator(
            partix, execution_mode="threads", max_active=4, queue_limit=64
        ).serve_in_thread()

    def test_advise_and_rebalance_over_the_wire(self):
        partix, collection = _published_partix()
        baselines = _baselines(partix, collection)
        coordinator = self._serve(partix)
        client = None
        try:
            client = CoordinatorClient(
                coordinator.host, coordinator.port, site="test"
            )
            for _ in range(2):
                for qid, (text, expected) in baselines.items():
                    payload = client.query(text, collection=collection.name)
                    assert payload["result_text"] == expected, qid

            advice = client.advise(collection=collection.name)
            assert advice["actions"]
            assert advice["query_log"]["entries"] > 0
            version = advice["catalog_version"]

            reply = client.rebalance(
                collection=collection.name, read_timeout=60.0
            )
            assert reply["report"]["completed"]
            assert reply["catalog_version"] > version
            assert (
                reply["action"]["kind"] == advice["actions"][0]["kind"]
            )

            for qid, (text, expected) in baselines.items():
                payload = client.query(text, collection=collection.name)
                actual = payload["result_text"]
                if actual != expected:
                    assert sorted(actual.splitlines()) == sorted(
                        expected.splitlines()
                    ), qid
        finally:
            if client is not None:
                client.close()
            coordinator.close()

    def test_rebalance_with_empty_log_raises_typed_error(self):
        partix, collection = _published_partix()
        coordinator = self._serve(partix)
        client = None
        try:
            client = CoordinatorClient(
                coordinator.host, coordinator.port, site="test"
            )
            with pytest.raises(RebalanceError, match="no rebalance action"):
                client.rebalance(collection=collection.name)
        finally:
            if client is not None:
                client.close()
            coordinator.close()

    def test_rebalance_with_bogus_action_raises_typed_error(self):
        partix, collection = _published_partix()
        coordinator = self._serve(partix)
        client = None
        try:
            client = CoordinatorClient(
                coordinator.host, coordinator.port, site="test"
            )
            action = RebalanceAction(
                kind="defragment", collection=collection.name, fragment="F1"
            ).to_dict()
            with pytest.raises(RebalanceError, match="unknown"):
                client.rebalance(collection=collection.name, action=action)
        finally:
            if client is not None:
                client.close()
            coordinator.close()


class _ChurningCatalog:
    """Delegates to a real catalog but reports a new version per read —
    the shape of a replace/rebalance storm racing the planner."""

    def __init__(self, inner):
        self._inner = inner
        self._reads = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def version(self):
        self._reads += 1
        return self._inner.version + self._reads


class TestPlanRetryBound:
    def test_catalog_contention_is_typed_and_bounded(self):
        partix, collection = _published_partix(plan_cache=PlanCache())
        query = items_queries(collection.name)[0].text
        partix.distribution_catalog = _ChurningCatalog(
            partix.distribution_catalog
        )
        with pytest.raises(CatalogContention, match="consecutive planning"):
            partix.execute(
                query, collection=collection.name, execution_mode="simulated"
            )

    def test_settled_catalog_plans_normally_through_the_cache(self):
        partix, collection = _published_partix(plan_cache=PlanCache())
        query = items_queries(collection.name)[0].text
        first = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )
        second = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )
        assert first.result_text == second.result_text
        assert partix.plan_cache.stats()["hits"] >= 1
