"""Unit tests for static query analysis (inputs, paths, predicates)."""

from repro.paths.predicates import And, Comparison, Contains, Exists, Not, Or
from repro.xquery import analyze_query


class TestInputs:
    def test_collection_names(self):
        analysis = analyze_query('collection("a")/x')
        assert analysis.collections == {"a"}

    def test_unnamed_collection(self):
        analysis = analyze_query("collection()/x")
        assert analysis.collections == {None}

    def test_doc_names(self):
        analysis = analyze_query('doc("d.xml")/x')
        assert analysis.documents == {"d.xml"}


class TestAggregates:
    def test_top_level_count(self):
        assert analyze_query('count(collection("c")/x)').aggregate == "count"

    def test_wrapped_in_constructor(self):
        analysis = analyze_query('element r { count(collection("c")/x) }')
        assert analysis.aggregate == "count"

    def test_let_then_aggregate(self):
        analysis = analyze_query(
            'let $a := collection("c")/x return sum($a/v)'
        )
        assert analysis.aggregate == "sum"

    def test_inner_aggregate_is_not_top_level(self):
        analysis = analyze_query(
            'for $i in collection("c")/x return count($i/y)'
        )
        assert analysis.aggregate is None

    def test_non_aggregate(self):
        assert analyze_query('collection("c")/x').aggregate is None


class TestTouchedPaths:
    def test_direct_path(self):
        analysis = analyze_query('collection("c")/a/b/c')
        assert analysis.touched_path_strings() == ["/a/b/c"]
        assert analysis.paths_exact

    def test_variable_rooted_paths(self):
        analysis = analyze_query(
            'for $x in collection("c")/a where $x/b = 1 return $x/c/d'
        )
        assert set(analysis.touched_path_strings()) == {"/a/b", "/a/c/d"}

    def test_binding_path_not_touched_unless_used_bare(self):
        analysis = analyze_query(
            'for $x in collection("c")/a/b return $x/c'
        )
        assert analysis.touched_path_strings() == ["/a/b/c"]
        bare = analyze_query('for $x in collection("c")/a/b return $x')
        assert bare.touched_path_strings() == ["/a/b"]

    def test_trailing_text_dropped(self):
        analysis = analyze_query('collection("c")/a/b/text()')
        assert analysis.touched_path_strings() == ["/a/b"]

    def test_step_predicates_do_not_block_paths(self):
        analysis = analyze_query('collection("c")/a[b = 1]/c')
        assert "/a/c" in analysis.touched_path_strings()

    def test_descendant_paths(self):
        analysis = analyze_query('collection("c")//a/b')
        assert analysis.touched_path_strings() == ["//a/b"]

    def test_binding_paths_recorded(self):
        analysis = analyze_query(
            'for $x in collection("c")/a/b return $x/c'
        )
        assert [str(p) for p in analysis.binding_paths] == ["/a/b"]
        assert analysis.bindings_exact

    def test_opaque_binding_degrades_exactness(self):
        analysis = analyze_query(
            "for $x in (1, 2) return $x"
        )
        assert not analysis.bindings_exact


class TestPredicateExtraction:
    def test_where_equality(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item where $i/Section = "CD" return $i'
        )
        predicate = analysis.predicate
        assert isinstance(predicate, Comparison)
        assert str(predicate.path) == "/Item/Section"
        assert predicate.value == "CD"
        assert analysis.predicate_exact

    def test_reversed_comparison_flips(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item where 10 < $i/Price return $i'
        )
        assert isinstance(analysis.predicate, Comparison)
        assert analysis.predicate.op == ">"

    def test_contains(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item'
            ' where contains($i/Description, "good") return $i'
        )
        assert isinstance(analysis.predicate, Contains)
        assert analysis.uses_text_search

    def test_conjunction(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item'
            ' where $i/Section = "CD" and contains($i/D, "x") return $i'
        )
        assert isinstance(analysis.predicate, And)

    def test_disjunction(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item'
            ' where $i/S = "a" or $i/S = "b" return $i'
        )
        assert isinstance(analysis.predicate, Or)

    def test_negation(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item'
            ' where not($i/S = "a") return $i'
        )
        assert isinstance(analysis.predicate, Not)

    def test_existential_where(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item where $i/PictureList return $i'
        )
        assert isinstance(analysis.predicate, Exists)

    def test_step_predicate_extracted(self):
        analysis = analyze_query(
            'collection("c")/Item[Section = "CD"]/Name'
        )
        assert isinstance(analysis.predicate, Comparison)
        assert str(analysis.predicate.path) == "/Item/Section"

    def test_unconvertible_where_clears_exactness(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item'
            " where string-length($i/Name) > $i/Price return $i"
        )
        assert analysis.predicate is None
        assert not analysis.predicate_exact

    def test_partially_convertible_conjunction(self):
        analysis = analyze_query(
            'for $i in collection("c")/Item'
            ' where $i/S = "a" and string-length($i/N) > $i/P return $i'
        )
        # The whole 'and' is unconvertible as one predicate; exactness off.
        assert not analysis.predicate_exact
