"""End-to-end tests for repro.net: servers, clients, faults, tcp mode.

The in-thread tests exercise the server/client pair without process
overhead; the ``TestSpawnedCluster``/``TestPartixTcp`` classes spawn real
site-server *processes* and drive them through the same dispatcher the
middleware uses, including fault injection (killed servers).
"""

import socket
import threading
import time

import pytest

from repro.cluster import DEGRADE, FAIL_FAST, ParallelDispatcher
from repro.errors import (
    DispatchError,
    ProtocolError,
    StorageError,
    TransportError,
    TransportTimeout,
    XQuerySyntaxError,
)
from repro.net import SiteClient, SiteServer, TcpSiteCluster
from repro.net.protocol import (
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.partix.decomposer import SubQuery
from repro.partix.middleware import Partix
from repro.cluster.site import Cluster, Site
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)

ITEM_QUERY = 'for $i in collection("C")//Item return $i/Code'


@pytest.fixture()
def server():
    srv = SiteServer(site="s0").serve_in_thread()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    cli = SiteClient("127.0.0.1", server.port, site="s0")
    yield cli
    cli.close()


class TestServerOperations:
    def test_store_count_bytes_and_execute(self, server, client):
        client.create_collection("C")
        client.store_document("C", "<Item><Code>7</Code></Item>", name="d0")
        client.store_document("C", "<Item><Code>8</Code></Item>", name="d1")
        assert client.document_count("C") == 2
        assert client.collection_bytes("C") > 0
        result, sent, received = client.execute(ITEM_QUERY)
        assert "<Code>7</Code>" in result.result_text
        assert "<Code>8</Code>" in result.result_text
        assert sent > 0 and received > len(result.result_text.encode())
        assert result.items == []  # only serialized text crosses the wire

    def test_remote_error_raises_same_class_as_local(self, client):
        # StorageError is exactly what the local engine raises for a
        # missing collection — the fuzz oracle depends on this symmetry.
        with pytest.raises(StorageError):
            client.execute('collection("missing")//Item')
        with pytest.raises(XQuerySyntaxError):
            client.execute("for for for")

    def test_ping_and_stats(self, server, client):
        payload = client.ping()
        assert payload["site"] == "s0"
        client.create_collection("C")
        client.store_document("C", "<Item/>", name="d0")
        client.execute(ITEM_QUERY)
        stats = client.server_stats()
        assert stats["queries_executed"] == 1
        assert stats["documents_stored"] == 1
        assert stats["bytes_received"] > 0
        assert stats["bytes_sent"] > 0

    def test_client_counts_real_bytes_both_ways(self, server, client):
        before_sent, before_received = client.bytes_sent, client.bytes_received
        client.ping()
        assert client.bytes_sent > before_sent
        assert client.bytes_received > before_received

    def test_read_timeout_surfaces_as_transport_timeout(self, server, client):
        with pytest.raises(TransportTimeout):
            client.execute(
                ITEM_QUERY, read_timeout=0.05, debug_sleep_seconds=1.0
            )

    def test_graceful_shutdown_drains(self, server, client):
        assert client.shutdown_server()
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            try:
                SiteClient("127.0.0.1", server.port, connect_timeout=0.2).ping(
                    read_timeout=0.2
                )
            except (TransportError, ProtocolError):
                break
            time.sleep(0.05)
        else:
            pytest.fail("server kept answering after SHUTDOWN")

    def test_close_is_clean_with_an_idle_connection_open(self, server, client):
        # Regression: close() used to race the accept loop — a handler
        # parked in recv on an idle connection kept the serve thread
        # alive past the join, and the swallowed OSError hid it.
        client.ping()  # leaves a pooled, idle connection open
        assert server.close()

    def test_close_is_clean_mid_handshake(self, server):
        # A connection that dialed but never sent its HELLO must not
        # wedge shutdown either: the handshake poll notices the
        # shutdown request and gives up on the silent peer.
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0):
            time.sleep(0.05)  # let the server park in its HELLO read
            assert server.close()


class TestHandshake:
    def test_version_mismatch_is_refused(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
            send_frame(
                sock,
                Frame(
                    type=FrameType.HELLO,
                    request_id=1,
                    payload={"version": PROTOCOL_VERSION + 1},
                ),
            )
            reply, _ = recv_frame(sock)
            assert reply.type is FrameType.REJECT
            assert "version mismatch" in reply.payload["reason"]
            # The server closes its end after the REJECT.
            sock.settimeout(5.0)
            assert sock.recv(1) == b""

    def test_first_frame_must_be_hello(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
            send_frame(sock, Frame(type=FrameType.PING, request_id=1))
            reply, _ = recv_frame(sock)
            assert reply.type is FrameType.REJECT
            assert "expected HELLO" in reply.payload["reason"]

    def test_garbage_bytes_do_not_wedge_the_server(self, server, client):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 32)
            sock.settimeout(5.0)
            assert sock.recv(4096) is not None  # REJECT or close, not a hang
        # A well-behaved client still gets service afterwards.
        assert client.ping()["site"] == "s0"


def _spawn(names=("s0", "s1")):
    return TcpSiteCluster.spawn({name: {} for name in names})


def _seed_cluster(tcp):
    """Store one distinct document at every spawned site."""
    for index, (name, client) in enumerate(sorted(tcp.clients.items())):
        client.create_collection("C")
        client.store_document(
            "C", f"<Item><Code>{index}</Code></Item>", name=f"d{index}"
        )


def _subqueries(names):
    return [
        SubQuery(fragment=f"F{i}", site=name, collection="C", query=ITEM_QUERY)
        for i, name in enumerate(sorted(names))
    ]


class TestSpawnedCluster:
    def test_spawn_ping_dispatch_shutdown(self):
        tcp = _spawn()
        try:
            health = tcp.ping_all()
            assert set(health) == {"s0", "s1"}
            _seed_cluster(tcp)
            outcome = ParallelDispatcher().dispatch(
                tcp.transport(), _subqueries(tcp.clients)
            )
            assert outcome.complete
            assert outcome.round.wire_measured
            assert outcome.round.total_bytes_sent > 0
            assert outcome.round.total_bytes_received > 0
            texts = [e.result.result_text for e in outcome.round.executions]
            assert "<Code>0</Code>" in texts[0]
            assert "<Code>1</Code>" in texts[1]
        finally:
            tcp.shutdown()
        assert not any(site.alive for site in tcp.sites.values())

    def test_dead_site_fail_fast_raises(self):
        tcp = _spawn()
        try:
            _seed_cluster(tcp)
            tcp.kill("s1")
            dispatcher = ParallelDispatcher(
                retries=0, failure_policy=FAIL_FAST
            )
            with pytest.raises(DispatchError) as info:
                dispatcher.dispatch(tcp.transport(), _subqueries(tcp.clients))
            assert "s1" in str(info.value)
        finally:
            tcp.shutdown()

    def test_dead_site_degrade_returns_partial_with_note(self):
        tcp = _spawn()
        try:
            _seed_cluster(tcp)
            tcp.kill("s1")
            dispatcher = ParallelDispatcher(
                retries=1, failure_policy=DEGRADE, sleep=lambda s: None
            )
            outcome = dispatcher.dispatch(
                tcp.transport(), _subqueries(tcp.clients)
            )
            assert not outcome.complete
            assert [e.site for e in outcome.round.executions] == ["s0"]
            (failure,) = outcome.failures
            assert failure.site == "s1"
            assert failure.attempts == 2  # the dead site was retried
            assert isinstance(failure.error, TransportError)
            assert any("degraded" in note and "s1" in note for note in outcome.notes)
        finally:
            tcp.shutdown()

    def test_kill_mid_query_surfaces_as_transport_error(self):
        tcp = _spawn(("s0",))
        try:
            _seed_cluster(tcp)
            killer = threading.Timer(0.3, lambda: tcp.kill("s0"))
            killer.start()
            try:
                with pytest.raises((TransportError, ProtocolError)):
                    tcp.clients["s0"].execute(
                        ITEM_QUERY, debug_sleep_seconds=5.0, read_timeout=10.0
                    )
            finally:
                killer.join()
        finally:
            tcp.shutdown()


def _published_partix(fragment_count=2, item_count=24):
    collection = build_items_collection(item_count, kind="small", seed=9)
    cluster = Cluster.with_sites(fragment_count)
    cluster.add(Site("central"))
    partix = Partix(cluster)
    partix.publish(collection, items_horizontal_fragmentation(fragment_count))
    partix.publish_centralized(collection, "central")
    return partix, collection


class TestPartixTcp:
    def test_tcp_mode_requires_start_tcp(self):
        partix, collection = _published_partix()
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="start_tcp"):
            partix.execute(
                'collection("%s")//Item' % collection.name,
                collection=collection.name,
                execution_mode="tcp",
            )

    def test_tcp_answers_match_other_modes_byte_for_byte(self):
        partix, collection = _published_partix()
        queries = [
            'for $i in collection("%s")//Item where $i/Section = "S1"'
            " return $i" % collection.name,
            'count(collection("%s")//Item)' % collection.name,
            'for $i in collection("%s")//Item return $i/Code' % collection.name,
        ]
        partix.start_tcp()
        try:
            for query in queries:
                results = {
                    mode: partix.execute(
                        query,
                        collection=collection.name,
                        execution_mode=mode,
                    )
                    for mode in ("simulated", "threads", "tcp")
                }
                texts = {r.result_text for r in results.values()}
                assert len(texts) == 1, f"modes disagree on {query!r}"
                tcp_result = results["tcp"]
                assert tcp_result.wire_measured
                assert tcp_result.bytes_sent > results["simulated"].bytes_sent
                assert not results["simulated"].wire_measured
        finally:
            partix.stop_tcp()

    def test_start_tcp_is_idempotent_and_stop_reaps(self):
        partix, _ = _published_partix()
        first = partix.start_tcp()
        assert partix.start_tcp() is first
        processes = [site.process for site in first.sites.values()]
        partix.stop_tcp()
        assert partix.tcp is None
        assert not any(process.is_alive() for process in processes)

    def test_fuzz_smoke_tcp_matches_centralized(self):
        from repro.fuzz.generator import spec_for_iteration
        from repro.fuzz.runner import run_case

        for iteration in range(2):
            spec = spec_for_iteration(20060806, iteration)
            outcome = run_case(spec, modes=("simulated", "tcp"))
            assert outcome.ok, [m.detail for m in outcome.mismatches]
            assert outcome.comparisons > 0
