"""Unit tests for fragmentation-design JSON serialization."""

import pytest

from repro.errors import FragmentationError
from repro.partix import (
    FragmentAllocation,
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.partix.serialization import (
    design_from_dict,
    design_to_dict,
    fragment_from_dict,
    fragment_to_dict,
    load_design,
    predicate_from_dict,
    predicate_to_dict,
    save_design,
)
from repro.paths import (
    And,
    Not,
    Or,
    TruePredicate,
    cmp,
    contains,
    empty,
    eq,
    exists,
    func_cmp,
    ne,
    starts_with,
)

ALL_PREDICATES = [
    eq("/a/b", "x"),
    ne("/a/b", "x"),
    cmp("/a/b", "<=", 5),
    func_cmp("count", "/a/b", ">", 2),
    contains("//d", "needle"),
    starts_with("/a/b", "pre"),
    exists("/a/c"),
    empty("/a/c"),
    Not(eq("/a/b", "x")),
    And((eq("/a/b", "x"), contains("/a/d", "w"))),
    Or((eq("/a/b", "x"), eq("/a/b", "y"))),
    TruePredicate(),
]


class TestPredicateRoundTrip:
    @pytest.mark.parametrize("predicate", ALL_PREDICATES, ids=lambda p: str(p))
    def test_round_trip(self, predicate):
        restored = predicate_from_dict(predicate_to_dict(predicate))
        assert str(restored) == str(predicate)

    def test_unknown_type_rejected(self):
        with pytest.raises(FragmentationError):
            predicate_from_dict({"type": "xor"})


class TestFragmentRoundTrip:
    @pytest.mark.parametrize(
        "fragment",
        [
            HorizontalFragment("F1", "c", predicate=eq("/a/b", "x")),
            VerticalFragment(
                "F2", "c", path="/a/b", prune=("/a/b/c",), stub_prunes=True
            ),
            HybridFragment(
                "F3", "c", path="/a/b", unit_label="u",
                predicate=eq("/u/s", "v"),
            ),
            HybridFragment("F4", "c", path="/a/b", unit_label="u"),
        ],
        ids=["horizontal", "vertical", "hybrid", "hybrid-no-predicate"],
    )
    def test_round_trip(self, fragment):
        restored = fragment_from_dict(fragment_to_dict(fragment))
        assert restored.describe() == fragment.describe()
        assert type(restored) is type(fragment)

    def test_vertical_flags_preserved(self):
        fragment = VerticalFragment(
            "F", "c", path="/a", prune=("/a/b",), stub_prunes=True
        )
        restored = fragment_from_dict(fragment_to_dict(fragment))
        assert restored.stub_prunes is True

    def test_unknown_kind_rejected(self):
        with pytest.raises(FragmentationError):
            fragment_from_dict({"kind": "diagonal"})


class TestDesignRoundTrip:
    def _design(self):
        fragmentation = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/a/b", "x")),
            HorizontalFragment("F2", "c", predicate=ne("/a/b", "x")),
        ], root_label="a")
        allocations = [
            FragmentAllocation("F1", "s0", "F1", hybrid_mode=1),
            FragmentAllocation("F1", "s1", "F1"),  # replica
            FragmentAllocation("F2", "s1", "F2"),
        ]
        return fragmentation, allocations

    def test_dict_round_trip(self):
        fragmentation, allocations = self._design()
        restored_schema, restored_allocations = design_from_dict(
            design_to_dict(fragmentation, allocations)
        )
        assert restored_schema.describe() == fragmentation.describe()
        assert restored_schema.root_label == "a"
        assert restored_allocations == allocations

    def test_file_round_trip(self, tmp_path):
        fragmentation, allocations = self._design()
        path = tmp_path / "design.json"
        save_design(path, fragmentation, allocations)
        restored_schema, restored_allocations = load_design(path)
        assert restored_schema.fragment_names() == ["F1", "F2"]
        assert len(restored_allocations) == 3

    def test_loaded_design_is_publishable(self, tmp_path, items_collection):
        from repro.cluster import Cluster
        from repro.partix import Partix
        from repro.paths import eq as eq_

        fragmentation = FragmentationSchema("Citems", [
            HorizontalFragment("F1", "Citems", predicate=eq_("/Item/Section", "CD")),
            HorizontalFragment("F2", "Citems", predicate=ne("/Item/Section", "CD")),
        ], root_label="Item")
        path = tmp_path / "design.json"
        save_design(path, fragmentation)
        loaded, _ = load_design(path)
        partix = Partix(Cluster.with_sites(2))
        partix.publish(items_collection, loaded)
        assert partix.execute(
            'count(collection("Citems")/Item)'
        ).result_text == "12"
