"""Unit tests for the XML data-tree model."""

import pytest

from repro.datamodel import NodeKind, XMLNode, assign_node_ids, doc, elem


class TestConstruction:
    def test_element_has_label_and_no_value(self):
        node = XMLNode.element("Item")
        assert node.kind is NodeKind.ELEMENT
        assert node.label == "Item"
        assert node.value is None

    def test_attribute_holds_value(self):
        attr = XMLNode.attribute("id", "42")
        assert attr.kind is NodeKind.ATTRIBUTE
        assert attr.label == "id"
        assert attr.value == "42"

    def test_text_has_no_label(self):
        text = XMLNode.text("hello")
        assert text.kind is NodeKind.TEXT
        assert text.label is None
        assert text.value == "hello"

    def test_text_with_label_rejected(self):
        with pytest.raises(ValueError):
            XMLNode(NodeKind.TEXT, label="x")

    def test_element_without_label_rejected(self):
        with pytest.raises(ValueError):
            XMLNode(NodeKind.ELEMENT)

    def test_unattached_nodes_have_negative_ids(self):
        assert XMLNode.element("a").node_id < 0


class TestAppend:
    def test_append_sets_parent(self):
        parent = XMLNode.element("a")
        child = parent.append(XMLNode.element("b"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_text_cannot_have_children(self):
        with pytest.raises(ValueError):
            XMLNode.text("x").append(XMLNode.element("a"))

    def test_attribute_cannot_have_children(self):
        with pytest.raises(ValueError):
            XMLNode.attribute("a", "1").append(XMLNode.text("x"))

    def test_mixed_content_text_after_element_rejected(self):
        parent = XMLNode.element("a")
        parent.append(XMLNode.element("b"))
        with pytest.raises(ValueError, match="mixed content"):
            parent.append(XMLNode.text("oops"))

    def test_mixed_content_element_after_text_rejected(self):
        parent = XMLNode.element("a")
        parent.append(XMLNode.text("hi"))
        with pytest.raises(ValueError, match="mixed content"):
            parent.append(XMLNode.element("b"))

    def test_attributes_coexist_with_text(self):
        parent = XMLNode.element("a")
        parent.append(XMLNode.attribute("id", "1"))
        parent.append(XMLNode.text("hi"))
        assert parent.get_attribute("id") == "1"
        assert parent.text_value() == "hi"

    def test_remove_then_append_other_kind(self):
        parent = XMLNode.element("a")
        text = parent.append(XMLNode.text("hi"))
        parent.remove(text)
        parent.append(XMLNode.element("b"))  # no mixed-content error
        assert len(parent.children) == 1

    def test_extend_appends_all(self):
        parent = XMLNode.element("a").extend(
            [XMLNode.element("b"), XMLNode.element("c")]
        )
        assert [c.label for c in parent.children] == ["b", "c"]


class TestIntrospection:
    def test_text_value_concatenates_descendants(self):
        tree = elem("a", elem("b", "one"), elem("c", elem("d", "two")))
        assert tree.text_value() == "onetwo"

    def test_attributes_excluded_from_element_children(self):
        tree = elem("a", elem("b"), id="1")
        assert [c.label for c in tree.element_children()] == ["b"]
        assert [a.label for a in tree.attributes()] == ["id"]

    def test_get_attribute_missing_is_none(self):
        assert elem("a").get_attribute("nope") is None

    def test_child_elements_filters_by_label(self):
        tree = elem("a", elem("b"), elem("c"), elem("b"))
        assert len(tree.child_elements("b")) == 2

    def test_first_child(self):
        tree = elem("a", elem("b", "1"), elem("b", "2"))
        first = tree.first_child("b")
        assert first is not None and first.text_value() == "1"
        assert tree.first_child("zzz") is None

    def test_is_leaf(self):
        assert elem("a").is_leaf
        assert not elem("a", elem("b")).is_leaf


class TestTraversal:
    def test_descendants_or_self_preorder(self):
        tree = elem("a", elem("b", elem("c")), elem("d"))
        labels = [n.label for n in tree.descendants_or_self()]
        assert labels == ["a", "b", "c", "d"]

    def test_descendants_excludes_self(self):
        tree = elem("a", elem("b"))
        assert [n.label for n in tree.descendants()] == ["b"]

    def test_ancestors_nearest_first(self):
        tree = elem("a", elem("b", elem("c")))
        c = tree.children[0].children[0]
        assert [n.label for n in c.ancestors()] == ["b", "a"]

    def test_root(self):
        tree = elem("a", elem("b", elem("c")))
        c = tree.children[0].children[0]
        assert c.root() is tree

    def test_path_labels_with_attribute(self):
        tree = elem("a", elem("b", id="7"))
        attr = tree.children[0].attributes()[0]
        assert attr.path_labels() == ["a", "b", "@id"]

    def test_sibling_index_counts_same_label_only(self):
        tree = elem("a", elem("b"), elem("c"), elem("b"))
        second_b = tree.children[2]
        assert second_b.sibling_index() == 2
        assert tree.children[1].sibling_index() == 1

    def test_subtree_size(self):
        tree = elem("a", elem("b", "x"), elem("c"))
        # a, b, text, c
        assert tree.subtree_size() == 4


class TestCloneAndEquality:
    def test_clone_preserves_node_ids(self):
        document = doc(elem("a", elem("b", "x")))
        copy = document.root.clone(deep=True)
        originals = [n.node_id for n in document.root.descendants_or_self()]
        copies = [n.node_id for n in copy.descendants_or_self()]
        assert originals == copies

    def test_clone_is_independent(self):
        tree = elem("a", elem("b"))
        copy = tree.clone(deep=True)
        copy.append(XMLNode.element("c"))
        assert len(tree.children) == 1

    def test_clone_pruned_drops_subtrees(self):
        tree = elem("a", elem("b", elem("x")), elem("c"))
        copy = tree.clone_pruned(lambda n: n.label == "b")
        assert [c.label for c in copy.children] == ["c"]

    def test_tree_equal_ignores_attribute_order(self):
        left = elem("a", x="1", y="2")
        right = XMLNode.element("a")
        right.append(XMLNode.attribute("y", "2"))
        right.append(XMLNode.attribute("x", "1"))
        assert left.tree_equal(right)

    def test_tree_equal_detects_value_difference(self):
        assert not elem("a", "x").tree_equal(elem("a", "y"))

    def test_tree_equal_detects_order_difference(self):
        assert not elem("a", elem("b"), elem("c")).tree_equal(
            elem("a", elem("c"), elem("b"))
        )

    def test_tree_equal_with_ids(self):
        document = doc(elem("a", elem("b")))
        copy = document.root.clone(deep=True)
        assert document.root.tree_equal(copy, compare_ids=True)
        copy.children[0].node_id = 999
        assert not document.root.tree_equal(copy, compare_ids=True)


class TestAssignNodeIds:
    def test_ids_are_document_order(self):
        tree = elem("a", elem("b", elem("c")), elem("d"))
        next_id = assign_node_ids(tree)
        ids = {n.label: n.node_id for n in tree.descendants_or_self()}
        assert ids == {"a": 0, "b": 1, "c": 2, "d": 3}
        assert next_id == 4

    def test_start_offset(self):
        tree = elem("a")
        assert assign_node_ids(tree, start=10) == 11
        assert tree.node_id == 10
