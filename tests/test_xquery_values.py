"""Unit tests for the XQuery value model (atomization, EBV, comparison)."""

import math

import pytest

from repro.datamodel import elem
from repro.errors import XQueryTypeError
from repro.xquery.values import (
    atomic_to_string,
    atomize,
    compare_atomics,
    effective_boolean,
    general_compare,
    is_numeric_like,
    string_value,
    to_number,
)


class TestAtomization:
    def test_nodes_become_string_values(self):
        node = elem("a", elem("b", "x"), elem("c", "y"))
        assert atomize([node, 3, "z"]) == ["xy", 3, "z"]

    def test_attribute_atomizes_to_value(self):
        from repro.datamodel import XMLNode

        assert atomize([XMLNode.attribute("id", "7")]) == ["7"]


class TestEffectiveBoolean:
    def test_empty_sequence_false(self):
        assert effective_boolean([]) is False

    def test_node_first_true(self):
        assert effective_boolean([elem("a"), 0]) is True

    def test_single_atomics(self):
        assert effective_boolean([True]) is True
        assert effective_boolean([0]) is False
        assert effective_boolean([0.5]) is True
        assert effective_boolean([float("nan")]) is False
        assert effective_boolean([""]) is False
        assert effective_boolean(["x"]) is True

    def test_multi_atomic_raises(self):
        with pytest.raises(XQueryTypeError):
            effective_boolean([1, 2])


class TestNumbers:
    def test_to_number_coercions(self):
        assert to_number(True) == 1.0
        assert to_number(" 3.5 ") == 3.5
        assert math.isnan(to_number("abc"))
        assert to_number(7) == 7.0

    def test_is_numeric_like(self):
        assert is_numeric_like("42")
        assert not is_numeric_like("forty-two")


class TestComparison:
    def test_numeric_promotion(self):
        assert compare_atomics("10", 9, ">")
        assert not compare_atomics("10", "9", "<")  # numeric, not lexicographic

    def test_string_fallback(self):
        assert compare_atomics("apple", "banana", "<")

    def test_boolean_comparison(self):
        assert compare_atomics(True, 1, "=")
        assert compare_atomics(False, "", "=")

    def test_general_compare_existential(self):
        assert general_compare([1, 2, 3], [3], "=")
        assert not general_compare([1, 2], [3, 4], "=")
        assert general_compare([], [1], "=") is False

    def test_general_compare_atomizes_nodes(self):
        assert general_compare([elem("a", "5")], [5], "=")


class TestStringForms:
    def test_string_value_first_item(self):
        assert string_value(["a", "b"]) == "a"
        assert string_value([]) == ""
        assert string_value([elem("a", "hi")]) == "hi"

    def test_atomic_to_string_numbers(self):
        assert atomic_to_string(3.0) == "3"
        assert atomic_to_string(3.5) == "3.5"
        assert atomic_to_string(True) == "true"
        assert atomic_to_string(False) == "false"
