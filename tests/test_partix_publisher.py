"""Unit tests for the Distributed XML Data Publisher."""

import pytest

from repro.cluster import Cluster
from repro.errors import CorrectnessViolation
from repro.partix import (
    DataPublisher,
    FragMode,
    FragmentAllocation,
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
)
from repro.paths import eq, ne


@pytest.fixture
def cluster():
    return Cluster.with_sites(3)


def items_design():
    return FragmentationSchema("Citems", [
        HorizontalFragment("F1", "Citems", predicate=eq("/Item/Section", "CD")),
        HorizontalFragment("F2", "Citems", predicate=eq("/Item/Section", "DVD")),
        HorizontalFragment("F3", "Citems", predicate=(
            ne("/Item/Section", "CD") & ne("/Item/Section", "DVD"))),
    ], root_label="Item")


class TestHorizontalPublication:
    def test_round_robin_allocation(self, cluster, items_collection):
        publisher = DataPublisher(cluster)
        report = publisher.publish(items_collection, items_design())
        assert [f.site for f in report.fragments] == ["site0", "site1", "site2"]
        assert report.total_documents == len(items_collection)

    def test_documents_routed_by_predicate(self, cluster, items_collection):
        publisher = DataPublisher(cluster)
        report = publisher.publish(items_collection, items_design())
        by_fragment = {f.fragment: f.documents for f in report.fragments}
        assert by_fragment == {"F1": 4, "F2": 4, "F3": 4}

    def test_explicit_allocation_honoured(self, cluster, items_collection):
        publisher = DataPublisher(cluster)
        allocations = [
            FragmentAllocation("F1", "site2", "cd-frag"),
            FragmentAllocation("F2", "site2", "dvd-frag"),
            FragmentAllocation("F3", "site0", "rest-frag"),
        ]
        publisher.publish(items_collection, items_design(), allocations=allocations)
        assert cluster.site("site2").driver.document_count("cd-frag") == 4
        assert cluster.site("site2").driver.document_count("dvd-frag") == 4

    def test_catalog_registered(self, cluster, items_collection):
        publisher = DataPublisher(cluster)
        publisher.publish(items_collection, items_design())
        assert publisher.catalog.is_fragmented("Citems")
        assert publisher.catalog.allocation("Citems", "F2").site == "site1"

    def test_verify_blocks_bad_design(self, cluster, items_collection):
        bad = FragmentationSchema("Citems", [
            HorizontalFragment("F1", "Citems", predicate=eq("/Item/Section", "CD")),
        ], root_label="Item")
        publisher = DataPublisher(cluster)
        with pytest.raises(CorrectnessViolation):
            publisher.publish(items_collection, bad, verify=True)

    def test_publish_centralized(self, cluster, items_collection):
        publisher = DataPublisher(cluster)
        publication = publisher.publish_centralized(items_collection, "site0")
        assert publication.documents == len(items_collection)
        assert cluster.site("site0").driver.document_count("Citems") == 12


class TestVerticalPublication:
    def test_fragment_docs_carry_origin(self, cluster, papers_collection):
        publisher = DataPublisher(cluster)
        design = FragmentationSchema("Cpapers", [
            VerticalFragment("F1", "Cpapers", path="/article/prolog"),
            VerticalFragment("F2", "Cpapers", path="/article/body"),
            VerticalFragment("F3", "Cpapers", path="/article/epilog"),
        ], root_label="article")
        publisher.publish(papers_collection, design)
        result = cluster.site("site0").execute('collection("F1")/prolog')
        assert 'pxorigin="article-000.xml"' in result.result_text

    def test_each_fragment_holds_all_documents(self, cluster, papers_collection):
        publisher = DataPublisher(cluster)
        design = FragmentationSchema("Cpapers", [
            VerticalFragment("F1", "Cpapers", path="/article/prolog"),
            VerticalFragment("F2", "Cpapers", path="/article/body"),
            VerticalFragment("F3", "Cpapers", path="/article/epilog"),
        ], root_label="article")
        report = publisher.publish(papers_collection, design)
        assert all(f.documents == len(papers_collection) for f in report.fragments)


def store_design():
    return FragmentationSchema("Cstore", [
        VerticalFragment("F1", "Cstore", path="/Store",
                         prune=("/Store/Items",), stub_prunes=True),
        HybridFragment("F2", "Cstore", path="/Store/Items",
                       unit_label="Item", predicate=eq("/Item/Section", "CD")),
        HybridFragment("F3", "Cstore", path="/Store/Items",
                       unit_label="Item", predicate=ne("/Item/Section", "CD")),
    ], root_label="Store")


class TestHybridPublication:
    def test_fragmode1_independent_documents(self, cluster, store_collection):
        publisher = DataPublisher(cluster)
        report = publisher.publish(
            store_collection, store_design(),
            frag_mode=FragMode.INDEPENDENT_DOCUMENTS,
        )
        by_fragment = {f.fragment: f.documents for f in report.fragments}
        # 9 items: 3 CD + 6 others; each its own document in mode 1.
        assert by_fragment["F2"] == 3
        assert by_fragment["F3"] == 6

    def test_fragmode2_single_document(self, cluster, store_collection):
        publisher = DataPublisher(cluster)
        report = publisher.publish(
            store_collection, store_design(), frag_mode=FragMode.SINGLE_DOCUMENT
        )
        by_fragment = {f.fragment: f.documents for f in report.fragments}
        assert by_fragment["F2"] == 1
        assert by_fragment["F3"] == 1

    def test_fragmode2_keeps_chain_shape(self, cluster, store_collection):
        publisher = DataPublisher(cluster)
        publisher.publish(store_collection, store_design())
        result = cluster.site("site1").execute(
            'count(collection("F2")/Store/Items/Item)'
        )
        assert result.result_text == "3"

    def test_catalog_records_hybrid_mode(self, cluster, store_collection):
        publisher = DataPublisher(cluster)
        publisher.publish(
            store_collection, store_design(),
            frag_mode=FragMode.INDEPENDENT_DOCUMENTS,
        )
        assert publisher.catalog.allocation("Cstore", "F2").hybrid_mode == 1

    def test_remainder_has_stub(self, cluster, store_collection):
        publisher = DataPublisher(cluster)
        publisher.publish(store_collection, store_design())
        result = cluster.site("site0").execute(
            'count(collection("F1")/Store/Items)'
        )
        assert result.result_text == "1"
        empty_items = cluster.site("site0").execute(
            'count(collection("F1")/Store/Items/Item)'
        )
        assert empty_items.result_text == "0"


class TestHomogeneityPrecondition:
    def test_heterogeneous_collection_rejected(self, cluster):
        from repro.datamodel import Collection, doc, elem
        from repro.errors import FragmentationError

        mixed = Collection(
            "Citems",
            [doc(elem("Item", elem("Section", "CD")), name="a.xml"),
             doc(elem("Other"), name="b.xml")],
        )
        publisher = DataPublisher(cluster)
        with pytest.raises(FragmentationError, match="homogeneous"):
            publisher.publish(mixed, items_design())

    def test_heterogeneous_allowed_when_waived(self, cluster):
        from repro.datamodel import Collection, doc, elem

        mixed = Collection(
            "Citems",
            [doc(elem("Item", elem("Section", "CD")), name="a.xml"),
             doc(elem("Other"), name="b.xml")],
        )
        publisher = DataPublisher(cluster)
        report = publisher.publish(
            mixed, items_design(), require_homogeneous=False
        )
        assert report.total_documents >= 1


class _QuotaDriver:
    """Delegates to a live driver; store_document fails after ``allow``
    calls — a disk-full halfway through a republish's store phase."""

    def __init__(self, inner, allow=1):
        self._inner = inner
        self._remaining = allow

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def store_document(self, collection, document, name=None, origin=None):
        if self._remaining <= 0:
            raise RuntimeError("simulated disk-full during the store phase")
        self._remaining -= 1
        return self._inner.store_document(
            collection, document, name=name, origin=origin
        )


class TestReplaceStoreThenSwap:
    """``replace=True`` is store-then-swap: a partial failure while the
    new fragments are being stored must leave the *old* design fully
    registered and answering queries."""

    def test_partial_failure_keeps_old_design_routable(self, items_collection):
        from repro.partix.middleware import Partix

        cluster = Cluster.with_sites(3)
        partix = Partix(cluster)
        partix.publish(items_collection, items_design())
        catalog = partix.distribution_catalog
        version = catalog.version
        queries = [
            'count(collection("Citems")/Item)',
            'for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" return $i',
        ]
        baselines = [
            partix.execute(q, execution_mode="simulated").result_text
            for q in queries
        ]

        replacement = FragmentationSchema("Citems", [
            HorizontalFragment(
                "G1", "Citems", predicate=eq("/Item/Section", "CD")
            ),
            HorizontalFragment(
                "G2", "Citems", predicate=ne("/Item/Section", "CD")
            ),
        ], root_label="Item")
        # G2 lands on site1 round-robin; fail its second document store.
        site = cluster.site("site1")
        site.driver = _QuotaDriver(site.driver, allow=1)
        with pytest.raises(RuntimeError, match="disk-full"):
            partix.publish(items_collection, replacement, replace=True)

        # The catalog never learned about the half-stored design.
        assert catalog.version == version
        design = catalog.fragmentation("Citems")
        assert design.fragment_names() == ["F1", "F2", "F3"]
        for query, expected in zip(queries, baselines):
            after = partix.execute(
                query, execution_mode="simulated"
            ).result_text
            assert after == expected
