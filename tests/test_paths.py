"""Unit tests for path expressions: parsing, relations, evaluation."""

import pytest

from repro.datamodel import doc, elem
from repro.errors import PathSyntaxError
from repro.paths import (
    Axis,
    PathExpr,
    Step,
    evaluate_path,
    is_terminal,
    parse_path,
    path_exists,
)


class TestParsePath:
    def test_simple_path(self):
        path = parse_path("/Store/Items/Item")
        assert len(path) == 3
        assert all(step.axis is Axis.CHILD for step in path.steps)
        assert str(path) == "/Store/Items/Item"

    def test_descendant_axis(self):
        path = parse_path("//Description")
        assert path.steps[0].axis is Axis.DESCENDANT

    def test_mixed_axes(self):
        path = parse_path("/Item//Picture/Name")
        assert [s.axis for s in path.steps] == [
            Axis.CHILD,
            Axis.DESCENDANT,
            Axis.CHILD,
        ]

    def test_wildcard(self):
        path = parse_path("/Item/*/Name")
        assert path.steps[1].is_wildcard

    def test_position(self):
        path = parse_path("/Item/PictureList/Picture[1]")
        assert path.steps[2].position == 1

    def test_attribute_last_step(self):
        path = parse_path("/Item/@id")
        assert path.selects_attribute
        assert path.last.name == "id"

    @pytest.mark.parametrize(
        "text",
        ["", "Item/Name", "/Item/@id/Name", "/Item/@id[1]", "/Item/", "//"],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(PathSyntaxError):
            parse_path(text)

    def test_round_trip_through_str(self):
        for text in ["/a/b", "//a/b[2]", "/a/*/b/@id", "/a//b"]:
            assert str(parse_path(text)) == text


class TestPathRelations:
    def test_simple_prefix(self):
        assert parse_path("/a/b").is_prefix_of(parse_path("/a/b/c"))
        assert parse_path("/a/b").is_prefix_of(parse_path("/a/b"))
        assert not parse_path("/a/b/c").is_prefix_of(parse_path("/a/b"))
        assert not parse_path("/a/x").is_prefix_of(parse_path("/a/b/c"))

    def test_is_simple(self):
        assert parse_path("/a/b").is_simple
        assert not parse_path("//a").is_simple
        assert not parse_path("/a/*").is_simple
        assert not parse_path("/a/b[1]").is_simple

    def test_label_steps(self):
        assert parse_path("/a/b/@id").label_steps() == ["a", "b", "@id"]
        with pytest.raises(ValueError):
            parse_path("//a").label_steps()

    def test_may_contain_with_descendant(self):
        # //b could select nodes inside /a/b's subtrees: cannot refute.
        assert parse_path("/a//b").may_contain(parse_path("/a/x/y"))
        assert parse_path("/a/b").may_contain(parse_path("//c")) is True

    def test_may_contain_refutes_label_mismatch(self):
        assert not parse_path("/a/b").may_contain(parse_path("/x/y"))

    def test_attribute_only_last(self):
        with pytest.raises(ValueError):
            PathExpr((Step(Axis.CHILD, "id", is_attribute=True), Step(Axis.CHILD, "x")))


@pytest.fixture
def store_doc():
    return doc(
        elem(
            "Store",
            elem(
                "Items",
                elem("Item", elem("Section", "CD"), elem("Name", "one"), id="1"),
                elem("Item", elem("Section", "DVD"), elem("Name", "two"), id="2"),
            ),
            elem("Sections", elem("Section", "misc")),
        )
    )


class TestEvaluation:
    def test_root_selection(self, store_doc):
        nodes = evaluate_path("/Store", store_doc)
        assert len(nodes) == 1 and nodes[0] is store_doc.root

    def test_child_chain(self, store_doc):
        nodes = evaluate_path("/Store/Items/Item", store_doc)
        assert len(nodes) == 2

    def test_descendant_everywhere(self, store_doc):
        nodes = evaluate_path("//Section", store_doc)
        assert len(nodes) == 3  # 2 item sections + 1 store section

    def test_descendant_mid_path(self, store_doc):
        nodes = evaluate_path("/Store//Name", store_doc)
        assert [n.text_value() for n in nodes] == ["one", "two"]

    def test_wildcard(self, store_doc):
        nodes = evaluate_path("/Store/*", store_doc)
        assert [n.label for n in nodes] == ["Items", "Sections"]

    def test_position_filter(self, store_doc):
        nodes = evaluate_path("/Store/Items/Item[2]", store_doc)
        assert len(nodes) == 1
        assert nodes[0].get_attribute("id") == "2"

    def test_attribute_selection(self, store_doc):
        nodes = evaluate_path("/Store/Items/Item/@id", store_doc)
        assert [n.value for n in nodes] == ["1", "2"]

    def test_no_match_is_empty(self, store_doc):
        assert evaluate_path("/Store/Nope", store_doc) == []

    def test_results_in_document_order_without_duplicates(self, store_doc):
        # '//' from two overlapping contexts must not duplicate results.
        nodes = evaluate_path("//Item//Section", store_doc)
        assert len(nodes) == 2

    def test_evaluate_on_bare_node(self):
        item = elem("Item", elem("Section", "CD"))
        assert evaluate_path("/Item/Section", item)[0].text_value() == "CD"

    def test_path_exists(self, store_doc):
        assert path_exists("/Store/Items", store_doc)
        assert not path_exists("/Store/Nope", store_doc)

    def test_descendant_can_select_root(self, store_doc):
        assert evaluate_path("//Store", store_doc) == [store_doc.root]


class TestTerminality:
    def test_leaf_element_terminal(self, store_doc):
        assert is_terminal("/Store/Items/Item/Name", store_doc)

    def test_attribute_terminal(self, store_doc):
        assert is_terminal("/Store/Items/Item/@id", store_doc)

    def test_internal_element_not_terminal(self, store_doc):
        assert not is_terminal("/Store/Items", store_doc)

    def test_empty_selection_not_terminal(self, store_doc):
        assert not is_terminal("/Store/Nope", store_doc)
