"""Unit tests for the TLC-style algebra: σ, π, ∪, ⋈, composition."""

import pytest

from repro.algebra import (
    PXID,
    PXPARENT,
    Projection,
    Selection,
    annotate,
    compose,
    read_annotation,
    reconstruct_documents,
    reconstruct_one,
    strip_annotations,
    union_documents,
)
from repro.datamodel import Collection, XMLDocument, doc, elem
from repro.errors import CorrectnessViolation, FragmentationError
from repro.paths import eq, ne
from repro.xmltext import parse_xml, serialize


@pytest.fixture
def item():
    return doc(
        elem(
            "Item",
            elem("Code", "I-1"),
            elem("Name", "Abbey Road"),
            elem("Section", "CD"),
            elem("PictureList", elem("Picture", elem("Name", "p1"))),
            elem("PricesHistory", elem("PriceHistory", elem("Price", "9.99"))),
        ),
        name="item.xml",
    )


class TestSelection:
    def test_keeps_matching_document(self, item):
        produced = Selection(eq("/Item/Section", "CD")).apply(item)
        assert len(produced) == 1
        assert produced[0].tree_equal(item)

    def test_drops_non_matching(self, item):
        assert Selection(eq("/Item/Section", "DVD")).apply(item) == []

    def test_result_is_a_copy(self, item):
        produced = Selection(eq("/Item/Section", "CD")).apply(item)[0]
        assert produced.root is not item.root

    def test_apply_collection(self, item):
        other = doc(elem("Item", elem("Section", "DVD")), name="other.xml")
        collection = Collection("c", [item, other])
        produced = Selection(eq("/Item/Section", "CD")).apply_collection(collection)
        assert [d.name for d in produced] == ["item.xml"]


class TestProjection:
    def test_projects_subtree(self, item):
        produced = Projection("/Item/PictureList").apply(item)
        assert len(produced) == 1
        assert produced[0].root.label == "PictureList"
        assert produced[0].origin == "item.xml"

    def test_no_match_produces_nothing(self):
        bare = doc(elem("Item", elem("Code", "I-2")), name="b.xml")
        assert Projection("/Item/PictureList").apply(bare) == []

    def test_annotations_on_projected_root(self, item):
        produced = Projection("/Item/PictureList").apply(item)[0]
        assert read_annotation(produced.root, PXID) is not None
        assert read_annotation(produced.root, PXPARENT) == 0  # Item is id 0

    def test_prune_removes_subtree(self, item):
        produced = Projection("/Item", prune=["/Item/PictureList"]).apply(item)[0]
        assert produced.root.first_child("PictureList") is None
        assert produced.root.first_child("PricesHistory") is not None

    def test_prune_must_be_contained_in_path(self):
        with pytest.raises(FragmentationError, match="not contained"):
            Projection("/Item/PictureList", prune=["/Item/Code"])

    def test_multiple_matches_rejected_by_default(self):
        document = doc(elem("a", elem("b"), elem("b")))
        with pytest.raises(FragmentationError, match="Definition 3"):
            Projection("/a/b").apply(document)

    def test_allow_multiple_yields_one_doc_per_node(self):
        document = doc(elem("a", elem("b", "1"), elem("b", "2")), name="d.xml")
        produced = Projection("/a/b", allow_multiple=True).apply(document)
        assert len(produced) == 2
        assert produced[0].name == "d.xml#0"

    def test_cut_point_annotated_with_children(self, item):
        produced = Projection("/Item", prune=["/Item/PictureList"]).apply(item)[0]
        # The Item root lost a child: it and its remaining element children
        # carry pxid for order-preserving grafts.
        assert read_annotation(produced.root, PXID) == 0
        for child in produced.root.element_children():
            assert read_annotation(child, PXID) is not None

    def test_stub_prunes_leave_placeholder(self, item):
        produced = Projection(
            "/Item", prune=["/Item/PictureList"], stub_prunes=True
        ).apply(item)[0]
        stub = produced.root.first_child("PictureList")
        assert stub is not None
        assert stub.element_children() == []
        assert read_annotation(stub, PXID) is not None

    def test_positional_path_projects_single(self):
        document = doc(elem("a", elem("b", "1"), elem("b", "2")))
        produced = Projection("/a/b[2]").apply(document)
        assert len(produced) == 1
        assert produced[0].root.text_value() == "2"


class TestComposition:
    def test_project_then_select(self, item):
        operator = compose(
            Projection("/Item/PictureList"),
            Selection(eq("/PictureList/Picture/Name", "p1")),
        )
        assert len(operator.apply(item)) == 1

    def test_select_then_project(self, item):
        operator = compose(
            Selection(eq("/Item/Section", "CD")),
            Projection("/Item/PictureList"),
        )
        produced = operator.apply(item)
        assert len(produced) == 1 and produced[0].root.label == "PictureList"

    def test_str_shows_order(self, item):
        operator = compose(Projection("/Item"), Selection(eq("/Item/Code", "x")))
        assert "•" in str(operator)


class TestUnion:
    def test_union_restores_collection(self, item):
        other = doc(elem("Item", elem("Section", "DVD")), name="other.xml")
        collection = Collection("c", [item, other])
        cd = Selection(eq("/Item/Section", "CD")).apply_collection(collection)
        rest = Selection(ne("/Item/Section", "CD")).apply_collection(collection)
        merged = union_documents([cd, rest])
        assert sorted(d.name for d in merged) == ["item.xml", "other.xml"]

    def test_union_detects_overlap(self, item):
        with pytest.raises(CorrectnessViolation, match="disjointness"):
            union_documents([[item], [item]])

    def test_union_overlap_tolerated_when_unchecked(self, item):
        merged = union_documents([[item], [item]], check_disjoint=False)
        assert len(merged) == 1

    def test_union_is_order_insensitive(self, item):
        other = doc(elem("Item"), name="a.xml")
        names1 = [d.name for d in union_documents([[item], [other]])]
        names2 = [d.name for d in union_documents([[other], [item]])]
        assert names1 == names2


class TestJoinReconstruction:
    def _roundtrip(self, parts, **kwargs):
        """Serialize + reparse parts (as a driver would) then join."""
        reparsed = []
        for part in parts:
            document = parse_xml(serialize(part), name=part.name)
            document.origin = part.origin
            reparsed.append(document)
        return reconstruct_one(reparsed, **kwargs)

    def test_prune_complement_roundtrip(self, item):
        f1 = Projection("/Item", prune=["/Item/PictureList"]).apply(item)
        f2 = Projection("/Item/PictureList").apply(item)
        rebuilt = self._roundtrip(f1 + f2, origin="item.xml")
        assert rebuilt.tree_equal(item)

    def test_order_restored_regardless_of_part_order(self, item):
        f1 = Projection("/Item", prune=["/Item/PricesHistory"]).apply(item)
        f2 = Projection("/Item/PricesHistory").apply(item)
        rebuilt = self._roundtrip(f2 + f1, origin="item.xml")
        assert rebuilt.tree_equal(item)

    def test_rootless_design_synthesizes_root(self):
        article = doc(
            elem("article", elem("prolog", elem("t", "x")), elem("body", elem("p", "y"))),
            name="a.xml",
        )
        parts = (
            Projection("/article/prolog").apply(article)
            + Projection("/article/body").apply(article)
        )
        rebuilt = self._roundtrip(parts, root_label="article")
        assert rebuilt.tree_equal(article)

    def test_rootless_without_label_fails(self):
        article = doc(elem("article", elem("prolog"), elem("body")), name="a.xml")
        parts = Projection("/article/prolog").apply(article)
        with pytest.raises(FragmentationError, match="root label"):
            reconstruct_one(parts)

    def test_stub_replaced_by_full_node(self, item):
        f1 = Projection(
            "/Item", prune=["/Item/PictureList"], stub_prunes=True
        ).apply(item)
        f2 = Projection("/Item/PictureList").apply(item)
        rebuilt = self._roundtrip(f1 + f2, origin="item.xml")
        assert rebuilt.tree_equal(item)

    def test_graft_under_stub(self, item):
        # Units grafted under a stubbed container (the StoreHyb pattern).
        store = doc(
            elem("Store", elem("Meta", elem("x", "1")),
                 elem("Items", elem("Item", elem("Code", "1")), elem("Item", elem("Code", "2")))),
            name="s.xml",
        )
        remainder = Projection("/Store", prune=["/Store/Items"], stub_prunes=True).apply(store)
        units = Projection("/Store/Items/Item", allow_multiple=True).apply(store)
        rebuilt = self._roundtrip(remainder + units, origin="s.xml")
        assert rebuilt.tree_equal(store)

    def test_missing_parent_raises(self, item):
        # A deep part whose graft parent (inside Item, not the root) is
        # provided by no fragment must be reported.
        orphan = Projection("/Item/PictureList/Picture[1]").apply(item)
        skeleton = Projection("/Item", prune=["/Item/PictureList"]).apply(item)
        with pytest.raises(FragmentationError, match="grafts under"):
            reconstruct_one(skeleton + orphan, origin="item.xml")

    def test_overlapping_skeletons_rejected(self, item):
        full = Projection("/Item").apply(item)
        with pytest.raises(FragmentationError, match="overlapping"):
            reconstruct_one(full + full, origin="item.xml")

    def test_fragmode2_root_claims_merge(self):
        # FragMode2 hybrid parts ship the whole root→region spine, so the
        # remainder and every hybrid part claim the root; same-pxid claims
        # must merge back into the original document (fuzz-found bug).
        from repro.partix.fragments import HybridFragment
        from repro.partix.publisher import DataPublisher
        from repro.paths.predicates import eq, ne

        store = doc(
            elem("Store", elem("Meta", elem("x", "1")),
                 elem("Items",
                      elem("Item", elem("Code", "1"), elem("Section", "CD")),
                      elem("Item", elem("Code", "2"), elem("Section", "DVD")),
                      elem("Item", elem("Code", "3"), elem("Section", "CD")))),
            name="s.xml",
        )
        remainder = Projection(
            "/Store", prune=["/Store/Items"], stub_prunes=True
        ).apply(store)
        publisher = DataPublisher.__new__(DataPublisher)  # no cluster needed
        parts = list(remainder)
        for name, predicate in (
            ("F2", eq("/Item/Section", "CD")),
            ("F3", ne("/Item/Section", "CD")),
        ):
            fragment = HybridFragment(
                name, "c", path="/Store/Items", unit_label="Item",
                predicate=predicate,
            )
            part = publisher._materialize_single_document(fragment, store)
            assert part is not None
            parts.append(part)
        rebuilt = self._roundtrip(parts, origin="s.xml")
        assert rebuilt.tree_equal(store)

    def test_reconstruct_documents_groups_by_origin(self):
        docs = [
            doc(elem("a", elem("p", elem("t", str(i))), elem("q", elem("u", str(i)))), name=f"d{i}.xml")
            for i in range(3)
        ]
        parts = []
        for document in docs:
            parts.extend(Projection("/a/p").apply(document))
            parts.extend(Projection("/a/q").apply(document))
        rebuilt = reconstruct_documents(parts, root_label="a")
        assert len(rebuilt) == 3
        for original, restored in zip(docs, rebuilt):
            assert restored.tree_equal(original)

    def test_empty_parts_rejected(self):
        with pytest.raises(FragmentationError):
            reconstruct_one([])


class TestAnnotations:
    def test_annotate_and_read(self):
        node = elem("a")
        annotate(node, PXID, 7)
        assert read_annotation(node, PXID) == 7
        annotate(node, PXID, 9)  # replace
        assert read_annotation(node, PXID) == 9
        assert len(node.attributes()) == 1

    def test_strip_annotations(self):
        node = elem("a", elem("b"), id="1")
        annotate(node, PXID, 1)
        annotate(node.element_children()[0], PXPARENT, 0)
        stripped = strip_annotations(node)
        assert read_annotation(stripped, PXID) is None
        assert stripped.get_attribute("id") == "1"
        assert read_annotation(stripped.element_children()[0], PXPARENT) is None
