"""parse → unparse → parse is the identity on every workload query.

The fuzz harness ships generated queries as *text* (the only interface a
site driver offers) after building them as ASTs, and the decomposer
round-trips rewritten sub-queries the same way — so ``unparse`` must be a
faithful inverse of ``parse_query`` on the whole supported subset. Every
benchmark query of ``workloads/queries.py`` and every query the fuzz
generator can emit is checked.
"""

import pytest

from repro.fuzz.generator import generate_case, spec_for_iteration
from repro.workloads import queries as query_sets
from repro.xquery.parser import parse_query
from repro.xquery.unparse import unparse

ALL_BENCH_QUERIES = [
    pytest.param(q.text, id=f"{prefix}-{q.qid}")
    for prefix, qs in (
        ("items", query_sets.items_queries()),
        ("xbench", query_sets.xbench_queries()),
        ("store", query_sets.store_queries()),
    )
    for q in qs
]


@pytest.mark.parametrize("text", ALL_BENCH_QUERIES)
def test_bench_query_roundtrip(text):
    ast = parse_query(text)
    rendered = unparse(ast)
    assert parse_query(rendered) == ast
    # The rendering itself must be stable (unparse of a reparsed AST).
    assert unparse(parse_query(rendered)) == rendered


@pytest.mark.parametrize("iteration", range(24))
def test_generated_query_roundtrip(iteration):
    # generate_case already asserts parse(unparse(ast)) == ast for every
    # query it emits; this re-checks from the rendered text side so the
    # invariant is covered even if the generator's own assertion changes.
    case = generate_case(spec_for_iteration(20060301, iteration))
    for text in case.queries:
        ast = parse_query(text)
        assert parse_query(unparse(ast)) == ast


def test_roundtrip_preserves_structure_not_just_text():
    # Equality must be structural (frozen dataclasses), not textual: the
    # same AST can have many renderings but only one shape.
    text = 'for $i in collection("c")/Item where $i/P = 1 return $i'
    spaced = 'for  $i  in  collection("c")/Item  where  ($i/P = 1)  return  $i'
    assert parse_query(text) == parse_query(spaced)
