"""Unit tests for the schema and distribution catalogs."""

import pytest

from repro.datamodel import RepositoryKind
from repro.errors import CatalogError
from repro.partix import (
    CollectionDeclaration,
    DistributionCatalog,
    FragmentAllocation,
    FragmentationSchema,
    HorizontalFragment,
    SchemaCatalog,
)
from repro.paths import eq, ne
from repro.xschema import Schema


@pytest.fixture
def fragmentation():
    return FragmentationSchema("c", [
        HorizontalFragment("F1", "c", predicate=eq("/Item/S", "x")),
        HorizontalFragment("F2", "c", predicate=ne("/Item/S", "x")),
    ], root_label="Item")


class TestSchemaCatalog:
    def test_register_and_fetch_schema(self):
        catalog = SchemaCatalog()
        catalog.register_schema(Schema("s"))
        assert catalog.schema("s").name == "s"

    def test_duplicate_schema_rejected(self):
        catalog = SchemaCatalog()
        catalog.register_schema(Schema("s"))
        with pytest.raises(CatalogError):
            catalog.register_schema(Schema("s"))

    def test_missing_schema(self):
        with pytest.raises(CatalogError):
            SchemaCatalog().schema("nope")

    def test_collection_declaration(self):
        catalog = SchemaCatalog()
        catalog.register_schema(Schema("s"))
        catalog.register_collection(
            CollectionDeclaration(
                "c", RepositoryKind.MULTIPLE_DOCUMENTS, "s", "Item", "Item"
            )
        )
        assert catalog.has_collection("c")
        assert catalog.collection("c").root_type == "Item"
        assert catalog.collection_names() == ["c"]

    def test_collection_requires_registered_schema(self):
        catalog = SchemaCatalog()
        with pytest.raises(CatalogError):
            catalog.register_collection(
                CollectionDeclaration(
                    "c", RepositoryKind.MULTIPLE_DOCUMENTS, "missing", "x", "x"
                )
            )

    def test_duplicate_collection_rejected(self):
        catalog = SchemaCatalog()
        declaration = CollectionDeclaration("c", RepositoryKind.MULTIPLE_DOCUMENTS)
        catalog.register_collection(declaration)
        with pytest.raises(CatalogError):
            catalog.register_collection(declaration)


class TestDistributionCatalog:
    def test_register_and_lookup(self, fragmentation):
        catalog = DistributionCatalog()
        catalog.register_fragmentation(fragmentation, [
            FragmentAllocation("F1", "s0", "F1"),
            FragmentAllocation("F2", "s1", "F2"),
        ])
        assert catalog.is_fragmented("c")
        assert catalog.fragmentation("c") is fragmentation
        assert catalog.allocation("c", "F1").site == "s0"
        assert len(catalog.allocations("c")) == 2
        assert catalog.fragmented_collections() == ["c"]

    def test_missing_allocation_rejected(self, fragmentation):
        catalog = DistributionCatalog()
        with pytest.raises(CatalogError, match="without allocation"):
            catalog.register_fragmentation(
                fragmentation, [FragmentAllocation("F1", "s0", "F1")]
            )

    def test_unknown_fragment_rejected(self, fragmentation):
        catalog = DistributionCatalog()
        with pytest.raises(Exception):
            catalog.register_fragmentation(
                fragmentation,
                [
                    FragmentAllocation("F1", "s0", "F1"),
                    FragmentAllocation("F9", "s1", "F9"),
                ],
            )

    def test_second_allocation_on_distinct_site_is_a_replica(self, fragmentation):
        catalog = DistributionCatalog()
        catalog.register_fragmentation(
            fragmentation,
            [
                FragmentAllocation("F1", "s0", "F1"),
                FragmentAllocation("F1", "s1", "F1b"),
                FragmentAllocation("F2", "s1", "F2"),
            ],
        )
        assert len(catalog.replicas("c", "F1")) == 2

    def test_duplicate_collection_rejected(self, fragmentation):
        catalog = DistributionCatalog()
        allocations = [
            FragmentAllocation("F1", "s0", "F1"),
            FragmentAllocation("F2", "s1", "F2"),
        ]
        catalog.register_fragmentation(fragmentation, allocations)
        with pytest.raises(CatalogError, match="already"):
            catalog.register_fragmentation(fragmentation, allocations)

    def test_unregister(self, fragmentation):
        catalog = DistributionCatalog()
        catalog.register_fragmentation(fragmentation, [
            FragmentAllocation("F1", "s0", "F1"),
            FragmentAllocation("F2", "s1", "F2"),
        ])
        catalog.unregister("c")
        assert not catalog.is_fragmented("c")
        with pytest.raises(CatalogError):
            catalog.fragmentation("c")

    def test_missing_collection_lookups(self):
        catalog = DistributionCatalog()
        with pytest.raises(CatalogError):
            catalog.allocation("c", "F1")
        with pytest.raises(CatalogError):
            catalog.allocations("c")


class TestReplication:
    def test_replicas_registered_and_listed(self, fragmentation):
        catalog = DistributionCatalog()
        catalog.register_fragmentation(fragmentation, [
            FragmentAllocation("F1", "s0", "F1"),
            FragmentAllocation("F1", "s1", "F1"),  # replica
            FragmentAllocation("F2", "s1", "F2"),
        ])
        replicas = catalog.replicas("c", "F1")
        assert [r.site for r in replicas] == ["s0", "s1"]
        assert catalog.allocation("c", "F1").site == "s0"  # primary
        assert len(catalog.allocations("c")) == 3

    def test_same_site_replica_rejected(self, fragmentation):
        catalog = DistributionCatalog()
        with pytest.raises(CatalogError, match="twice"):
            catalog.register_fragmentation(fragmentation, [
                FragmentAllocation("F1", "s0", "F1"),
                FragmentAllocation("F1", "s0", "F1b"),
                FragmentAllocation("F2", "s1", "F2"),
            ])
