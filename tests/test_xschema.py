"""Unit tests for the schema layer: validation and path analysis."""

import pytest

from repro.datamodel import doc, elem
from repro.errors import SchemaError, ValidationError
from repro.xschema import (
    AttributeDecl,
    ChildDecl,
    ElementDecl,
    Schema,
    SimpleType,
)


@pytest.fixture
def store_schema():
    schema = Schema("s")
    schema.element("Code", content=SimpleType.STRING)
    schema.element("Price", content=SimpleType.DECIMAL)
    schema.element("Date", content=SimpleType.DATE)
    schema.element(
        "PriceHistory", children=[ChildDecl("Price"), ChildDecl("Date")]
    )
    schema.element(
        "PricesHistory",
        children=[ChildDecl("PriceHistory", min_occurs=1, max_occurs=None)],
    )
    schema.element(
        "Item",
        children=[
            ChildDecl("Code"),
            ChildDecl("PricesHistory", min_occurs=0, max_occurs=1),
        ],
        attributes=[AttributeDecl("id", SimpleType.INTEGER, required=True)],
    )
    return schema


class TestSimpleTypes:
    @pytest.mark.parametrize(
        "stype,good,bad",
        [
            (SimpleType.INTEGER, "42", "4.2"),
            (SimpleType.DECIMAL, "-3.14", "abc"),
            (SimpleType.BOOLEAN, "true", "yes"),
            (SimpleType.DATE, "2005-01-31", "01/31/2005"),
        ],
    )
    def test_accepts(self, stype, good, bad):
        assert stype.accepts(good)
        assert not stype.accepts(bad)

    def test_string_accepts_anything(self):
        assert SimpleType.STRING.accepts("")
        assert SimpleType.STRING.accepts("anything at all")


class TestDeclarations:
    def test_duplicate_declaration_rejected(self):
        schema = Schema("s")
        schema.element("a")
        with pytest.raises(SchemaError):
            schema.element("a")

    def test_bad_cardinality_rejected(self):
        with pytest.raises(SchemaError):
            ChildDecl("x", min_occurs=3, max_occurs=2)
        with pytest.raises(SchemaError):
            ChildDecl("x", min_occurs=-1)

    def test_content_and_children_exclusive(self):
        with pytest.raises(SchemaError):
            ElementDecl("a", children=[ChildDecl("b")], content=SimpleType.STRING)

    def test_cardinality_str(self):
        assert ChildDecl("x", 1, None).cardinality_str() == "1..n"
        assert ChildDecl("x", 0, 1).cardinality_str() == "0..1"

    def test_unknown_type_lookup(self):
        with pytest.raises(SchemaError):
            Schema("s").get("missing")


class TestValidation:
    def test_valid_document(self, store_schema):
        item = doc(
            elem(
                "Item",
                elem("Code", "I-1"),
                elem(
                    "PricesHistory",
                    elem("PriceHistory", elem("Price", "9.99"), elem("Date", "2005-01-01")),
                ),
                id="7",
            )
        )
        assert store_schema.satisfies(item.root, "Item")

    def test_optional_child_may_be_absent(self, store_schema):
        item = doc(elem("Item", elem("Code", "I-1"), id="7"))
        assert store_schema.satisfies(item.root, "Item")

    def test_missing_required_child(self, store_schema):
        item = doc(elem("Item", id="7"))
        with pytest.raises(ValidationError, match="Code"):
            store_schema.validate(item.root, "Item")

    def test_missing_required_attribute(self, store_schema):
        item = doc(elem("Item", elem("Code", "I-1")))
        with pytest.raises(ValidationError, match="id"):
            store_schema.validate(item.root, "Item")

    def test_invalid_attribute_type(self, store_schema):
        item = doc(elem("Item", elem("Code", "I-1"), id="not-a-number"))
        with pytest.raises(ValidationError, match="invalid"):
            store_schema.validate(item.root, "Item")

    def test_undeclared_attribute(self, store_schema):
        item = doc(elem("Item", elem("Code", "I-1"), id="1", extra="x"))
        with pytest.raises(ValidationError, match="undeclared"):
            store_schema.validate(item.root, "Item")

    def test_wrong_root_label(self, store_schema):
        with pytest.raises(ValidationError, match="expected element"):
            store_schema.validate(elem("Other"), "Item")

    def test_bad_simple_content(self, store_schema):
        bad = elem("Price", "not-a-number")
        with pytest.raises(ValidationError, match="not a valid"):
            store_schema.validate(bad, "Price")

    def test_unexpected_child(self, store_schema):
        item = doc(elem("Item", elem("Code", "I-1"), elem("Code", "I-2"), id="1"))
        with pytest.raises(ValidationError):
            store_schema.validate(item.root, "Item")

    def test_unbounded_children_accepted(self, store_schema):
        history = elem(
            "PricesHistory",
            *[
                elem("PriceHistory", elem("Price", "1.0"), elem("Date", "2001-01-01"))
                for _ in range(5)
            ],
        )
        assert store_schema.satisfies(history, "PricesHistory")

    def test_min_occurs_enforced(self, store_schema):
        with pytest.raises(ValidationError, match="at least"):
            store_schema.validate(elem("PricesHistory"), "PricesHistory")

    def test_declared_empty_element(self):
        schema = Schema("s")
        schema.element("empty")
        assert schema.satisfies(elem("empty"), "empty")
        with pytest.raises(ValidationError, match="declared empty"):
            schema.validate(elem("empty", elem("x")), "empty")


class TestPathAnalysis:
    def test_type_at_path(self, store_schema):
        decl = store_schema.type_at_path(["PricesHistory", "PriceHistory"], "Item")
        assert decl.name == "PriceHistory"

    def test_type_at_unknown_path(self, store_schema):
        with pytest.raises(SchemaError, match="no child"):
            store_schema.type_at_path(["Nope"], "Item")

    def test_cardinality_single(self, store_schema):
        assert store_schema.max_path_cardinality(["Code"], "Item") == 1

    def test_cardinality_optional_is_one(self, store_schema):
        assert store_schema.max_path_cardinality(["PricesHistory"], "Item") == 1

    def test_cardinality_unbounded(self, store_schema):
        assert (
            store_schema.max_path_cardinality(
                ["PricesHistory", "PriceHistory"], "Item"
            )
            is None
        )

    def test_cardinality_multiplies(self):
        schema = Schema("s")
        schema.element("c")
        schema.element("b", children=[ChildDecl("c", 0, 3)])
        schema.element("a", children=[ChildDecl("b", 0, 2)])
        assert schema.max_path_cardinality(["b", "c"], "a") == 6
