"""Intra-site shard pipeline: gate, partition, fold, stats, plan IR.

The contract under test: sharded evaluation is *purely* a performance
decision — at any requested degree, in any mode, the answer is
byte-identical to the serial run, and the per-shard stats sum exactly to
what the serial run charges for the same query.
"""

import pytest

from repro.cluster import Cluster, Site
from repro.datamodel import doc, elem
from repro.engine import XMLEngine
from repro.engine.shards import (
    _FORK_INHERITED,
    ShardScript,
    partition_candidates,
    shard_script,
)
from repro.partix import (
    FragmentationSchema,
    HorizontalFragment,
    Partix,
    SubQuery,
)
from repro.paths import eq, ne
from repro.plan.cost import CostModel, MIN_SHARD_DOCUMENTS
from repro.xquery.parser import parse_query

#: 2^-9 — exactly representable, so repeated float sums of the simulated
#: per-document overhead are order-independent and the exact-sum
#: assertions below can use ==, not approx.
OVERHEAD = 1.0 / 512.0


def make_priced_item(index: int):
    return doc(
        elem(
            "Item",
            elem("Code", f"I-{index:03d}"),
            elem("Section", "CD" if index % 2 == 0 else "DVD"),
            elem("Description", "a good thing" if index % 4 == 0 else "stuff"),
            elem("Price", str(index + 1)),
        ),
        name=f"item-{index:03d}.xml",
    )


def make_engine(**kwargs) -> XMLEngine:
    engine = XMLEngine("shard-test", **kwargs)
    for index in range(16):
        engine.store_document("c", make_priced_item(index))
    return engine


SHARDABLE_QUERIES = [
    'collection("c")/Item/Code',
    'collection("c")/Item[Section = "CD"]/Code',
    'for $i in collection("c")/Item where $i/Section = "CD" return $i/Code',
    'count(collection("c")/Item)',
    'exists(collection("c")/Item[Section = "DVD"])',
    'empty(collection("c")/Item[Section = "Vinyl"])',
    'sum(collection("c")/Item/Price)',
    'avg(collection("c")/Item/Price)',
    'min(collection("c")/Item/Price)',
    'max(collection("c")/Item/Price)',
]


class TestShardScript:
    def test_path_is_concat(self):
        script = shard_script(parse_query('collection("c")/Item/Code'))
        assert script == ShardScript(mode="concat")

    def test_count_folds(self):
        script = shard_script(parse_query('count(collection("c")/Item)'))
        assert script == ShardScript(mode="fold", aggregate="count")

    def test_sum_ships_values(self):
        script = shard_script(parse_query('sum(collection("c")/Item/Price)'))
        assert script == ShardScript(mode="values", aggregate="sum")

    @pytest.mark.parametrize(
        "query",
        [
            # FilterExpr predicates see the cross-document sequence.
            '(collection("c")/Item)[2]',
            # doc() is not a partitionable input.
            'doc("item-000.xml")/Item/Code',
            # Two collection inputs cannot partition together.
            'count(collection("c")/Item) + count(collection("c")/Item)',
        ],
    )
    def test_non_shardable_shapes(self, query):
        assert shard_script(parse_query(query)) is None


class TestPartitionCandidates:
    def test_contiguous_and_order_preserving(self):
        names = [f"d{i}" for i in range(10)]
        shards = partition_candidates(names, 3)
        assert [n for shard in shards for n in shard] == names
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_degree_clamped_to_candidates(self):
        shards = partition_candidates(["a", "b"], 5)
        assert shards == [["a"], ["b"]]

    def test_degree_one_is_identity(self):
        names = ["a", "b", "c"]
        assert partition_candidates(names, 1) == [names]


class TestEngineByteIdentity:
    @pytest.mark.parametrize("query", SHARDABLE_QUERIES)
    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_sharded_matches_serial(self, query, degree):
        engine = make_engine(shard_workers=4)
        try:
            serial = engine.execute(query, default_collection="c")
            sharded = engine.execute(
                query, default_collection="c", parallel_degree=degree
            )
            assert sharded.result_text == serial.result_text
        finally:
            engine.close()

    def test_non_shardable_query_declines_silently(self):
        engine = make_engine(shard_workers=4)
        try:
            query = '(collection("c")/Item)[2]'
            serial = engine.execute(query, default_collection="c")
            forced = engine.execute(
                query, default_collection="c", parallel_degree=4
            )
            assert forced.result_text == serial.result_text
        finally:
            engine.close()

    def test_no_pool_means_serial(self):
        engine = make_engine(shard_workers=0)
        try:
            result = engine.execute(
                'collection("c")/Item/Code',
                default_collection="c",
                parallel_degree=4,
            )
            assert result.binary_decodes == 16  # the serial path ran
        finally:
            engine.close()


class TestShardStatsExactSum:
    """Satellite: per-shard stats sum *exactly* to the serial charges."""

    EXACT_FIELDS = [
        "documents_parsed",
        "bytes_parsed",
        "binary_decodes",
        "label_pruned",
        "cache_hits",
        "documents_scanned",
        "documents_pruned",
        "simulated_overhead_seconds",
    ]

    @pytest.mark.parametrize(
        "query",
        [
            'collection("c")/Item/Code',
            'collection("c")/Item[Section = "CD"]/Code',
            'count(collection("c")/Item)',
            'sum(collection("c")/Item/Price)',
        ],
    )
    def test_sharded_equals_serial(self, query):
        serial_engine = make_engine(per_document_overhead=OVERHEAD)
        sharded_engine = make_engine(
            shard_workers=4, per_document_overhead=OVERHEAD
        )
        try:
            serial = serial_engine.execute(query, default_collection="c")
            sharded = sharded_engine.execute(
                query, default_collection="c", parallel_degree=4
            )
            assert sharded.result_text == serial.result_text
            for field in self.EXACT_FIELDS:
                assert getattr(sharded, field) == getattr(serial, field), field
        finally:
            serial_engine.close()
            sharded_engine.close()

    def test_overhead_accrues_in_parallel_but_sums_serially(self):
        """The counter sums every shard's overhead; elapsed advances by
        the slowest shard's share only (shards run concurrently)."""
        engine = make_engine(shard_workers=2, per_document_overhead=1.0)
        try:
            sharded = engine.execute(
                'collection("c")/Item/Code',
                default_collection="c",
                parallel_degree=2,
            )
            # 16 documents: the counter charges all 16 seconds...
            assert sharded.simulated_overhead_seconds == 16.0
            # ...but the two 8-document shards overlapped, so elapsed
            # includes one shard's 8 seconds (plus real wall time).
            assert 8.0 <= sharded.elapsed_seconds < 12.0
        finally:
            engine.close()


class TestForkInheritance:
    def test_snapshot_registered_and_released(self):
        engine = make_engine(shard_workers=2)
        try:
            engine.execute(
                'collection("c")/Item/Code',
                default_collection="c",
                parallel_degree=2,
            )
            token = engine._fork_token
            if token is not None:  # fork platforms only
                assert token in _FORK_INHERITED
                assert len(_FORK_INHERITED[token]) == 16
        finally:
            engine.close()
        assert engine._fork_token is None
        assert all(token != key for key in _FORK_INHERITED) or token is None

    def test_worker_cache_mirrors_cache_parsed(self):
        engine = make_engine(shard_workers=2, cache_parsed=True)
        try:
            query = 'collection("c")/Item/Code'
            first = engine.execute(
                query, default_collection="c", parallel_degree=2
            )
            second = engine.execute(
                query, default_collection="c", parallel_degree=2
            )
            # Every access is either a worker-cache hit or a decode —
            # never both, never neither.
            assert first.cache_hits + first.binary_decodes == 16
            assert second.cache_hits + second.binary_decodes == 16
            assert second.documents_parsed == second.binary_decodes
        finally:
            engine.close()

    def test_cache_off_redecodes_every_query(self):
        engine = make_engine(shard_workers=2, cache_parsed=False)
        try:
            query = 'collection("c")/Item/Code'
            for _ in range(2):
                result = engine.execute(
                    query, default_collection="c", parallel_degree=2
                )
                assert result.binary_decodes == 16
                assert result.cache_hits == 0
        finally:
            engine.close()


class _StatsCatalog:
    def __init__(self, documents, fragment_bytes):
        self._stats = type(
            "Stats", (), {"documents": documents, "bytes": fragment_bytes}
        )()

    def statistics(self, collection, fragment, site):
        return self._stats


class TestShardDegreeChooser:
    def test_no_workers_is_serial(self):
        model = CostModel(shard_workers=0)
        assert model.shard_degree("C", "F", "s0") == 1

    def test_default_statistics_stay_serial(self):
        # 8 default documents never amortize a shard's startup cost.
        model = CostModel(shard_workers=8)
        assert model.shard_degree("C", "F", "s0") == 1

    def test_large_fragment_gets_sharded(self):
        catalog = _StatsCatalog(documents=64, fragment_bytes=1_000_000)
        model = CostModel(catalog, shard_workers=4)
        assert model.shard_degree("C", "F", "s0") == 4

    def test_tiny_fragment_never_pays_startup(self):
        catalog = _StatsCatalog(
            documents=MIN_SHARD_DOCUMENTS * 2 - 1, fragment_bytes=4096
        )
        model = CostModel(catalog, shard_workers=8)
        assert model.shard_degree("C", "F", "s0") == 1

    def test_index_access_scales_by_selectivity(self):
        catalog = _StatsCatalog(documents=64, fragment_bytes=1_000_000)
        model = CostModel(catalog, shard_workers=4)
        # A selective index probe leaves too few candidates to shard.
        assert (
            model.shard_degree("C", "F", "s0", selectivity=0.05, access="index")
            == 1
        )


class TestSubQuerySpec:
    def test_parallel_degree_roundtrips(self):
        subquery = SubQuery(
            fragment="F", site="s0", collection="C", query="q",
            parallel_degree=3,
        )
        data = subquery.to_dict()
        assert data["parallel_degree"] == 3
        assert SubQuery.from_dict(data).parallel_degree == 3

    def test_unset_degree_is_omitted_from_wire_form(self):
        subquery = SubQuery(fragment="F", site="s0", collection="C", query="q")
        data = subquery.to_dict()
        assert "parallel_degree" not in data
        assert SubQuery.from_dict(data).parallel_degree is None


@pytest.fixture
def sharded_partix(items_collection):
    cluster = Cluster.with_sites(2, shard_workers=2)
    cluster.add(Site("central", shard_workers=2))
    px = Partix(cluster)
    design = FragmentationSchema("Citems", [
        HorizontalFragment(
            "F_cd", "Citems", predicate=eq("/Item/Section", "CD")
        ),
        HorizontalFragment(
            "F_rest", "Citems", predicate=ne("/Item/Section", "CD")
        ),
    ], root_label="Item")
    px.publish(items_collection, design)
    px.publish_centralized(items_collection, "central")
    yield px
    for site in cluster.sites():
        engine = getattr(site.driver, "engine", None)
        if engine is not None:
            engine.close()


class TestPlanDegree:
    def test_shard_workers_inferred_from_cluster(self, sharded_partix):
        assert sharded_partix.shard_workers == 2

    def test_with_lane_degree_stamps_and_clears(self, sharded_partix):
        plan = sharded_partix.explain('collection("Citems")/Item/Code')
        assert all(s.parallel_degree is None for s in plan.subqueries)
        stamped = plan.with_lane_degree(3)
        assert all(s.parallel_degree == 3 for s in stamped.subqueries)
        cleared = stamped.with_lane_degree(1)
        assert all(s.parallel_degree is None for s in cleared.subqueries)
        # Stamping the value already present returns the plan itself.
        assert stamped.with_lane_degree(3) is stamped

    def test_lowering_stamps_degree_and_explain_renders_it(
        self, sharded_partix
    ):
        # Inflate per-document CPU so the 8-document F_rest fragment
        # amortizes the shard startup cost; the 4-document F_cd fragment
        # stays below the minimum shard size either way.
        model = CostModel(
            sharded_partix.distribution_catalog,
            sharded_partix.network,
            seconds_per_document=0.05,
            shard_workers=2,
        )
        sharded_partix.cost_model = model
        sharded_partix.decomposer.cost_model = model
        plan = sharded_partix.explain('collection("Citems")/Item/Code')
        degrees = {s.fragment: s.parallel_degree for s in plan.subqueries}
        assert degrees["F_rest"] == 2
        assert degrees["F_cd"] is None
        assert "degree=2" in plan.render()

    def test_forced_degrees_are_byte_identical(self, sharded_partix):
        query = 'for $i in collection("Citems")/Item return $i/Code'
        baseline = sharded_partix.execute(query).result_text
        for mode in ("simulated", "threads"):
            for degree in (1, 2):
                result = sharded_partix.execute(
                    query, execution_mode=mode, shard_degree=degree
                )
                assert result.result_text == baseline
