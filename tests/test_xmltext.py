"""Unit tests for the XML parser and serializer."""

import pytest

from repro.datamodel import NodeKind, doc, elem
from repro.errors import XMLSyntaxError
from repro.xmltext import (
    parse_fragment,
    parse_xml,
    serialize,
    serialize_pretty,
    serialized_size,
)
from repro.xmltext.escape import escape_attribute, escape_text, resolve_entity
from repro.xmltext.parser import parse_forest


class TestParserBasics:
    def test_simple_element(self):
        document = parse_xml("<a/>")
        assert document.root.label == "a"
        assert document.root.is_leaf

    def test_nested_elements(self):
        document = parse_xml("<a><b><c/></b></a>")
        labels = [n.label for n in document.root.descendants_or_self()]
        assert labels == ["a", "b", "c"]

    def test_text_content(self):
        document = parse_xml("<a>hello world</a>")
        assert document.root.text_value() == "hello world"

    def test_attributes(self):
        document = parse_xml('<a x="1" y=\'two\'/>')
        assert document.root.get_attribute("x") == "1"
        assert document.root.get_attribute("y") == "two"

    def test_whitespace_between_elements_ignored(self):
        document = parse_xml("<a>\n  <b/>\n  <c/>\n</a>")
        assert [c.label for c in document.root.children] == ["b", "c"]

    def test_xml_declaration_and_comments_skipped(self):
        document = parse_xml(
            '<?xml version="1.0"?><!-- hi --><a><!-- inner --><b/></a>'
        )
        assert [c.label for c in document.root.children] == ["b"]

    def test_processing_instruction_skipped(self):
        document = parse_xml("<a><?php echo ?><b/></a>")
        assert [c.label for c in document.root.children] == ["b"]

    def test_doctype_skipped(self):
        document = parse_xml("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>")
        assert document.root.label == "a"

    def test_cdata_becomes_text(self):
        document = parse_xml("<a><![CDATA[<not> & parsed]]></a>")
        assert document.root.text_value() == "<not> & parsed"

    def test_entities_resolved(self):
        document = parse_xml("<a>&lt;x&gt; &amp; &quot;y&quot; &#65;&#x42;</a>")
        assert document.root.text_value() == '<x> & "y" AB'

    def test_entity_in_attribute(self):
        document = parse_xml('<a t="a&amp;b"/>')
        assert document.root.get_attribute("t") == "a&b"

    def test_names_with_namespace_colon(self):
        document = parse_xml("<ns:a><ns:b/></ns:a>")
        assert document.root.label == "ns:a"

    def test_document_ids_assigned(self):
        document = parse_xml("<a><b/></a>")
        assert [n.node_id for n in document.nodes()] == [0, 1]

    def test_parse_fragment_keeps_unassigned_ids(self):
        root = parse_fragment("<a><b/></a>")
        assert root.node_id < 0


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",  # unterminated
            "<a></b>",  # mismatched tags
            "<a x=1/>",  # unquoted attribute
            '<a x="1" x="2"/>',  # duplicate attribute
            "<a>&unknown;</a>",  # unknown entity
            "<a/><b/>",  # two roots
            "plain text",  # no element
            "<a><b>text</b>tail</a>",  # mixed content (text beside element)
            "<a>text<b/></a>",  # mixed content (element after text)
            '<a x="<"/>',  # raw < in attribute
            "",  # empty input
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_xml(text)

    def test_error_carries_location(self):
        with pytest.raises(XMLSyntaxError) as info:
            parse_xml("<a>\n<b></c></a>")
        assert info.value.line == 2


class TestSerializer:
    def test_compact_round_trip(self):
        text = '<a x="1"><b>hi</b><c/></a>'
        assert serialize(parse_xml(text)) == text

    def test_escapes_text(self):
        assert serialize(doc(elem("a", "x < y & z"))) == "<a>x &lt; y &amp; z</a>"

    def test_escapes_attribute_quotes(self):
        document = doc(elem("a", t='say "hi"'))
        assert 'say &quot;hi&quot;' in serialize(document)

    def test_empty_element_self_closes(self):
        assert serialize(doc(elem("a"))) == "<a/>"

    def test_detached_attribute_rejected(self):
        from repro.datamodel import XMLNode

        with pytest.raises(ValueError):
            serialize(XMLNode.attribute("x", "1"))

    def test_pretty_is_reparseable(self):
        document = doc(elem("a", elem("b", "text"), elem("c", elem("d"))))
        pretty = serialize_pretty(document)
        assert parse_xml(pretty).tree_equal(document)
        assert "\n" in pretty

    def test_serialized_size_counts_utf8(self):
        assert serialized_size(doc(elem("a", "é"))) == len("<a>é</a>".encode())


class TestEscape:
    def test_escape_text_passthrough(self):
        assert escape_text("plain") == "plain"

    def test_escape_text_specials(self):
        assert escape_text("<&>") == "&lt;&amp;&gt;"

    def test_escape_attribute_quotes(self):
        assert escape_attribute("a\"b'c") == "a&quot;b&apos;c"

    def test_resolve_named(self):
        assert resolve_entity("amp") == "&"
        assert resolve_entity("nope") is None

    def test_resolve_numeric(self):
        assert resolve_entity("#65") == "A"
        assert resolve_entity("#x41") == "A"
        assert resolve_entity("#xZZ") is None


class TestParseForest:
    def test_multiple_roots(self):
        roots = parse_forest("<a/>\n<b>x</b>\n<c/>")
        assert [r.label for r in roots] == ["a", "b", "c"]

    def test_empty_input(self):
        assert parse_forest("  \n ") == []

    def test_round_trips_serialized_sequence(self):
        docs = [doc(elem("a", elem("b", "1"))), doc(elem("a", elem("b", "2")))]
        text = "\n".join(serialize(d) for d in docs)
        roots = parse_forest(text)
        assert len(roots) == 2
        assert roots[0].tree_equal(docs[0].root)
