"""Shared fixtures: small canonical documents and collections."""

from __future__ import annotations

import pytest

from repro.datamodel import Collection, RepositoryKind, doc, elem


@pytest.fixture
def item_doc():
    """One small Item document (the paper's Citems shape)."""
    return doc(
        elem(
            "Item",
            elem("Code", "I-001"),
            elem("Name", "Abbey Road"),
            elem("Description", "a good classic record"),
            elem("Section", "CD"),
            elem("Release", "1969-09-26"),
        ),
        name="item-001.xml",
    )


def make_item(index: int, section: str, description: str = "plain stuff"):
    return doc(
        elem(
            "Item",
            elem("Code", f"I-{index:03d}"),
            elem("Name", f"Item number {index}"),
            elem("Description", description),
            elem("Section", section),
            elem("Release", f"200{index % 6}-01-15"),
        ),
        name=f"item-{index:03d}.xml",
    )


@pytest.fixture
def items_collection():
    """Twelve Item documents over three sections; every 4th is 'good'."""
    documents = [
        make_item(i, ["CD", "DVD", "Book"][i % 3],
                  "a good thing" if i % 4 == 0 else "plain stuff")
        for i in range(12)
    ]
    return Collection("Citems", documents)


def make_article(index: int):
    return doc(
        elem(
            "article",
            elem(
                "prolog",
                elem("title", f"Title {index}"),
                elem("authors", elem("author", elem("name", f"Author {index % 4}"))),
                elem("genre", ["research", "survey"][index % 2]),
            ),
            elem(
                "body",
                elem("abstract", f"We study topic {index} in a novel way"),
                elem("section", elem("p", f"Paragraph text {index}")),
            ),
            elem(
                "epilog",
                elem("references", elem("a_id", f"ref-{index}")),
                elem("country", ["BR", "US"][index % 2]),
            ),
        ),
        name=f"article-{index:03d}.xml",
    )


@pytest.fixture
def papers_collection():
    return Collection("Cpapers", [make_article(i) for i in range(8)])


def make_store(item_count: int = 9):
    items = elem(
        "Items",
        *[
            elem(
                "Item",
                elem("Code", f"I-{i:03d}"),
                elem("Name", f"item {i}"),
                elem("Description", "good value" if i % 2 == 0 else "ordinary"),
                elem("Section", ["CD", "DVD", "Book"][i % 3]),
            )
            for i in range(item_count)
        ],
    )
    root = elem(
        "Store",
        elem("Sections", elem("SectionEntry", elem("Code", "S1"), elem("Name", "Music"))),
        items,
        elem("Employees", elem("Employee", elem("Code", "E1"), elem("Name", "Ann Lee"))),
    )
    return doc(root, name="store.xml")


@pytest.fixture
def store_collection():
    return Collection(
        "Cstore", [make_store()], kind=RepositoryKind.SINGLE_DOCUMENT
    )
