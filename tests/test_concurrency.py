"""Concurrent execution: threads-vs-simulated determinism, engine
thread-safety under hammering, and the real-parallelism acceptance check."""

import threading

import pytest

from repro.bench import build_items_scenario, build_xbench_scenario
from repro.cluster import Cluster, DEGRADE, ParallelDispatcher, Site
from repro.engine.database import XMLEngine
from repro.partix import (
    CompositionSpec,
    FragmentationSchema,
    HorizontalFragment,
    Partix,
    SubQuery,
    annotated,
)
from repro.paths import eq, ne

TINY = 1 / 2000


class TestModeDeterminism:
    """``threads`` must answer byte-identically to ``simulated``."""

    def _assert_modes_agree(self, scenario):
        for query in scenario.queries:
            simulated = scenario.partix.execute(
                query.text, collection=scenario.collection_name
            )
            threaded = scenario.partix.execute(
                query.text,
                collection=scenario.collection_name,
                execution_mode="threads",
            )
            assert simulated.result_text == threaded.result_text, query.qid
            assert threaded.round.measured_wall_seconds > 0.0

    def test_items_horizontal_queries(self):
        self._assert_modes_agree(
            build_items_scenario(
                "small", paper_mb=100, fragment_count=4, scale=TINY
            )
        )

    def test_xbench_vertical_queries(self):
        self._assert_modes_agree(
            build_xbench_scenario(paper_mb=100, scale=TINY)
        )

    def test_invalid_mode_rejected(self):
        scenario = build_items_scenario(
            "small", paper_mb=100, fragment_count=2, scale=TINY
        )
        with pytest.raises(ValueError):
            scenario.partix.execute(
                scenario.queries[0].text,
                collection=scenario.collection_name,
                execution_mode="warp",
            )


class TestRealParallelismAcceptance:
    def test_threads_wall_below_sequential_on_four_sites(self):
        scenario = build_items_scenario(
            "small", paper_mb=100, fragment_count=4, scale=TINY
        )
        query = scenario.queries[7]  # Q8: touches every fragment
        result = scenario.partix.execute(
            query.text,
            collection=scenario.collection_name,
            execution_mode="threads",
        )
        assert len({e.site for e in result.round.executions}) >= 4
        assert result.measured_wall_seconds < result.sequential_seconds


class TestEngineThreadSafety:
    THREADS = 8
    QUERIES_PER_THREAD = 25
    DOCS = 12

    def _engine(self, cache: bool) -> XMLEngine:
        engine = XMLEngine(
            "stress", cache_parsed=cache, cache_size=8, use_indexes=False
        )
        for i in range(self.DOCS):
            engine.store_document(
                "c", f"<Item><Code>I{i}</Code></Item>", name=f"{i}.xml"
            )
        return engine

    def _hammer(self, engine: XMLEngine) -> list:
        errors = []

        def worker():
            try:
                for _ in range(self.QUERIES_PER_THREAD):
                    result = engine.execute('collection("c")/Item/Code')
                    assert result.documents_scanned == self.DOCS
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return errors

    def test_no_lost_stat_updates_without_cache(self):
        engine = self._engine(cache=False)
        assert self._hammer(engine) == []
        total = self.THREADS * self.QUERIES_PER_THREAD
        assert engine.stats.queries_executed == total
        assert engine.stats.documents_parsed == total * self.DOCS
        assert engine.stats.documents_scanned == total * self.DOCS
        assert engine.stats.cache_hits == 0

    def test_no_lost_stat_updates_with_lru_cache(self):
        engine = self._engine(cache=True)
        assert self._hammer(engine) == []
        total = self.THREADS * self.QUERIES_PER_THREAD
        assert engine.stats.queries_executed == total
        assert engine.stats.documents_scanned == total * self.DOCS
        # Every document access either re-parsed or hit the cache: the two
        # counters partition the accesses exactly (no lost updates).
        assert (
            engine.stats.documents_parsed + engine.stats.cache_hits
            == total * self.DOCS
        )
        # LRU integrity: never over capacity, keys all valid.
        assert len(engine._cache) <= 8
        valid = {("c", f"{i}.xml") for i in range(self.DOCS)}
        assert set(engine._cache) <= valid

    def test_one_site_hammered_through_partix_threads_mode(self):
        """≥8 concurrent lanes all funnel into a single engine."""
        engine = self._engine(cache=True)
        site = Site("solo", driver=None)
        site.driver.engine = engine  # type: ignore[attr-defined]
        cluster = Cluster([site])
        partix = Partix(cluster)
        plan = annotated(
            "c",
            [
                SubQuery(
                    fragment=f"F{i}",
                    site="solo",
                    collection="c",
                    query='collection("c")/Item/Code',
                )
                for i in range(8)
            ],
            CompositionSpec(kind="concat"),
        )
        result = partix.execute(
            'collection("c")/Item/Code', plan=plan, execution_mode="threads"
        )
        assert len(result.round.executions) == 8
        assert engine.stats.queries_executed == 8
        assert (
            engine.stats.documents_parsed + engine.stats.cache_hits
            == 8 * self.DOCS
        )


class TestDegradedExecutionThroughMiddleware:
    def test_degrade_policy_surfaces_notes_and_partial_answer(self):
        cluster = Cluster.with_sites(2)
        for i in range(4):
            cluster.site("site0").driver.store_document(
                "frag0", f"<Item><Code>A{i}</Code></Item>", name=f"a{i}.xml"
            )
        partix = Partix(
            cluster,
            dispatcher=ParallelDispatcher(
                retries=0, failure_policy=DEGRADE
            ),
        )
        plan = annotated(
            "frag0",
            [
                SubQuery(
                    fragment="F_ok",
                    site="site0",
                    collection="frag0",
                    query='collection("frag0")/Item/Code',
                ),
                SubQuery(
                    fragment="F_missing",
                    site="site1",
                    collection="nope",
                    query='collection("nope")/Item/Code',
                ),
            ],
            CompositionSpec(kind="concat"),
        )
        result = partix.execute(
            'collection("frag0")/Item/Code',
            plan=plan,
            execution_mode="threads",
        )
        assert result.result_text.count("<Code>") == 4
        assert any("degraded" in note for note in result.notes)
        assert [e.fragment for e in result.round.executions] == ["F_ok"]
