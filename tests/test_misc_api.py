"""Coverage for small public APIs not exercised elsewhere."""

import pytest

from repro.algebra import Selection, union_collections
from repro.datamodel import Collection, RepositoryKind, doc, elem
from repro.engine import EngineStats
from repro.errors import (
    CorrectnessViolation,
    PartixError,
    XMLSyntaxError,
    XQuerySyntaxError,
)
from repro.paths import eq, ne


class TestUnionCollections:
    def test_union_rebuilds_named_collection(self):
        source = Collection("c", [
            doc(elem("Item", elem("S", "a")), name="1.xml"),
            doc(elem("Item", elem("S", "b")), name="2.xml"),
        ])
        left = Collection("F1", Selection(eq("/Item/S", "a")).apply_collection(source))
        right = Collection("F2", Selection(ne("/Item/S", "a")).apply_collection(source))
        merged = union_collections("c", [left, right])
        assert merged.name == "c"
        assert sorted(merged.names()) == ["1.xml", "2.xml"]

    def test_union_of_none(self):
        merged = union_collections("c", [])
        assert len(merged) == 0
        assert merged.kind is RepositoryKind.MULTIPLE_DOCUMENTS


class TestEngineStats:
    def test_merge_and_reset(self):
        a = EngineStats(documents_parsed=3, bytes_parsed=100)
        b = EngineStats(documents_parsed=2, bytes_parsed=50, parse_seconds=0.5)
        merged = a.merged_with(b)
        assert merged.documents_parsed == 5
        assert merged.bytes_parsed == 150
        assert merged.parse_seconds == 0.5
        a.reset()
        assert a.documents_parsed == 0 and a.bytes_parsed == 0

    def test_diff(self):
        before = EngineStats(documents_parsed=2)
        after = EngineStats(documents_parsed=7, index_lookups=1)
        delta = after.diff(before)
        assert delta.documents_parsed == 5
        assert delta.index_lookups == 1


class TestErrorHierarchy:
    def test_everything_derives_from_partix_error(self):
        for exc_type in (XMLSyntaxError, XQuerySyntaxError, CorrectnessViolation):
            assert issubclass(exc_type, PartixError)

    def test_xml_error_location_formatting(self):
        error = XMLSyntaxError("bad", line=3, column=14)
        assert "line 3" in str(error) and "column 14" in str(error)

    def test_xquery_error_offset(self):
        error = XQuerySyntaxError("bad token", position=7)
        assert "offset 7" in str(error)

    def test_correctness_violation_fields(self):
        error = CorrectnessViolation("disjointness", "doc x overlaps")
        assert error.rule == "disjointness"
        assert "disjointness" in str(error)


class TestSerializerPretty:
    def test_custom_indent(self):
        from repro.xmltext import serialize_pretty

        text = serialize_pretty(doc(elem("a", elem("b", elem("c")))), indent="    ")
        assert "\n    <b>" in text
        assert "\n        <c/>" in text


class TestDescribeForms:
    def test_parallel_round_empty(self):
        from repro.cluster import ParallelRound

        round_ = ParallelRound()
        assert round_.parallel_seconds == 0.0
        assert round_.total_result_bytes == 0

    def test_scaled_size_label(self):
        from repro.bench import scaled_point

        assert "MB" in scaled_point(100).label
