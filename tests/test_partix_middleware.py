"""Unit tests for the Partix middleware facade and cluster accounting."""

import pytest

from repro.cluster import (
    Cluster,
    NetworkModel,
    ParallelRound,
    Site,
    SubQueryExecution,
)
from repro.engine.stats import QueryResult
from repro.errors import ClusterError
from repro.partix import (
    CompositionSpec,
    FragmentationSchema,
    HorizontalFragment,
    Partix,
    SubQuery,
    annotated,
)
from repro.paths import eq, ne


@pytest.fixture
def partix(items_collection):
    cluster = Cluster.with_sites(2)
    cluster.add(Site("central"))
    px = Partix(cluster)
    design = FragmentationSchema("Citems", [
        HorizontalFragment("F_cd", "Citems", predicate=eq("/Item/Section", "CD")),
        HorizontalFragment("F_rest", "Citems", predicate=ne("/Item/Section", "CD")),
    ], root_label="Item")
    px.publish(items_collection, design)
    px.publish_centralized(items_collection, "central")
    return px


class TestCluster:
    def test_with_sites(self):
        cluster = Cluster.with_sites(3)
        assert cluster.site_names() == ["site0", "site1", "site2"]
        assert len(cluster) == 3
        assert "site1" in cluster

    def test_duplicate_site_rejected(self):
        cluster = Cluster.with_sites(1)
        with pytest.raises(ClusterError):
            cluster.add(Site("site0"))

    def test_unknown_site(self):
        with pytest.raises(ClusterError):
            Cluster().site("nope")


class TestParallelRound:
    def _execution(self, site, elapsed, size=10):
        result = QueryResult(
            items=[], result_text="x" * size, result_bytes=size,
            elapsed_seconds=elapsed, parse_seconds=0, documents_parsed=0,
            bytes_parsed=0, documents_scanned=0, documents_pruned=0,
        )
        return SubQueryExecution(site, "F", "q", result)

    def test_parallel_is_slowest_site(self):
        round_ = ParallelRound([
            self._execution("s0", 0.5),
            self._execution("s1", 0.2),
        ])
        assert round_.parallel_seconds == 0.5
        assert round_.sequential_seconds == pytest.approx(0.7)

    def test_same_site_work_serializes(self):
        round_ = ParallelRound([
            self._execution("s0", 0.3),
            self._execution("s0", 0.4),
            self._execution("s1", 0.5),
        ])
        assert round_.parallel_seconds == pytest.approx(0.7)

    def test_result_sizes(self):
        round_ = ParallelRound([
            self._execution("s0", 0.1, 5),
            self._execution("s1", 0.1, 7),
        ])
        assert round_.result_sizes == [5, 7]
        assert round_.total_result_bytes == 12


class TestNetworkModel:
    def test_transfer_time(self):
        network = NetworkModel(bandwidth_bits_per_second=1e9, latency_seconds=0)
        assert network.transfer_seconds(125_000_000) == pytest.approx(1.0)

    def test_gather_serializes_results(self):
        network = NetworkModel(bandwidth_bits_per_second=1e9, latency_seconds=0)
        one = network.gather_seconds([125_000_000])
        two = network.gather_seconds([125_000_000, 125_000_000])
        assert two == pytest.approx(2 * one)

    def test_free_network(self):
        from repro.cluster import FREE_NETWORK

        assert FREE_NETWORK.gather_seconds([10 ** 9]) == 0.0

    def test_gather_charges_real_query_sizes(self):
        """Regression: dispatch cost uses actual sub-query text sizes,
        not a fixed 256-byte guess per sub-query."""
        network = NetworkModel(bandwidth_bits_per_second=1e9, latency_seconds=0)
        small = network.gather_seconds([0, 0], query_sizes=[100, 100])
        large = network.gather_seconds([0, 0], query_sizes=[10_000, 30_000])
        assert large == pytest.approx(200 * small)
        # Without explicit sizes the legacy fallback still applies.
        legacy = network.gather_seconds([0], query_bytes=256)
        assert legacy == pytest.approx(network.transfer_seconds(256) * 1)

    def test_middleware_transmission_uses_plan_query_sizes(self, partix):
        query = 'count(collection("Citems")/Item)'
        result = partix.execute(query)
        network = partix.network
        expected = network.gather_seconds(
            result.round.result_sizes,
            query_sizes=[
                len(sq.query.encode("utf-8")) for sq in result.plan.subqueries
            ],
        )
        assert result.transmission_seconds == pytest.approx(expected)
        # The fixed-guess estimate differs whenever the real sub-query
        # texts do not happen to be 256 bytes each.
        guessed = network.gather_seconds(result.round.result_sizes)
        sizes = [len(sq.query.encode()) for sq in result.plan.subqueries]
        if any(size != 256 for size in sizes):
            assert result.transmission_seconds != pytest.approx(guessed)


class TestExecution:
    def test_distributed_matches_centralized(self, partix):
        query = (
            'for $i in collection("Citems")/Item'
            ' where contains($i/Description, "good") return $i/Code/text()'
        )
        distributed = partix.execute(query)
        centralized = partix.execute_centralized(query, "central")
        assert sorted(distributed.result_text.split()) == sorted(
            centralized.result_text.split()
        )

    def test_aggregate_distributed(self, partix):
        query = 'count(collection("Citems")/Item)'
        assert partix.execute(query).result_text == "12"

    def test_timing_fields(self, partix):
        result = partix.execute('count(collection("Citems")/Item)')
        assert result.parallel_seconds > 0
        assert result.total_seconds > result.parallel_seconds
        assert result.sequential_seconds >= result.round.parallel_seconds

    def test_annotated_plan_execution(self, partix):
        plan = annotated(
            "Citems",
            [
                SubQuery("F_cd", "site0", "F_cd",
                         'count(collection("F_cd")/Item)'),
                SubQuery("F_rest", "site1", "F_rest",
                         'count(collection("F_rest")/Item)'),
            ],
            CompositionSpec(kind="aggregate", aggregate="count"),
        )
        result = partix.execute("count(...)", plan=plan)
        assert result.result_text == "12"

    def test_empty_plan_aggregate_identity(self, partix):
        result = partix.execute(
            'count(for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" and $i/Section = "DVD" return $i)'
        )
        assert result.result_text == "0"

    def test_notes_propagated(self, partix):
        result = partix.execute(
            'for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" return $i/Code/text()'
        )
        assert any("pruned" in note for note in result.notes)


class TestExplain:
    def test_explain_returns_plan_without_running(self, partix):
        plan = partix.explain(
            'for $i in collection("Citems")/Item'
            ' where $i/Section = "CD" return $i/Name/text()'
        )
        assert plan.fragment_names == ["F_cd"]
        # No query reached any site.
        for site in partix.cluster.sites():
            assert site.driver.engine.stats.queries_executed == 0
