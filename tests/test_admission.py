"""Admission-control and deadline tests, all on the fake clock.

The admission controller is pure slot accounting, so its tests need no
sockets and no event loop; the deadline tests inject
:class:`tests.fake_clock.FakeClock` into the dispatcher so every timing
assertion is exact — no real sleeps anywhere in this file.
"""

import pytest

from repro.cluster import DEGRADE, ParallelDispatcher
from repro.coordinate.admission import AdmissionController
from repro.errors import AdmissionRejected
from repro.partix.middleware import Partix
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)
from repro.cluster.site import Cluster
from tests.fake_clock import FakeClock
from tests.test_cluster_dispatch import (
    StubDriver,
    _cluster,
    _replicated_subquery,
    _subqueries,
)


class TestAdmissionController:
    def test_slots_fill_up_to_max_active(self):
        admission = AdmissionController(max_active=2, queue_limit=4)
        assert admission.try_start()
        assert admission.try_start()
        assert not admission.try_start()
        assert admission.active == 2

    def test_finish_frees_a_slot_when_nobody_waits(self):
        admission = AdmissionController(max_active=1, queue_limit=4)
        assert admission.try_start()
        assert admission.finish() is None
        assert admission.active == 0
        assert admission.try_start()

    def test_finish_transfers_the_slot_to_the_oldest_waiter(self):
        admission = AdmissionController(max_active=1, queue_limit=4)
        assert admission.try_start()
        admission.enqueue("first")
        admission.enqueue("second")
        # The slot moves, it is not freed: active stays 1 and the oldest
        # waiter is handed back for wake-up.
        assert admission.finish() == "first"
        assert admission.active == 1
        assert admission.queued == 1

    def test_full_queue_sheds_with_the_typed_error(self):
        admission = AdmissionController(max_active=1, queue_limit=1)
        assert admission.try_start()
        admission.enqueue("waiting")
        with pytest.raises(AdmissionRejected) as info:
            admission.enqueue("one too many")
        assert "retry later" in str(info.value)
        assert admission.snapshot()["shed"] == 1

    def test_zero_queue_limit_sheds_immediately(self):
        admission = AdmissionController(max_active=1, queue_limit=0)
        assert admission.try_start()
        with pytest.raises(AdmissionRejected):
            admission.enqueue("anyone")

    def test_abandon_removes_a_parked_waiter(self):
        admission = AdmissionController(max_active=1, queue_limit=4)
        assert admission.try_start()
        admission.enqueue("impatient")
        assert admission.abandon("impatient")
        assert admission.queued == 0
        # The freed queue spot is usable again.
        admission.enqueue("patient")
        assert admission.queued == 1

    def test_abandon_after_promotion_reports_false(self):
        admission = AdmissionController(max_active=1, queue_limit=4)
        assert admission.try_start()
        admission.enqueue("racer")
        assert admission.finish() == "racer"  # promoted
        # Too late to abandon: the caller now owns the slot.
        assert not admission.abandon("racer")
        assert admission.active == 1

    def test_snapshot_counts_admissions_and_peaks(self):
        admission = AdmissionController(max_active=2, queue_limit=2)
        admission.try_start()
        admission.try_start()
        admission.enqueue("w1")
        snapshot = admission.snapshot()
        assert snapshot["admitted"] == 2
        assert snapshot["peak_active"] == 2
        assert snapshot["peak_queued"] == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_active=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=-1)


class TestDispatchTimeoutOverride:
    """The per-dispatch ``subquery_timeout`` override behind per-query
    deadlines: narrower than the constructor's, or None to disable."""

    def test_override_narrows_the_constructor_budget(self):
        clock = FakeClock()
        drivers = [StubDriver(delay=0.05, sleep=clock.sleep)]
        dispatcher = ParallelDispatcher(
            subquery_timeout=10.0,
            retries=0,
            failure_policy=DEGRADE,
            sleep=clock.sleep,
            clock=clock,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers),
            _subqueries(1, site_for=lambda i: "site0"),
            subquery_timeout=0.01,
        )
        (failure,) = outcome.failures
        assert failure.timed_out
        assert "0.010s" in str(failure.error)

    def test_explicit_none_disables_the_budget(self):
        clock = FakeClock()
        drivers = [StubDriver(delay=60.0, sleep=clock.sleep)]
        dispatcher = ParallelDispatcher(
            subquery_timeout=0.01,
            retries=0,
            sleep=clock.sleep,
            clock=clock,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers),
            _subqueries(1, site_for=lambda i: "site0"),
            subquery_timeout=None,
        )
        assert outcome.complete

    def test_omitted_override_keeps_the_constructor_budget(self):
        clock = FakeClock()
        drivers = [StubDriver(delay=0.05, sleep=clock.sleep)]
        dispatcher = ParallelDispatcher(
            subquery_timeout=0.01,
            retries=0,
            failure_policy=DEGRADE,
            sleep=clock.sleep,
            clock=clock,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        (failure,) = outcome.failures
        assert failure.timed_out

    def test_total_wall_respects_the_override_budget(self):
        # The shared-budget bound (PR 6) holds for the per-query override
        # exactly as for the constructor value: attempts + backoffs draw
        # down one deadline.
        clock = FakeClock()
        drivers = [
            StubDriver(delay=0.06, fail_times=50, sleep=clock.sleep),
            StubDriver(delay=0.06, fail_times=50, sleep=clock.sleep),
        ]
        dispatcher = ParallelDispatcher(
            retries=8,
            subquery_timeout=30.0,
            backoff_seconds=0.005,
            backoff_multiplier=1.0,
            failure_policy=DEGRADE,
            sleep=clock.sleep,
            clock=clock,
        )
        started = clock()
        outcome = dispatcher.dispatch(
            _cluster(drivers),
            [_replicated_subquery(["site0", "site1"])],
            subquery_timeout=0.2,
        )
        (failure,) = outcome.failures
        assert failure.timed_out
        assert clock() - started <= 0.2 + 0.06


class _RecordingDispatcher(ParallelDispatcher):
    """Captures the subquery_timeout each dispatch was handed."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.seen_timeouts = []

    def dispatch(self, transport, subqueries, default_collection=None, **extra):
        if "subquery_timeout" in extra:
            self.seen_timeouts.append(extra["subquery_timeout"])
        else:
            self.seen_timeouts.append("<default>")
        return super().dispatch(
            transport, subqueries, default_collection=default_collection, **extra
        )


class TestMiddlewareDeadline:
    def _partix(self, dispatcher):
        collection = build_items_collection(12, kind="small", seed=11)
        cluster = Cluster.with_sites(2)
        partix = Partix(cluster, dispatcher=dispatcher)
        partix.publish(collection, items_horizontal_fragmentation(2))
        return partix, collection

    def test_deadline_seconds_overrides_the_dispatcher_default(self):
        dispatcher = _RecordingDispatcher(subquery_timeout=30.0)
        partix, collection = self._partix(dispatcher)
        partix.execute(
            'count(collection("%s")//Item)' % collection.name,
            collection=collection.name,
            deadline_seconds=0.75,
        )
        assert dispatcher.seen_timeouts == [0.75]

    def test_no_deadline_keeps_the_dispatcher_default(self):
        dispatcher = _RecordingDispatcher(subquery_timeout=30.0)
        partix, collection = self._partix(dispatcher)
        partix.execute(
            'count(collection("%s")//Item)' % collection.name,
            collection=collection.name,
        )
        assert dispatcher.seen_timeouts == ["<default>"]
