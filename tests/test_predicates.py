"""Unit tests for simple predicates: evaluation and symbolic analysis."""

import pytest

from repro.datamodel import doc, elem
from repro.errors import PredicateError
from repro.paths import (
    And,
    Comparison,
    Not,
    Or,
    TruePredicate,
    cmp,
    complements,
    contains,
    covers_all,
    definitely_disjoint,
    empty,
    eq,
    exists,
    func_cmp,
    ne,
    parse_path,
    starts_with,
)


@pytest.fixture
def cd_item():
    return doc(
        elem(
            "Item",
            elem("Code", "I-1"),
            elem("Section", "CD"),
            elem("Price", "25.50"),
            elem("Description", "a good classic record"),
            elem("PictureList", elem("Picture", elem("Name", "p"))),
        )
    )


class TestEvaluation:
    def test_eq_true_false(self, cd_item):
        assert eq("/Item/Section", "CD").evaluate(cd_item)
        assert not eq("/Item/Section", "DVD").evaluate(cd_item)

    def test_ne(self, cd_item):
        assert ne("/Item/Section", "DVD").evaluate(cd_item)
        assert not ne("/Item/Section", "CD").evaluate(cd_item)

    def test_numeric_comparison(self, cd_item):
        assert cmp("/Item/Price", ">", 20).evaluate(cd_item)
        assert cmp("/Item/Price", "<=", 25.5).evaluate(cd_item)
        assert not cmp("/Item/Price", "<", 10).evaluate(cd_item)

    def test_string_comparison_on_nonnumeric(self, cd_item):
        assert cmp("/Item/Code", ">=", "I-0").evaluate(cd_item)

    def test_missing_path_comparison_false(self, cd_item):
        assert not eq("/Item/Nope", "x").evaluate(cd_item)

    def test_contains(self, cd_item):
        assert contains("/Item/Description", "good").evaluate(cd_item)
        assert contains("//Description", "good").evaluate(cd_item)
        assert not contains("/Item/Description", "bad").evaluate(cd_item)

    def test_starts_with(self, cd_item):
        assert starts_with("/Item/Code", "I-").evaluate(cd_item)
        assert not starts_with("/Item/Code", "X").evaluate(cd_item)

    def test_exists_and_empty(self, cd_item):
        assert exists("/Item/PictureList").evaluate(cd_item)
        assert not empty("/Item/PictureList").evaluate(cd_item)
        assert empty("/Item/PricesHistory").evaluate(cd_item)

    def test_not_and_or(self, cd_item):
        predicate = Not(eq("/Item/Section", "DVD"))
        assert predicate.evaluate(cd_item)
        both = eq("/Item/Section", "CD") & contains("/Item/Description", "good")
        assert both.evaluate(cd_item)
        either = eq("/Item/Section", "DVD") | eq("/Item/Section", "CD")
        assert either.evaluate(cd_item)

    def test_function_comparisons(self, cd_item):
        assert func_cmp("count", "/Item/Picture", "=", 0).evaluate(cd_item)
        assert func_cmp("count", "//Picture", "=", 1).evaluate(cd_item)
        assert func_cmp("string-length", "/Item/Code", "=", 3).evaluate(cd_item)
        assert func_cmp("number", "/Item/Price", ">", 20).evaluate(cd_item)
        assert func_cmp("sum", "/Item/Price", "=", 25.5).evaluate(cd_item)

    def test_unknown_function_rejected(self):
        with pytest.raises(PredicateError):
            func_cmp("median", "/a", "=", 1)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            cmp("/a", "<>", 1)

    def test_negate(self, cd_item):
        assert exists("/Item/PictureList").negate().evaluate(cd_item) is False
        assert empty("/Item/PricesHistory").negate().evaluate(cd_item) is False
        inner = eq("/Item/Section", "CD")
        assert Not(inner).negate() is inner

    def test_true_predicate(self, cd_item):
        assert TruePredicate().evaluate(cd_item)

    def test_existential_semantics_multivalued(self):
        document = doc(elem("a", elem("x", "1"), elem("x", "2")))
        # Both hold simultaneously on a multi-valued path.
        assert eq("/a/x", "1").evaluate(document)
        assert eq("/a/x", "2").evaluate(document)


class TestComplements:
    def test_not_pair(self):
        p = eq("/Item/Section", "CD")
        assert complements(Not(p), p)
        assert complements(p, Not(p))

    def test_eq_ne_pair(self):
        assert complements(eq("/a/b", "x"), ne("/a/b", "x"))

    def test_order_complements(self):
        assert complements(cmp("/a/b", "<", 5), cmp("/a/b", ">=", 5))
        assert not complements(cmp("/a/b", "<", 5), cmp("/a/b", ">", 5))

    def test_exists_empty_pair(self):
        assert complements(exists("/a/b"), empty("/a/b"))

    def test_different_paths_not_complements(self):
        assert not complements(eq("/a/b", "x"), ne("/a/c", "x"))


class TestDefinitelyDisjoint:
    def test_different_equalities(self):
        assert definitely_disjoint(eq("/a/b", "x"), eq("/a/b", "y"))

    def test_same_equality_not_disjoint(self):
        assert not definitely_disjoint(eq("/a/b", "x"), eq("/a/b", "x"))

    def test_eq_vs_matching_ne(self):
        assert definitely_disjoint(eq("/a/b", "x"), ne("/a/b", "x"))
        assert not definitely_disjoint(eq("/a/b", "x"), ne("/a/b", "y"))

    def test_numeric_intervals(self):
        assert definitely_disjoint(cmp("/a/b", "<", 5), cmp("/a/b", ">", 5))
        assert definitely_disjoint(cmp("/a/b", "<", 5), cmp("/a/b", ">=", 5))
        assert not definitely_disjoint(cmp("/a/b", "<=", 5), cmp("/a/b", ">=", 5))
        assert definitely_disjoint(cmp("/a/b", "=", 1), cmp("/a/b", ">", 2))

    def test_requires_single_valued(self):
        p, q = eq("/a/b", "x"), eq("/a/b", "y")
        assert not definitely_disjoint(p, q, single_valued_paths=False)

    def test_different_paths_never_disjoint(self):
        assert not definitely_disjoint(eq("/a/b", "x"), eq("/a/c", "y"))

    def test_conjunction_distributes(self):
        combined = And((eq("/a/b", "x"), exists("/a/c")))
        assert definitely_disjoint(combined, eq("/a/b", "y"))
        assert definitely_disjoint(eq("/a/b", "y"), combined)

    def test_disjunction_requires_all_branches(self):
        either = Or((eq("/a/b", "x"), eq("/a/b", "y")))
        assert definitely_disjoint(either, eq("/a/b", "z"))
        assert not definitely_disjoint(either, eq("/a/b", "x"))

    def test_not_comparison_flips(self):
        assert definitely_disjoint(Not(eq("/a/b", "x")), eq("/a/b", "x"))
        assert definitely_disjoint(eq("/a/b", "x"), Not(eq("/a/b", "x")))

    def test_exists_vs_empty(self):
        assert definitely_disjoint(exists("/a/b"), empty("/a/b"))

    def test_contains_vs_not_contains(self):
        p = contains("/a/b", "good")
        assert definitely_disjoint(p, Not(p))

    def test_soundness_never_wrongly_true(self):
        document = doc(elem("a", elem("b", "x"), elem("c", "5")))
        candidates = [
            eq("/a/b", "x"),
            ne("/a/b", "x"),
            cmp("/a/c", ">", 3),
            cmp("/a/c", "<", 10),
            contains("/a/b", "x"),
            exists("/a/b"),
        ]
        for p in candidates:
            for q in candidates:
                if definitely_disjoint(p, q):
                    assert not (p.evaluate(document) and q.evaluate(document))


class TestCoversAll:
    def test_complement_pair_covers(self):
        assert covers_all([eq("/a/b", "x"), ne("/a/b", "x")])

    def test_true_predicate_covers(self):
        assert covers_all([TruePredicate()])

    def test_equality_family_with_residual(self):
        fragments = [
            eq("/a/b", "x"),
            eq("/a/b", "y"),
            And((ne("/a/b", "x"), ne("/a/b", "y"))),
        ]
        assert covers_all(fragments)

    def test_incomplete_family_not_covering(self):
        assert not covers_all([eq("/a/b", "x"), eq("/a/b", "y")])

    def test_residual_with_extra_conjunct_not_covering(self):
        fragments = [
            eq("/a/b", "x"),
            And((ne("/a/b", "x"), exists("/a/c"))),
        ]
        assert not covers_all(fragments)


class TestStringForms:
    def test_predicates_have_stable_str(self):
        assert str(eq("/a/b", "x")) == "/a/b='x'"
        assert str(ne("/a/b", "x")) == "/a/b≠'x'"
        assert "contains" in str(contains("/a/b", "w"))
        assert str(And((exists("/a"), empty("/b")))).count("∧") == 1

    def test_equality_and_hash_by_str(self):
        assert eq("/a/b", "x") == eq("/a/b", "x")
        assert hash(eq("/a/b", "x")) == hash(eq("/a/b", "x"))
        assert eq("/a/b", "x") != eq("/a/b", "y")
