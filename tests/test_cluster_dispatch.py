"""Unit tests for the concurrent sub-query dispatcher."""

import threading
import time

import pytest

from repro.cluster import (
    Cluster,
    DEGRADE,
    FAIL_FAST,
    InProcessTransport,
    ParallelDispatcher,
    Site,
    SiteHealth,
    Transport,
)
from repro.engine.stats import QueryResult
from repro.errors import DispatchError
from repro.partix.decomposer import SubQuery
from repro.partix.driver import PartixDriver
from repro.plan.spec import SubQueryTarget
from tests.fake_clock import FakeClock


def _query_result(text: str = "ok") -> QueryResult:
    return QueryResult(
        items=[],
        result_text=text,
        result_bytes=len(text.encode()),
        elapsed_seconds=0.001,
        parse_seconds=0.0,
        documents_parsed=0,
        bytes_parsed=0,
        documents_scanned=0,
        documents_pruned=0,
    )


class StubDriver(PartixDriver):
    """Scriptable driver: optional sleep, optional failures, call log."""

    def __init__(
        self,
        delay=0.0,
        fail_times=0,
        error=RuntimeError("boom"),
        sleep=time.sleep,
    ):
        self.delay = delay
        self.fail_times = fail_times
        self.error = error
        self.sleep = sleep
        self.calls = []
        self.active = 0
        self.max_active = 0
        self._lock = threading.Lock()

    def create_collection(self, name):
        pass

    def store_document(self, collection, document, name=None, origin=None):
        pass

    def document_count(self, collection):
        return 0

    def collection_bytes(self, collection):
        return 0

    def execute(
        self, query, default_collection=None, extra_predicate=None,
        use_indexes=None,
    ):
        with self._lock:
            self.calls.append(query)
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        try:
            if self.delay:
                self.sleep(self.delay)
            with self._lock:
                remaining = self.fail_times
                if remaining > 0:
                    self.fail_times -= 1
            if remaining > 0:
                raise self.error
            return _query_result(f"result:{query}")
        finally:
            with self._lock:
                self.active -= 1


def _cluster(drivers):
    return Cluster(
        Site(f"site{i}", driver=driver) for i, driver in enumerate(drivers)
    )


def _subqueries(count, site_for=None):
    site_for = site_for or (lambda i: f"site{i}")
    return [
        SubQuery(
            fragment=f"F{i}", site=site_for(i), collection="C", query=f"q{i}"
        )
        for i in range(count)
    ]


class TestDispatchBasics:
    def test_all_subqueries_run_and_stay_in_plan_order(self):
        drivers = [StubDriver() for _ in range(3)]
        outcome = ParallelDispatcher().dispatch(
            _cluster(drivers), _subqueries(3)
        )
        assert outcome.complete
        assert [e.fragment for e in outcome.round.executions] == [
            "F0",
            "F1",
            "F2",
        ]
        assert [
            e.result.result_text for e in outcome.executions_by_index
        ] == ["result:q0", "result:q1", "result:q2"]
        assert outcome.round.measured_wall_seconds > 0.0

    def test_sites_actually_overlap(self):
        drivers = [StubDriver(delay=0.15) for _ in range(4)]
        started = time.perf_counter()
        outcome = ParallelDispatcher().dispatch(
            _cluster(drivers), _subqueries(4)
        )
        wall = time.perf_counter() - started
        assert outcome.complete
        # Four 150ms sub-queries: sequential would be >= 600ms.
        assert wall < 0.45
        assert outcome.round.measured_wall_seconds < 0.45

    def test_same_site_subqueries_serialize_in_one_lane(self):
        driver = StubDriver(delay=0.02)
        outcome = ParallelDispatcher().dispatch(
            _cluster([driver]), _subqueries(4, site_for=lambda i: "site0")
        )
        assert outcome.complete
        assert driver.max_active == 1
        assert driver.calls == ["q0", "q1", "q2", "q3"]

    def test_max_workers_one_still_completes(self):
        drivers = [StubDriver() for _ in range(3)]
        outcome = ParallelDispatcher(max_workers=1).dispatch(
            _cluster(drivers), _subqueries(3)
        )
        assert outcome.complete
        assert len(outcome.round.executions) == 3

    def test_empty_round(self):
        outcome = ParallelDispatcher().dispatch(Cluster(), [])
        assert outcome.complete
        assert outcome.round.executions == []

    def test_hanging_prober_cannot_stall_a_lane_beyond_the_budget(self):
        """Regression: probes run on a background worker with a per-lane
        wait budget. A prober that blocks (a dead TCP site's connect
        timeout) must not stall the calling lane for its full duration —
        and its late success must still readmit the site."""
        health = SiteHealth(
            ejection_threshold=1,
            probe_interval_seconds=0.0,
            probe_wait_seconds=0.05,
        )
        health.record_failure("s0")
        release = threading.Event()

        def slow_prober():
            release.wait(5.0)
            return True

        started = time.monotonic()
        usable = health.check("s0", prober=slow_prober)
        waited = time.monotonic() - started
        assert not usable  # verdict not in within the budget
        assert waited < 1.0  # the lane did not wait out the hang
        assert health.is_ejected("s0")

        release.set()  # the probe finishes late, in the background
        deadline = time.monotonic() + 2.0
        while health.is_ejected("s0") and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not health.is_ejected("s0")  # late success readmitted it

    def test_concurrent_lanes_share_one_probe_in_flight(self):
        """While a probe is on the worker, other lanes return ejected
        immediately instead of piling up duplicate pings."""
        health = SiteHealth(
            ejection_threshold=1,
            probe_interval_seconds=0.0,
            probe_wait_seconds=0.02,
        )
        health.record_failure("s0")
        release = threading.Event()
        calls = []

        def slow_prober():
            calls.append(threading.get_ident())
            release.wait(2.0)
            return True

        assert not health.check("s0", prober=slow_prober)
        started = time.monotonic()
        assert not health.check("s0", prober=slow_prober)
        assert time.monotonic() - started < 0.5
        release.set()
        deadline = time.monotonic() + 2.0
        while health.is_ejected("s0") and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(calls) == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(failure_policy="shrug")
        with pytest.raises(ValueError):
            ParallelDispatcher(max_workers=0)
        with pytest.raises(ValueError):
            ParallelDispatcher(retries=-1)


class TestRetries:
    def test_transient_failure_retried_with_backoff(self):
        waits = []
        drivers = [StubDriver(fail_times=2)]
        dispatcher = ParallelDispatcher(
            retries=2,
            backoff_seconds=0.01,
            backoff_multiplier=2.0,
            sleep=waits.append,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        assert outcome.complete
        assert drivers[0].calls == ["q0", "q0", "q0"]
        assert waits == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_retries_exhausted_fails(self):
        drivers = [StubDriver(fail_times=3)]
        dispatcher = ParallelDispatcher(retries=1, sleep=lambda s: None)
        with pytest.raises(DispatchError) as info:
            dispatcher.dispatch(
                _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
            )
        (failure,) = info.value.failures
        assert failure.attempts == 2
        assert failure.fragment == "F0"
        assert "boom" in str(info.value)


class TestFailurePolicies:
    def test_fail_fast_cancels_rest_of_lane(self):
        driver = StubDriver(fail_times=1)
        dispatcher = ParallelDispatcher(retries=0, failure_policy=FAIL_FAST)
        with pytest.raises(DispatchError):
            dispatcher.dispatch(
                _cluster([driver]),
                _subqueries(3, site_for=lambda i: "site0"),
            )
        # q0 failed; q1/q2 never dispatched.
        assert driver.calls == ["q0"]

    def test_degrade_drops_failed_fragment_and_notes_it(self):
        failing = StubDriver(fail_times=5)
        healthy = StubDriver()
        dispatcher = ParallelDispatcher(
            retries=1, failure_policy=DEGRADE, sleep=lambda s: None
        )
        outcome = dispatcher.dispatch(
            _cluster([failing, healthy]), _subqueries(2)
        )
        assert not outcome.complete
        assert [e.fragment for e in outcome.round.executions] == ["F1"]
        assert outcome.executions_by_index[0] is None
        (failure,) = outcome.failures
        assert failure.attempts == 2
        assert any("degraded" in note and "F0" in note for note in outcome.notes)

    def test_unknown_site_raises_regardless_of_policy(self):
        from repro.errors import ClusterError

        dispatcher = ParallelDispatcher(failure_policy=DEGRADE)
        with pytest.raises(ClusterError):
            dispatcher.dispatch(Cluster(), _subqueries(1))


class TestBackoffJitter:
    def _waits_for(self, jitter, seed):
        waits = []
        drivers = [StubDriver(fail_times=3)]
        dispatcher = ParallelDispatcher(
            retries=3,
            backoff_seconds=0.1,
            backoff_multiplier=2.0,
            backoff_jitter=jitter,
            jitter_seed=seed,
            sleep=waits.append,
        )
        dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        return waits

    def test_jitter_defaults_off(self):
        assert ParallelDispatcher().backoff_jitter == 0.0

    def test_jitter_is_deterministic_for_a_seed(self):
        assert self._waits_for(0.5, seed=7) == self._waits_for(0.5, seed=7)

    def test_different_seeds_desynchronize(self):
        assert self._waits_for(0.5, seed=1) != self._waits_for(0.5, seed=2)

    def test_jittered_waits_stay_within_the_spread(self):
        waits = self._waits_for(0.25, seed=3)
        for attempt, wait in enumerate(waits):
            base = 0.1 * 2.0 ** attempt
            assert base * 0.75 <= wait <= base * 1.25
        # And the spread actually moved something off the exact schedule.
        assert waits != [0.1, 0.2, 0.4]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            ParallelDispatcher(backoff_jitter=-0.1)


class TestRetryDeadline:
    def test_backoff_never_overshoots_the_subquery_deadline(self):
        waits = []
        drivers = [StubDriver(fail_times=10)]
        dispatcher = ParallelDispatcher(
            retries=5,
            subquery_timeout=0.05,
            backoff_seconds=0.1,  # first backoff alone exceeds the budget
            failure_policy=DEGRADE,
            sleep=waits.append,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        (failure,) = outcome.failures
        assert failure.timed_out
        assert failure.attempts == 1  # no retry was taken
        assert "retry budget exhausted" in str(failure.error)
        assert "boom" in str(failure.error)  # the last real error survives
        assert waits == []  # the overshooting sleep never happened

    def test_retries_within_budget_still_happen(self):
        waits = []
        drivers = [StubDriver(fail_times=2)]
        dispatcher = ParallelDispatcher(
            retries=3,
            subquery_timeout=10.0,
            backoff_seconds=0.001,
            sleep=waits.append,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        assert outcome.complete
        assert len(waits) == 2


def _replicated_subquery(sites, fragment="F0", query="q0"):
    return SubQuery(
        fragment=fragment,
        site=sites[0],
        collection="C",
        query=query,
        replicas=tuple(
            SubQueryTarget(site=site, collection="C", query=query)
            for site in sites[1:]
        ),
    )


class TestReplicaFailover:
    def test_retry_rotates_to_the_next_replica(self):
        drivers = [StubDriver(fail_times=10), StubDriver()]
        dispatcher = ParallelDispatcher(retries=1, sleep=lambda s: None)
        outcome = dispatcher.dispatch(
            _cluster(drivers), [_replicated_subquery(["site0", "site1"])]
        )
        assert outcome.complete
        (execution,) = outcome.round.executions
        assert execution.site == "site1"
        assert execution.failover_count == 1
        assert execution.attempt_sites == ["site0", "site1"]
        assert drivers[0].calls == ["q0"]  # dead primary tried exactly once
        assert drivers[1].calls == ["q0"]
        assert any("failover" in note for note in outcome.notes)

    def test_rotation_walks_replicas_in_declared_order(self):
        drivers = [
            StubDriver(fail_times=10),
            StubDriver(fail_times=10),
            StubDriver(),
        ]
        dispatcher = ParallelDispatcher(retries=2, sleep=lambda s: None)
        outcome = dispatcher.dispatch(
            _cluster(drivers),
            [_replicated_subquery(["site0", "site1", "site2"])],
        )
        assert outcome.complete
        (execution,) = outcome.round.executions
        assert execution.attempt_sites == ["site0", "site1", "site2"]
        assert execution.failover_count == 2
        assert execution.site == "site2"

    def test_all_replicas_dead_fails_and_names_every_site_tried(self):
        drivers = [StubDriver(fail_times=10), StubDriver(fail_times=10)]
        dispatcher = ParallelDispatcher(retries=1, sleep=lambda s: None)
        with pytest.raises(DispatchError) as info:
            dispatcher.dispatch(
                _cluster(drivers), [_replicated_subquery(["site0", "site1"])]
            )
        (failure,) = info.value.failures
        assert failure.attempts == 2
        assert failure.attempt_sites == ["site0", "site1"]
        assert "tried sites site0, site1" in failure.describe()

    def test_rotation_skips_an_ejected_replica(self):
        health = SiteHealth(ejection_threshold=3, clock=lambda: 0.0)
        for _ in range(3):
            health.record_failure("site1")
        assert health.is_ejected("site1")
        drivers = [StubDriver(fail_times=10), StubDriver(), StubDriver()]
        dispatcher = ParallelDispatcher(
            retries=1, site_health=health, sleep=lambda s: None
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers),
            [_replicated_subquery(["site0", "site1", "site2"])],
        )
        assert outcome.complete
        (execution,) = outcome.round.executions
        assert execution.site == "site2"
        assert execution.attempt_sites == ["site0", "site2"]
        assert drivers[1].calls == []  # the ejected replica was never hit

    def test_due_probe_readmits_an_ejected_replica(self):
        now = [0.0]
        health = SiteHealth(
            ejection_threshold=3,
            probe_interval_seconds=5.0,
            clock=lambda: now[0],
        )
        for _ in range(3):
            health.record_failure("site1")
        now[0] = 6.0  # probe timer expired; InProcessTransport PING is up
        drivers = [StubDriver(fail_times=10), StubDriver()]
        dispatcher = ParallelDispatcher(
            retries=1, site_health=health, sleep=lambda s: None
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), [_replicated_subquery(["site0", "site1"])]
        )
        assert outcome.complete
        (execution,) = outcome.round.executions
        assert execution.site == "site1"
        assert not health.is_ejected("site1")

    def test_successful_primary_reports_no_failover(self):
        drivers = [StubDriver(), StubDriver()]
        outcome = ParallelDispatcher().dispatch(
            _cluster(drivers), [_replicated_subquery(["site0", "site1"])]
        )
        (execution,) = outcome.round.executions
        assert execution.failover_count == 0
        assert execution.attempt_sites == ["site0"]
        assert drivers[1].calls == []


class TestSiteHealthTracker:
    def test_ejects_after_consecutive_failures(self):
        health = SiteHealth(ejection_threshold=2, clock=lambda: 0.0)
        assert not health.record_failure("s0")
        assert health.record_failure("s0")  # crossing returns True
        assert health.is_ejected("s0")
        assert health.ejected_sites() == ["s0"]

    def test_success_resets_the_streak(self):
        health = SiteHealth(ejection_threshold=2)
        health.record_failure("s0")
        health.record_success("s0")
        health.record_failure("s0")
        assert not health.is_ejected("s0")

    def test_probe_gates_readmission_on_the_timer_and_the_prober(self):
        now = [0.0]
        health = SiteHealth(
            ejection_threshold=1,
            probe_interval_seconds=5.0,
            clock=lambda: now[0],
        )
        health.record_failure("s0")
        assert not health.check("s0", prober=lambda: True)  # timer not due
        now[0] = 5.0
        assert not health.check("s0", prober=lambda: False)  # probe fails
        now[0] = 9.0
        assert not health.probe_due("s0")  # failed probe re-armed the timer
        now[0] = 10.0
        assert health.check("s0", prober=lambda: True)  # probe readmits
        assert not health.is_ejected("s0")

    def test_healthy_site_checks_true_without_probing(self):
        health = SiteHealth()
        probed = []
        assert health.check("s0", prober=lambda: probed.append(True))
        assert probed == []

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SiteHealth(ejection_threshold=0)
        with pytest.raises(ValueError):
            SiteHealth(probe_interval_seconds=-1.0)


class _BudgetRecorder(Transport):
    """Wraps another transport and records the timeout of each execute."""

    def __init__(self, inner):
        self.inner = inner
        self.timeouts = []

    def resolve(self, site_names):
        self.inner.resolve(site_names)

    def ping(self, site):
        return self.inner.ping(site)

    def execute(self, subquery, default_collection=None, timeout=None, on_chunk=None):
        self.timeouts.append(timeout)
        return self.inner.execute(
            subquery,
            default_collection=default_collection,
            timeout=timeout,
            on_chunk=on_chunk,
        )


class TestRetryBudget:
    def test_each_attempt_receives_only_the_remaining_budget(self):
        clock = FakeClock()
        drivers = [
            StubDriver(delay=0.03, fail_times=1, sleep=clock.sleep),
            StubDriver(sleep=clock.sleep),
        ]
        recorder = _BudgetRecorder(InProcessTransport(_cluster(drivers)))
        dispatcher = ParallelDispatcher(
            retries=2,
            subquery_timeout=1.0,
            backoff_seconds=0.001,
            sleep=clock.sleep,
            clock=clock,
        )
        outcome = dispatcher.dispatch(
            recorder, [_replicated_subquery(["site0", "site1"])]
        )
        assert outcome.complete
        assert len(recorder.timeouts) == 2
        # The first attempt gets the whole budget; the retry exactly what
        # the failed attempt (0.03) and the backoff (0.001) left over.
        assert recorder.timeouts[0] == pytest.approx(1.0)
        assert recorder.timeouts[1] == pytest.approx(1.0 - 0.03 - 0.001)

    def test_total_wall_stays_within_the_budget_plus_slack(self):
        # Dead primary that burns 60ms per attempt, dead replica too: the
        # old code gave every attempt a fresh full timeout (~(retries+1)×
        # overshoot); the shared deadline keeps the whole envelope near
        # subquery_timeout + one attempt's overshoot. On the fake clock
        # the bound is exact, not slack-padded.
        clock = FakeClock()
        drivers = [
            StubDriver(delay=0.06, fail_times=50, sleep=clock.sleep),
            StubDriver(delay=0.06, fail_times=50, sleep=clock.sleep),
        ]
        dispatcher = ParallelDispatcher(
            retries=8,
            subquery_timeout=0.2,
            backoff_seconds=0.005,
            backoff_multiplier=1.0,
            failure_policy=DEGRADE,
            sleep=clock.sleep,
            clock=clock,
        )
        started = clock()
        outcome = dispatcher.dispatch(
            _cluster(drivers), [_replicated_subquery(["site0", "site1"])]
        )
        wall = clock() - started
        (failure,) = outcome.failures
        assert failure.timed_out
        # Budget 0.2s + at most one in-flight attempt (0.06s), exactly.
        assert wall <= 0.2 + 0.06


class TestJitterPerTarget:
    def test_jitter_schedule_differs_across_replica_targets(self):
        dispatcher = ParallelDispatcher(backoff_jitter=0.5, jitter_seed=7)
        subquery = _replicated_subquery(["site0", "site1"])
        waits_primary = [
            dispatcher._backoff_wait(subquery, attempt, "site0")
            for attempt in range(3)
        ]
        waits_replica = [
            dispatcher._backoff_wait(subquery, attempt, "site1")
            for attempt in range(3)
        ]
        assert waits_primary != waits_replica

    def test_jitter_defaults_to_the_primary_site(self):
        dispatcher = ParallelDispatcher(backoff_jitter=0.5, jitter_seed=7)
        subquery = _replicated_subquery(["site0", "site1"])
        assert dispatcher._backoff_wait(subquery, 1) == dispatcher._backoff_wait(
            subquery, 1, "site0"
        )


class TestTimeouts:
    def test_overbudget_subquery_counts_as_timeout(self):
        clock = FakeClock()
        drivers = [StubDriver(delay=0.05, sleep=clock.sleep)]
        dispatcher = ParallelDispatcher(
            subquery_timeout=0.005,
            retries=0,
            failure_policy=DEGRADE,
            sleep=clock.sleep,
            clock=clock,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        (failure,) = outcome.failures
        assert failure.timed_out
        assert isinstance(failure.error, TimeoutError)
        assert any("timed out" in note for note in outcome.notes)

    def test_fast_subquery_passes_timeout(self):
        drivers = [StubDriver()]
        dispatcher = ParallelDispatcher(subquery_timeout=5.0)
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        assert outcome.complete
