"""Unit tests for the concurrent sub-query dispatcher."""

import threading
import time

import pytest

from repro.cluster import (
    Cluster,
    DEGRADE,
    FAIL_FAST,
    ParallelDispatcher,
    Site,
)
from repro.engine.stats import QueryResult
from repro.errors import DispatchError
from repro.partix.decomposer import SubQuery
from repro.partix.driver import PartixDriver


def _query_result(text: str = "ok") -> QueryResult:
    return QueryResult(
        items=[],
        result_text=text,
        result_bytes=len(text.encode()),
        elapsed_seconds=0.001,
        parse_seconds=0.0,
        documents_parsed=0,
        bytes_parsed=0,
        documents_scanned=0,
        documents_pruned=0,
    )


class StubDriver(PartixDriver):
    """Scriptable driver: optional sleep, optional failures, call log."""

    def __init__(self, delay=0.0, fail_times=0, error=RuntimeError("boom")):
        self.delay = delay
        self.fail_times = fail_times
        self.error = error
        self.calls = []
        self.active = 0
        self.max_active = 0
        self._lock = threading.Lock()

    def create_collection(self, name):
        pass

    def store_document(self, collection, document, name=None, origin=None):
        pass

    def document_count(self, collection):
        return 0

    def collection_bytes(self, collection):
        return 0

    def execute(self, query, default_collection=None, extra_predicate=None):
        with self._lock:
            self.calls.append(query)
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        try:
            if self.delay:
                time.sleep(self.delay)
            with self._lock:
                remaining = self.fail_times
                if remaining > 0:
                    self.fail_times -= 1
            if remaining > 0:
                raise self.error
            return _query_result(f"result:{query}")
        finally:
            with self._lock:
                self.active -= 1


def _cluster(drivers):
    return Cluster(
        Site(f"site{i}", driver=driver) for i, driver in enumerate(drivers)
    )


def _subqueries(count, site_for=None):
    site_for = site_for or (lambda i: f"site{i}")
    return [
        SubQuery(
            fragment=f"F{i}", site=site_for(i), collection="C", query=f"q{i}"
        )
        for i in range(count)
    ]


class TestDispatchBasics:
    def test_all_subqueries_run_and_stay_in_plan_order(self):
        drivers = [StubDriver() for _ in range(3)]
        outcome = ParallelDispatcher().dispatch(
            _cluster(drivers), _subqueries(3)
        )
        assert outcome.complete
        assert [e.fragment for e in outcome.round.executions] == [
            "F0",
            "F1",
            "F2",
        ]
        assert [
            e.result.result_text for e in outcome.executions_by_index
        ] == ["result:q0", "result:q1", "result:q2"]
        assert outcome.round.measured_wall_seconds > 0.0

    def test_sites_actually_overlap(self):
        drivers = [StubDriver(delay=0.15) for _ in range(4)]
        started = time.perf_counter()
        outcome = ParallelDispatcher().dispatch(
            _cluster(drivers), _subqueries(4)
        )
        wall = time.perf_counter() - started
        assert outcome.complete
        # Four 150ms sub-queries: sequential would be >= 600ms.
        assert wall < 0.45
        assert outcome.round.measured_wall_seconds < 0.45

    def test_same_site_subqueries_serialize_in_one_lane(self):
        driver = StubDriver(delay=0.02)
        outcome = ParallelDispatcher().dispatch(
            _cluster([driver]), _subqueries(4, site_for=lambda i: "site0")
        )
        assert outcome.complete
        assert driver.max_active == 1
        assert driver.calls == ["q0", "q1", "q2", "q3"]

    def test_max_workers_one_still_completes(self):
        drivers = [StubDriver() for _ in range(3)]
        outcome = ParallelDispatcher(max_workers=1).dispatch(
            _cluster(drivers), _subqueries(3)
        )
        assert outcome.complete
        assert len(outcome.round.executions) == 3

    def test_empty_round(self):
        outcome = ParallelDispatcher().dispatch(Cluster(), [])
        assert outcome.complete
        assert outcome.round.executions == []

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(failure_policy="shrug")
        with pytest.raises(ValueError):
            ParallelDispatcher(max_workers=0)
        with pytest.raises(ValueError):
            ParallelDispatcher(retries=-1)


class TestRetries:
    def test_transient_failure_retried_with_backoff(self):
        waits = []
        drivers = [StubDriver(fail_times=2)]
        dispatcher = ParallelDispatcher(
            retries=2,
            backoff_seconds=0.01,
            backoff_multiplier=2.0,
            sleep=waits.append,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        assert outcome.complete
        assert drivers[0].calls == ["q0", "q0", "q0"]
        assert waits == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_retries_exhausted_fails(self):
        drivers = [StubDriver(fail_times=3)]
        dispatcher = ParallelDispatcher(retries=1, sleep=lambda s: None)
        with pytest.raises(DispatchError) as info:
            dispatcher.dispatch(
                _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
            )
        (failure,) = info.value.failures
        assert failure.attempts == 2
        assert failure.fragment == "F0"
        assert "boom" in str(info.value)


class TestFailurePolicies:
    def test_fail_fast_cancels_rest_of_lane(self):
        driver = StubDriver(fail_times=1)
        dispatcher = ParallelDispatcher(retries=0, failure_policy=FAIL_FAST)
        with pytest.raises(DispatchError):
            dispatcher.dispatch(
                _cluster([driver]),
                _subqueries(3, site_for=lambda i: "site0"),
            )
        # q0 failed; q1/q2 never dispatched.
        assert driver.calls == ["q0"]

    def test_degrade_drops_failed_fragment_and_notes_it(self):
        failing = StubDriver(fail_times=5)
        healthy = StubDriver()
        dispatcher = ParallelDispatcher(
            retries=1, failure_policy=DEGRADE, sleep=lambda s: None
        )
        outcome = dispatcher.dispatch(
            _cluster([failing, healthy]), _subqueries(2)
        )
        assert not outcome.complete
        assert [e.fragment for e in outcome.round.executions] == ["F1"]
        assert outcome.executions_by_index[0] is None
        (failure,) = outcome.failures
        assert failure.attempts == 2
        assert any("degraded" in note and "F0" in note for note in outcome.notes)

    def test_unknown_site_raises_regardless_of_policy(self):
        from repro.errors import ClusterError

        dispatcher = ParallelDispatcher(failure_policy=DEGRADE)
        with pytest.raises(ClusterError):
            dispatcher.dispatch(Cluster(), _subqueries(1))


class TestBackoffJitter:
    def _waits_for(self, jitter, seed):
        waits = []
        drivers = [StubDriver(fail_times=3)]
        dispatcher = ParallelDispatcher(
            retries=3,
            backoff_seconds=0.1,
            backoff_multiplier=2.0,
            backoff_jitter=jitter,
            jitter_seed=seed,
            sleep=waits.append,
        )
        dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        return waits

    def test_jitter_defaults_off(self):
        assert ParallelDispatcher().backoff_jitter == 0.0

    def test_jitter_is_deterministic_for_a_seed(self):
        assert self._waits_for(0.5, seed=7) == self._waits_for(0.5, seed=7)

    def test_different_seeds_desynchronize(self):
        assert self._waits_for(0.5, seed=1) != self._waits_for(0.5, seed=2)

    def test_jittered_waits_stay_within_the_spread(self):
        waits = self._waits_for(0.25, seed=3)
        for attempt, wait in enumerate(waits):
            base = 0.1 * 2.0 ** attempt
            assert base * 0.75 <= wait <= base * 1.25
        # And the spread actually moved something off the exact schedule.
        assert waits != [0.1, 0.2, 0.4]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            ParallelDispatcher(backoff_jitter=-0.1)


class TestRetryDeadline:
    def test_backoff_never_overshoots_the_subquery_deadline(self):
        waits = []
        drivers = [StubDriver(fail_times=10)]
        dispatcher = ParallelDispatcher(
            retries=5,
            subquery_timeout=0.05,
            backoff_seconds=0.1,  # first backoff alone exceeds the budget
            failure_policy=DEGRADE,
            sleep=waits.append,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        (failure,) = outcome.failures
        assert failure.timed_out
        assert failure.attempts == 1  # no retry was taken
        assert "retry budget exhausted" in str(failure.error)
        assert "boom" in str(failure.error)  # the last real error survives
        assert waits == []  # the overshooting sleep never happened

    def test_retries_within_budget_still_happen(self):
        waits = []
        drivers = [StubDriver(fail_times=2)]
        dispatcher = ParallelDispatcher(
            retries=3,
            subquery_timeout=10.0,
            backoff_seconds=0.001,
            sleep=waits.append,
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        assert outcome.complete
        assert len(waits) == 2


class TestTimeouts:
    def test_overbudget_subquery_counts_as_timeout(self):
        drivers = [StubDriver(delay=0.05)]
        dispatcher = ParallelDispatcher(
            subquery_timeout=0.005, retries=0, failure_policy=DEGRADE
        )
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        (failure,) = outcome.failures
        assert failure.timed_out
        assert isinstance(failure.error, TimeoutError)
        assert any("timed out" in note for note in outcome.notes)

    def test_fast_subquery_passes_timeout(self):
        drivers = [StubDriver()]
        dispatcher = ParallelDispatcher(subquery_timeout=5.0)
        outcome = dispatcher.dispatch(
            _cluster(drivers), _subqueries(1, site_for=lambda i: "site0")
        )
        assert outcome.complete
