"""Unit tests for workload generators and query sets."""

import random

import pytest

from repro.partix import verify_fragmentation
from repro.workloads import (
    SECTIONS,
    BenchQuery,
    Choice,
    Counter,
    DateRange,
    DecimalRange,
    IntRange,
    NodeTemplate,
    ToXgene,
    Words,
    build_items_collection,
    build_store_collection,
    build_xbench_collection,
    child,
    items_horizontal_fragmentation,
    items_queries,
    queries_by_id,
    store_hybrid_fragmentation,
    store_queries,
    virtual_store_schema,
    xbench_queries,
    xbench_schema,
    xbench_vertical_fragmentation,
)
from repro.xmltext import serialized_size


class TestValueGenerators:
    def setup_method(self):
        self.rng = random.Random(1)

    def test_counter_formats_and_increments(self):
        counter = Counter("I-{:03d}")
        assert counter.generate(self.rng) == "I-001"
        assert counter.generate(self.rng) == "I-002"
        counter.reset()
        assert counter.generate(self.rng) == "I-001"

    def test_words_within_bounds(self):
        generator = Words(3, 6)
        for _ in range(20):
            assert 3 <= len(generator.generate(self.rng).split()) <= 6

    def test_words_injection_probability(self):
        always = Words(5, 5, inject=("zzz", 1.0))
        never = Words(5, 5, inject=("zzz", 0.0))
        assert "zzz" in always.generate(self.rng)
        assert "zzz" not in never.generate(self.rng)

    def test_int_and_decimal_ranges(self):
        assert 1 <= int(IntRange(1, 9).generate(self.rng)) <= 9
        value = float(DecimalRange(0.5, 1.5, digits=2).generate(self.rng))
        assert 0.5 <= value <= 1.5

    def test_date_range_format(self):
        date = DateRange(2001, 2002).generate(self.rng)
        assert date[:2] == "20" and date[4] == "-" and len(date) == 10

    def test_weighted_choice_skews(self):
        choice = Choice(("a", "b"), weights=(0.99, 0.01))
        samples = [choice.generate(self.rng) for _ in range(200)]
        assert samples.count("a") > 150


class TestTemplates:
    def test_instantiation_cardinality(self):
        template = NodeTemplate(
            "a", children=[child(NodeTemplate("b", value=Counter()), 2, 4)]
        )
        rng = random.Random(2)
        node = template.instantiate(rng)
        assert 2 <= len(node.element_children()) <= 4

    def test_attributes_generated(self):
        template = NodeTemplate("a", attributes={"id": Counter()})
        node = template.instantiate(random.Random(0))
        assert node.get_attribute("id") == "1"

    def test_generation_is_seeded(self):
        template = NodeTemplate("a", value=Words(5, 9))
        one = ToXgene(seed=5).generate_document(template)
        two = ToXgene(seed=5).generate_document(template)
        assert one.tree_equal(two)

    def test_different_seeds_differ(self):
        template = NodeTemplate("a", value=Words(10, 20))
        one = ToXgene(seed=1).generate_document(template)
        two = ToXgene(seed=2).generate_document(template)
        assert not one.tree_equal(two)


class TestVirtualStore:
    def test_small_items_near_2kb(self):
        collection = build_items_collection(30, kind="small", seed=1)
        average = sum(serialized_size(d) for d in collection) / 30
        assert 1_000 <= average <= 3_500

    def test_large_items_near_80kb(self):
        collection = build_items_collection(3, kind="large", seed=1)
        average = sum(serialized_size(d) for d in collection) / 3
        assert 50_000 <= average <= 120_000

    def test_small_items_have_no_price_history(self):
        collection = build_items_collection(5, kind="small")
        for document in collection:
            assert document.root.first_child("PricesHistory") is None
            assert document.root.first_child("PictureList") is None

    def test_items_validate_against_schema(self):
        schema = virtual_store_schema()
        collection = build_items_collection(5, kind="large", seed=3)
        for document in collection:
            assert schema.satisfies(document.root, "Item")

    def test_store_validates_against_schema(self):
        schema = virtual_store_schema()
        collection = build_store_collection(10, seed=3)
        assert schema.satisfies(collection.documents()[0].root, "Store")

    def test_section_distribution_nonuniform(self):
        collection = build_items_collection(300, seed=5)
        counts = {}
        for document in collection:
            section = document.root.first_child("Section").text_value()
            counts[section] = counts.get(section, 0) + 1
        assert set(counts) <= set(SECTIONS)
        assert max(counts.values()) > 2 * min(counts.values())

    @pytest.mark.parametrize("fragments", [2, 4, 8])
    def test_horizontal_designs_are_correct(self, fragments):
        collection = build_items_collection(60, seed=9)
        design = items_horizontal_fragmentation(fragments)
        report = verify_fragmentation(design, collection)
        assert report.ok, report.violations

    def test_invalid_fragment_count_rejected(self):
        with pytest.raises(ValueError):
            items_horizontal_fragmentation(3)

    def test_hybrid_design_is_correct(self):
        collection = build_store_collection(30, seed=9)
        design = store_hybrid_fragmentation()
        report = verify_fragmentation(design, collection)
        assert report.ok, report.violations


class TestXBench:
    def test_article_size_targets(self):
        collection = build_xbench_collection(3, doc_bytes=40_000, seed=1)
        for document in collection:
            assert 20_000 <= serialized_size(document) <= 80_000

    def test_articles_validate(self):
        schema = xbench_schema()
        collection = build_xbench_collection(3, doc_bytes=10_000)
        for document in collection:
            assert schema.satisfies(document.root, "article")

    def test_body_dominates_size(self):
        from repro.paths import evaluate_path

        collection = build_xbench_collection(1, doc_bytes=50_000)
        document = collection.documents()[0]
        body = serialized_size(evaluate_path("/article/body", document)[0])
        assert body > 0.8 * serialized_size(document)

    def test_vertical_design_is_correct(self):
        collection = build_xbench_collection(4, doc_bytes=5_000)
        report = verify_fragmentation(
            xbench_vertical_fragmentation(), collection
        )
        assert report.ok, report.violations


class TestQuerySets:
    def test_items_set_has_eight(self):
        queries = items_queries()
        assert [q.qid for q in queries] == [f"Q{i}" for i in range(1, 9)]

    def test_xbench_set_has_ten_with_multi_fragment_flags(self):
        queries = xbench_queries()
        assert len(queries) == 10
        multi = {q.qid for q in queries if q.has("multi-fragment")}
        assert {"Q4", "Q7", "Q8", "Q9"} <= multi

    def test_store_set_has_eleven(self):
        queries = store_queries()
        assert len(queries) == 11
        pruning = {q.qid for q in queries if q.has("prunes-items")}
        assert pruning == {"Q9", "Q10"}

    def test_queries_by_id(self):
        mapping = queries_by_id(items_queries())
        assert mapping["Q8"].has("aggregation")

    def test_traits_api(self):
        query = BenchQuery("Q", "text", "d", frozenset({"x"}))
        assert query.has("x") and not query.has("y")

    def test_all_query_texts_parse(self):
        from repro.xquery import parse_query

        for query in items_queries() + xbench_queries() + store_queries():
            parse_query(query.text)  # must not raise
