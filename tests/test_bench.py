"""Unit tests for the benchmark harness (scaling, scenarios, reporting)."""

import pytest

from repro.bench import (
    CENTRAL_SITE,
    articles_count_for,
    build_items_scenario,
    build_store_scenario,
    build_xbench_scenario,
    compare_execution_modes,
    format_mode_comparison,
    format_scenario_table,
    format_speedup_series,
    items_count_for,
    scaled_grid,
    scaled_point,
    store_items_for,
    summarize_wins,
)
from repro.partix import FragMode

TINY = 1 / 2000  # keep scenario tests fast


class TestScaling:
    def test_scaled_grid_proportions(self):
        grid = scaled_grid(scale=1 / 100)
        assert [point.paper_mb for point in grid] == [5, 20, 100, 250]
        assert grid[0].target_bytes == 50_000
        assert grid[-1].target_bytes == 2_500_000

    def test_large_grid_includes_500(self):
        grid = scaled_grid(large=True)
        assert grid[-1].paper_mb == 500

    def test_scaled_point_label(self):
        point = scaled_point(250, scale=1 / 100)
        assert "250MB" in point.label

    def test_document_counts(self):
        assert items_count_for(1_750_000, "small") == 1000
        assert items_count_for(800_000, "large") == 10
        assert articles_count_for(1_000_000) == 10
        assert store_items_for(175_000) == 100

    def test_minimum_counts(self):
        assert items_count_for(100, "small") >= 4
        assert articles_count_for(100) >= 2
        assert store_items_for(100) >= 8


class TestScenarios:
    @pytest.fixture(scope="class")
    def items_result(self):
        scenario = build_items_scenario(
            "small", paper_mb=5, fragment_count=2, scale=TINY
        )
        return scenario.run(repetitions=1)

    def test_scenario_runs_all_queries(self, items_result):
        assert [run.qid for run in items_result.runs] == [
            f"Q{i}" for i in range(1, 9)
        ]

    def test_results_match_everywhere(self, items_result):
        assert all(run.results_match for run in items_result.runs)

    def test_run_by_id(self, items_result):
        assert items_result.run_by_id("Q8").qid == "Q8"
        with pytest.raises(KeyError):
            items_result.run_by_id("Q99")

    def test_speedup_properties(self, items_result):
        run = items_result.run_by_id("Q8")
        assert run.speedup > 0
        assert run.fragmented_total_seconds >= run.fragmented_seconds

    def test_xbench_scenario_builds(self):
        scenario = build_xbench_scenario(paper_mb=5, scale=TINY)
        assert scenario.fragment_count == 3
        result = scenario.run(repetitions=1)
        assert all(run.results_match for run in result.runs)

    def test_store_scenario_builds_both_modes(self):
        for mode in (FragMode.INDEPENDENT_DOCUMENTS, FragMode.SINGLE_DOCUMENT):
            scenario = build_store_scenario(
                paper_mb=5, frag_mode=mode, scale=TINY
            )
            assert scenario.fragment_count == 5
            result = scenario.run(repetitions=1)
            assert all(run.results_match for run in result.runs), mode

    def test_central_site_exists(self):
        scenario = build_items_scenario(
            "small", paper_mb=5, fragment_count=2, scale=TINY
        )
        assert CENTRAL_SITE in scenario.partix.cluster

    def test_simulated_overhead_flows_into_times(self):
        with_overhead = build_items_scenario(
            "small", paper_mb=5, fragment_count=2, scale=TINY,
            per_document_overhead=0.5,
        ).run(repetitions=1)
        without = build_items_scenario(
            "small", paper_mb=5, fragment_count=2, scale=TINY,
            per_document_overhead=0.0,
        ).run(repetitions=1)
        assert (
            with_overhead.run_by_id("Q8").centralized_seconds
            > without.run_by_id("Q8").centralized_seconds + 0.4
        )


class TestModeComparison:
    @pytest.fixture(scope="class")
    def mode_runs(self):
        scenario = build_items_scenario(
            "small", paper_mb=5, fragment_count=4, scale=TINY
        )
        return scenario, compare_execution_modes(scenario, repetitions=1)

    def test_covers_every_query_and_both_modes(self, mode_runs):
        scenario, runs = mode_runs
        assert [run.qid for run in runs] == [f"Q{i}" for i in range(1, 9)]
        for run in runs:
            assert run.byte_identical, run.qid
            assert run.simulated_wall_seconds > 0
            assert run.threads_wall_seconds > 0

    def test_threads_wall_beats_modelled_sequential(self, mode_runs):
        _, runs = mode_runs
        for run in runs:
            assert run.threads_wall_seconds < run.sequential_seconds, run.qid

    def test_mode_table_renders(self, mode_runs):
        scenario, runs = mode_runs
        table = format_mode_comparison(scenario.name, runs)
        assert "thr-wall" in table
        assert "Q8" in table
        assert "DIFF" not in table


class TestReporting:
    @pytest.fixture(scope="class")
    def result(self):
        return build_items_scenario(
            "small", paper_mb=5, fragment_count=2, scale=TINY
        ).run(repetitions=1)

    def test_table_mentions_every_query(self, result):
        table = format_scenario_table(result)
        for qid in (f"Q{i}" for i in range(1, 9)):
            assert qid in table
        assert "ItemsSHor" in table

    def test_table_with_transmission_flag(self, result):
        assert "with transmission" in format_scenario_table(
            result, transmission=True
        )

    def test_speedup_series(self, result):
        series = format_speedup_series([result], "Q8")
        assert "Q8" in series and "2 fragments" in series

    def test_summarize_wins_counts(self, result):
        summary = summarize_wins(result)
        assert summary["wins"] + summary["losses"] + summary["ties"] == 8
        assert summary["best_query"] is not None
