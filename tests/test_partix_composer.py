"""Unit tests for result composition."""

import pytest

from repro.algebra import PXID, PXORIGIN, PXPARENT, annotate
from repro.datamodel import doc, elem
from repro.errors import DecompositionError
from repro.partix import CompositionSpec, ResultComposer, SubQuery
from repro.xmltext import serialize


def _sq(fragment="F1"):
    return SubQuery(fragment, "s0", fragment, "q")


@pytest.fixture
def composer():
    return ResultComposer()


class TestConcat:
    def test_joins_non_empty_chunks(self, composer):
        result = composer.compose(
            CompositionSpec(kind="concat"),
            [(_sq("F1"), "a\nb"), (_sq("F2"), ""), (_sq("F3"), "c")],
        )
        assert result.result_text == "a\nb\nc"
        assert result.result_bytes == 5

    def test_empty_partials(self, composer):
        result = composer.compose(CompositionSpec(kind="concat"), [])
        assert result.result_text == ""


class TestAggregate:
    def test_count_sums(self, composer):
        result = composer.compose(
            CompositionSpec(kind="aggregate", aggregate="count"),
            [(_sq(), "3"), (_sq(), "4")],
        )
        assert result.result_text == "7"

    def test_sum(self, composer):
        result = composer.compose(
            CompositionSpec(kind="aggregate", aggregate="sum"),
            [(_sq(), "1.5"), (_sq(), "2.5")],
        )
        assert result.result_text == "4"

    def test_min_max(self, composer):
        spec_min = CompositionSpec(kind="aggregate", aggregate="min")
        spec_max = CompositionSpec(kind="aggregate", aggregate="max")
        partials = [(_sq(), "5"), (_sq(), "2"), (_sq(), "9")]
        assert composer.compose(spec_min, partials).result_text == "2"
        assert composer.compose(spec_max, partials).result_text == "9"

    def test_min_over_empty_partials(self, composer):
        result = composer.compose(
            CompositionSpec(kind="aggregate", aggregate="min"),
            [(_sq(), ""), (_sq(), "")],
        )
        assert result.result_text == ""

    def test_avg_recombines_sum_count(self, composer):
        result = composer.compose(
            CompositionSpec(kind="aggregate", aggregate="avg"),
            [(_sq(), "10\n2"), (_sq(), "20\n3")],
        )
        assert result.result_text == "6"

    def test_avg_zero_count(self, composer):
        result = composer.compose(
            CompositionSpec(kind="aggregate", aggregate="avg"),
            [(_sq(), "0\n0")],
        )
        assert result.result_text == ""

    def test_unknown_aggregate(self, composer):
        with pytest.raises(DecompositionError):
            composer.compose(
                CompositionSpec(kind="aggregate", aggregate="median"),
                [(_sq(), "1")],
            )

    def test_unknown_kind(self, composer):
        with pytest.raises(DecompositionError):
            composer.compose(CompositionSpec(kind="zip"), [])


class TestReconstruct:
    def _vertical_partials(self):
        """Two fragments of one article, serialized as drivers would."""
        original = doc(
            elem("article",
                 elem("prolog", elem("title", "T")),
                 elem("body", elem("p", "B"))),
            name="a.xml",
        )
        from repro.algebra import Projection

        f1 = Projection("/article/prolog").apply(original)[0]
        f2 = Projection("/article/body").apply(original)[0]
        annotate(f1.root, PXORIGIN, "a.xml")
        annotate(f2.root, PXORIGIN, "a.xml")
        return original, [
            (_sq("F1"), serialize(f1)),
            (_sq("F2"), serialize(f2)),
        ]

    def test_joins_and_requeries(self, composer):
        original, partials = self._vertical_partials()
        spec = CompositionSpec(
            kind="reconstruct",
            original_query='for $a in collection("Cpapers")/article'
            " return $a/prolog/title/text()",
            source_collection="Cpapers",
            root_label="article",
        )
        result = composer.compose(spec, partials)
        assert result.result_text == "T"
        assert result.compose_seconds > 0

    def test_requires_original_query(self, composer):
        with pytest.raises(DecompositionError):
            composer.compose(CompositionSpec(kind="reconstruct"), [])

    def test_fragmode2_wrapper_units_extracted(self, composer):
        # A FragMode2 wrapper: chain Store/Items with annotated units,
        # plus a remainder skeleton with a stub.
        wrapper = elem("Store", elem("Items"))
        annotate(wrapper, PXORIGIN, "s.xml")
        items_node = wrapper.element_children()[0]
        unit = elem("Item", elem("Code", "I1"))
        annotate(unit, PXID, 5)
        annotate(unit, PXPARENT, 2)
        items_node.append(unit)

        remainder = elem("Store", elem("Meta", elem("x", "m")), elem("Items"))
        annotate(remainder, PXID, 0)
        annotate(remainder, PXORIGIN, "s.xml")
        stub = remainder.element_children()[1]
        annotate(stub, PXID, 2)

        spec = CompositionSpec(
            kind="reconstruct",
            original_query='for $s in collection("Cstore")/Store'
            " return count($s/Items/Item)",
            source_collection="Cstore",
            root_label="Store",
        )
        result = composer.compose(
            spec,
            [(_sq("F1"), serialize(remainder)), (_sq("F2"), serialize(wrapper))],
        )
        assert result.result_text == "1"
