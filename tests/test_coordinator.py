"""The coordinator concurrency battery.

Everything here runs against a real asyncio coordinator on a real
socket. The core property is the one the serial tests cannot check:
under heavy concurrency — 32+ clients, mixed workload, republishes and
slow sites happening mid-flight — every answer stays byte-identical to
a serial ``Partix.execute`` baseline, overload is shed with a typed
error instead of latency collapse, and shutdown drains cleanly.
"""

import threading
import time

import pytest

from repro.cluster import FAIL_FAST, ParallelDispatcher
from repro.cluster.site import Cluster, Site
from repro.coordinate import Coordinator, CoordinatorClient, run_traffic
from repro.coordinate.traffic import WorkloadQuery
from repro.errors import AdmissionRejected, QueryDeadlineExceeded
from repro.net.protocol import (
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.partix.catalog import FragmentAllocation
from repro.partix.driver import PartixDriver
from repro.partix.middleware import Partix
from repro.workloads.queries import items_queries
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)


def _published_partix(fragment_count=2, item_count=24, dispatcher=None):
    collection = build_items_collection(item_count, kind="small", seed=11)
    cluster = Cluster.with_sites(max(fragment_count, 4))
    partix = Partix(cluster, dispatcher=dispatcher)
    design = items_horizontal_fragmentation(fragment_count)
    partix.publish(
        collection, design, allocations=_allocations(design, "a")
    )
    return partix, collection


def _allocations(design, suffix, site_offset=0):
    """One site per fragment, stored collections tagged per publication
    so a republish never collides with previously stored data."""
    return [
        FragmentAllocation(
            fragment=fragment.name,
            site=f"site{index + site_offset}",
            stored_collection=f"{fragment.name}__{suffix}",
        )
        for index, fragment in enumerate(design.fragments)
    ]


def _workload(partix, collection, count=3):
    """The first ``count`` bench queries with serial baselines attached."""
    entries = []
    for query in items_queries(collection.name)[:count]:
        baseline = partix.execute(
            query.text, collection=collection.name, execution_mode="simulated"
        )
        entries.append(
            WorkloadQuery(
                qid=query.qid,
                text=query.text,
                expected_text=baseline.result_text,
                collection=collection.name,
            )
        )
    return entries


class _GatedDriver(PartixDriver):
    """Wraps a live driver; queries block until the gate opens."""

    def __init__(self, inner, max_wait=5.0):
        self.inner = inner
        self.gate = threading.Event()
        self.max_wait = max_wait
        self.calls = 0

    def create_collection(self, name):
        self.inner.create_collection(name)

    def store_document(self, collection, document, name=None, origin=None):
        self.inner.store_document(collection, document, name=name, origin=origin)

    def document_count(self, collection):
        return self.inner.document_count(collection)

    def collection_bytes(self, collection):
        return self.inner.collection_bytes(collection)

    def execute(
        self, query, default_collection=None, extra_predicate=None,
        use_indexes=None,
    ):
        self.calls += 1
        self.gate.wait(timeout=self.max_wait)
        return self.inner.execute(
            query,
            default_collection=default_collection,
            extra_predicate=extra_predicate,
            use_indexes=use_indexes,
        )


class TestConcurrentServing:
    def test_32_concurrent_clients_stay_byte_identical(self):
        partix, collection = _published_partix()
        workload = _workload(partix, collection)
        coordinator = Coordinator(
            partix, execution_mode="threads", max_active=8, queue_limit=256
        ).serve_in_thread()
        try:
            report = run_traffic(
                coordinator.host,
                coordinator.port,
                workload,
                clients=32,
                requests_per_client=3,
                seed=7,
            )
        finally:
            assert coordinator.close()
        assert report.total == 32 * 3
        assert report.incorrect == 0
        assert report.errors == 0, report.error_messages
        assert report.shed == 0  # queue_limit 256 absorbs all 32 clients
        assert report.ok == 32 * 3
        # Every served query planned through the shared cache: one
        # lookup each, at most a handful of racing first-miss plans, and
        # one cached logical plan per distinct query at the end.
        cache = coordinator.plan_cache.stats()
        assert cache["hits"] + cache["misses"] == report.ok
        assert cache["entries"] == len(workload)
        assert cache["hits"] >= report.ok - 32  # racing misses are bounded

    def test_pool_reuse_and_admission_peaks_are_reported(self):
        partix, collection = _published_partix()
        workload = _workload(partix, collection, count=2)
        coordinator = Coordinator(
            partix, execution_mode="threads", max_active=4, queue_limit=256
        ).serve_in_thread()
        try:
            run_traffic(
                coordinator.host,
                coordinator.port,
                workload,
                clients=16,
                requests_per_client=2,
                seed=3,
            )
            stats = coordinator.stats_payload()
        finally:
            assert coordinator.close()
        assert stats["queries_served"] == 32
        admission = stats["admission"]
        assert admission["active"] == 0 and admission["queued"] == 0
        assert admission["peak_active"] <= 4  # the bound held under load
        assert admission["admitted"] == 32

    def test_streamed_answers_match_monolithic(self):
        partix, collection = _published_partix()
        workload = _workload(partix, collection, count=1)
        coordinator = Coordinator(partix, execution_mode="threads").serve_in_thread()
        client = CoordinatorClient(
            coordinator.host, coordinator.port, chunk_bytes=64
        )
        try:
            entry = workload[0]
            chunks = []
            reply = client.query_stream(
                entry.text, collection=entry.collection, on_chunk=chunks.append
            )
            assert reply["result_text"] == entry.expected_text
            assert b"".join(chunks).decode("utf-8") == entry.expected_text
            if entry.expected_text:
                assert all(len(chunk) <= 64 for chunk in chunks)
        finally:
            client.close()
            assert coordinator.close()


class TestRepublishInvalidation:
    def test_overlapping_republish_keeps_answers_identical(self):
        # Traffic flows while the collection is republished: the same
        # fragmentation moves to fresh sites (site2/site3), so answers
        # must stay byte-identical while the catalog-version bump
        # invalidates every cached plan (visible as fresh cache misses).
        partix, collection = _published_partix(fragment_count=2)
        workload = _workload(partix, collection)
        version_before = partix.distribution_catalog.version
        coordinator = Coordinator(
            partix, execution_mode="threads", max_active=4, queue_limit=256
        ).serve_in_thread()
        new_design = items_horizontal_fragmentation(2)

        failures = []

        def _republish():
            time.sleep(0.05)  # let the first wave cache its plans
            try:
                partix.publish(
                    collection,
                    new_design,
                    allocations=_allocations(new_design, "b", site_offset=2),
                    replace=True,
                )
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        # Warm the cache under the old design first, so the version bump
        # demonstrably strands one cached plan per query.
        warmer = CoordinatorClient(coordinator.host, coordinator.port)
        try:
            for entry in workload:
                warmer.query(entry.text, collection=entry.collection)
        finally:
            warmer.close()
        assert coordinator.plan_cache.stats()["entries"] == len(workload)

        republisher = threading.Thread(target=_republish)
        republisher.start()
        try:
            report = run_traffic(
                coordinator.host,
                coordinator.port,
                workload,
                clients=8,
                requests_per_client=6,
                seed=5,
            )
            republisher.join()
            # Post-republish queries must replan (the version bump
            # stranded every cached entry) and still answer identically.
            checker = CoordinatorClient(coordinator.host, coordinator.port)
            try:
                for entry in workload:
                    reply = checker.query(
                        entry.text, collection=entry.collection
                    )
                    assert reply["result_text"] == entry.expected_text
            finally:
                checker.close()
        finally:
            cache = coordinator.plan_cache.stats()
            assert coordinator.close()
        assert not failures
        assert report.incorrect == 0
        assert report.errors == 0, report.error_messages
        assert report.ok == 8 * 6
        assert partix.distribution_catalog.version > version_before
        # One plan generation per design: the first wave missed once per
        # query, and after the version bump each query missed again.
        assert cache["misses"] >= 2 * len(workload)

    def test_republished_design_actually_routes_to_new_sites(self):
        partix, collection = _published_partix(fragment_count=2)
        query = items_queries(collection.name)[1].text
        before = partix.execute(query, collection=collection.name)
        sites_before = {e.site for e in before.round.executions}
        assert sites_before and sites_before <= {"site0", "site1"}
        new_design = items_horizontal_fragmentation(2)
        partix.publish(
            collection,
            new_design,
            allocations=_allocations(new_design, "b", site_offset=2),
            replace=True,
        )
        after = partix.execute(query, collection=collection.name)
        assert after.result_text == before.result_text
        sites_after = {e.site for e in after.round.executions}
        assert sites_after and sites_after <= {"site2", "site3"}


def _publish_fast_lane(partix):
    """A second collection on ungated sites (site2/site3), so a fast
    query can run while site0 is stalled; returns (query, expected)."""
    fast_collection = build_items_collection(
        8, kind="small", seed=23, name="Cfast"
    )
    fast_design = items_horizontal_fragmentation(2, collection="Cfast")
    partix.publish(
        fast_collection,
        fast_design,
        allocations=[
            FragmentAllocation(
                fragment=fragment.name,
                site=f"site{2 + index}",
                stored_collection=f"Cfast__{fragment.name}",
            )
            for index, fragment in enumerate(fast_design.fragments)
        ],
    )
    fast_query = 'count(collection("Cfast")/Item)'
    fast_expected = partix.execute(
        fast_query, collection="Cfast", execution_mode="simulated"
    ).result_text
    return fast_query, fast_expected


class TestNoHeadOfLineBlocking:
    def test_fast_queries_overtake_a_stalled_one_on_the_same_connection(self):
        # Two QUERY frames pipelined on ONE connection: the first stalls
        # on a gated site, the second is fast. The fast reply must arrive
        # first — request ids, not arrival order, pair replies to queries.
        partix, collection = _published_partix(fragment_count=2)
        workload = _workload(partix, collection, count=2)
        gated = _GatedDriver(partix.cluster.site("site0").driver)
        partix.cluster.site("site0").driver = gated
        fast_query, fast_expected = _publish_fast_lane(partix)

        coordinator = Coordinator(
            partix, execution_mode="threads", max_active=4
        ).serve_in_thread()
        import socket as socketlib

        sock = socketlib.create_connection(
            (coordinator.host, coordinator.port), timeout=10.0
        )
        try:
            send_frame(
                sock,
                Frame(
                    type=FrameType.HELLO,
                    request_id=1,
                    payload={"version": PROTOCOL_VERSION},
                ),
            )
            welcome, _ = recv_frame(sock)
            assert welcome.type is FrameType.WELCOME

            slow_entry = workload[0]
            send_frame(
                sock,
                Frame(
                    type=FrameType.QUERY,
                    request_id=100,
                    payload={
                        "query": slow_entry.text,
                        "collection": slow_entry.collection,
                    },
                ),
            )
            send_frame(
                sock,
                Frame(
                    type=FrameType.QUERY,
                    request_id=200,
                    payload={"query": fast_query, "collection": "Cfast"},
                ),
            )
            first, _ = recv_frame(sock)
            assert first.request_id == 200  # the fast one overtook
            assert first.type is FrameType.QUERY_RESULT
            assert first.payload["result_text"] == fast_expected

            gated.gate.set()
            second, _ = recv_frame(sock)
            assert second.request_id == 100
            assert second.type is FrameType.QUERY_RESULT
            assert second.payload["result_text"] == slow_entry.expected_text
        finally:
            sock.close()
            assert coordinator.close()

    def test_a_stalled_site_does_not_block_other_connections(self):
        partix, collection = _published_partix(fragment_count=2)
        workload = _workload(partix, collection, count=1)
        gated = _GatedDriver(partix.cluster.site("site0").driver)
        partix.cluster.site("site0").driver = gated
        fast_query, fast_expected = _publish_fast_lane(partix)
        coordinator = Coordinator(
            partix, execution_mode="threads", max_active=4
        ).serve_in_thread()
        slow_client = CoordinatorClient(coordinator.host, coordinator.port)
        fast_client = CoordinatorClient(coordinator.host, coordinator.port)
        slow_reply = {}

        def _slow():
            slow_reply["payload"] = slow_client.query(
                workload[0].text, collection=workload[0].collection
            )

        slow_thread = threading.Thread(target=_slow)
        slow_thread.start()
        try:
            deadline = time.perf_counter() + 5.0
            while gated.calls == 0 and time.perf_counter() < deadline:
                time.sleep(0.005)  # wait until the slow query is stalled
            assert gated.calls > 0
            started = time.perf_counter()
            reply = fast_client.query(fast_query, collection="Cfast")
            fast_elapsed = time.perf_counter() - started
            assert reply["result_text"] == fast_expected
            assert fast_elapsed < 2.0  # did not wait for the gate
        finally:
            gated.gate.set()
            slow_thread.join(timeout=10.0)
            slow_client.close()
            fast_client.close()
            assert coordinator.close()
        assert slow_reply["payload"]["result_text"] == workload[0].expected_text


class TestAdmissionOverTheWire:
    def _gated_coordinator(self, max_active, queue_limit):
        partix, collection = _published_partix(fragment_count=2)
        workload = _workload(partix, collection, count=1)
        gated = _GatedDriver(partix.cluster.site("site0").driver)
        partix.cluster.site("site0").driver = gated
        coordinator = Coordinator(
            partix,
            execution_mode="threads",
            max_active=max_active,
            queue_limit=queue_limit,
        ).serve_in_thread()
        return coordinator, workload[0], gated

    def test_overflow_is_shed_with_the_typed_error(self):
        coordinator, entry, gated = self._gated_coordinator(
            max_active=1, queue_limit=0
        )
        blocker = CoordinatorClient(coordinator.host, coordinator.port)
        shed_client = CoordinatorClient(coordinator.host, coordinator.port)
        blocked = threading.Thread(
            target=lambda: blocker.query(entry.text, collection=entry.collection)
        )
        blocked.start()
        try:
            deadline = time.perf_counter() + 5.0
            while gated.calls == 0 and time.perf_counter() < deadline:
                time.sleep(0.005)
            started = time.perf_counter()
            with pytest.raises(AdmissionRejected) as info:
                shed_client.query(entry.text, collection=entry.collection)
            assert time.perf_counter() - started < 1.0  # shed, not queued
            assert "retry later" in str(info.value)
        finally:
            gated.gate.set()
            blocked.join(timeout=10.0)
            blocker.close()
            shed_client.close()
            stats = coordinator.stats_payload()
            assert coordinator.close()
        assert stats["admission"]["shed"] == 1

    def test_deadline_expires_in_the_admission_queue(self):
        coordinator, entry, gated = self._gated_coordinator(
            max_active=1, queue_limit=8
        )
        blocker = CoordinatorClient(coordinator.host, coordinator.port)
        waiting = CoordinatorClient(coordinator.host, coordinator.port)
        blocked = threading.Thread(
            target=lambda: blocker.query(entry.text, collection=entry.collection)
        )
        blocked.start()
        try:
            deadline = time.perf_counter() + 5.0
            while gated.calls == 0 and time.perf_counter() < deadline:
                time.sleep(0.005)
            with pytest.raises(QueryDeadlineExceeded) as info:
                waiting.query(
                    entry.text,
                    collection=entry.collection,
                    deadline_seconds=0.15,
                )
            assert "admission queue" in str(info.value)
        finally:
            gated.gate.set()
            blocked.join(timeout=10.0)
            blocker.close()
            waiting.close()
            assert coordinator.close()

    def test_deadline_expires_during_dispatch(self):
        # The per-query deadline overrides the dispatcher's 30s default:
        # a site that stalls longer than the deadline turns the reply
        # into QueryDeadlineExceeded once the budgeted attempt expires.
        partix, collection = _published_partix(
            fragment_count=2,
            dispatcher=ParallelDispatcher(
                retries=0, failure_policy=FAIL_FAST, subquery_timeout=30.0
            ),
        )
        entry = _workload(partix, collection, count=1)[0]
        gated = _GatedDriver(
            partix.cluster.site("site0").driver, max_wait=0.6
        )
        partix.cluster.site("site0").driver = gated
        coordinator = Coordinator(
            partix, execution_mode="threads", max_active=2
        ).serve_in_thread()
        client = CoordinatorClient(coordinator.host, coordinator.port)
        try:
            with pytest.raises(QueryDeadlineExceeded):
                client.query(
                    entry.text,
                    collection=entry.collection,
                    deadline_seconds=0.1,
                )
        finally:
            client.close()
            assert coordinator.close()


class TestShutdown:
    def test_close_is_clean_with_idle_connections_open(self):
        partix, _ = _published_partix(fragment_count=2)
        coordinator = Coordinator(partix, execution_mode="threads").serve_in_thread()
        client = CoordinatorClient(coordinator.host, coordinator.port)
        client.ping()  # leaves a pooled, idle connection open
        try:
            assert coordinator.close()
        finally:
            client.close()

    def test_close_drains_an_in_flight_query(self):
        partix, collection = _published_partix(fragment_count=2)
        entry = _workload(partix, collection, count=1)[0]
        gated = _GatedDriver(partix.cluster.site("site0").driver)
        partix.cluster.site("site0").driver = gated
        coordinator = Coordinator(partix, execution_mode="threads").serve_in_thread()
        client = CoordinatorClient(coordinator.host, coordinator.port)
        reply = {}

        def _query():
            reply["payload"] = client.query(
                entry.text, collection=entry.collection
            )

        querier = threading.Thread(target=_query)
        querier.start()
        deadline = time.perf_counter() + 5.0
        while gated.calls == 0 and time.perf_counter() < deadline:
            time.sleep(0.005)
        opener = threading.Timer(0.2, gated.gate.set)
        opener.start()
        try:
            # close() must wait for the in-flight query, whose reply must
            # still reach the client before the connection is torn down.
            assert coordinator.close()
            querier.join(timeout=10.0)
            assert reply["payload"]["result_text"] == entry.expected_text
        finally:
            opener.cancel()
            gated.gate.set()
            client.close()

    def test_shutdown_frame_drains_the_service(self):
        partix, _ = _published_partix(fragment_count=2)
        coordinator = Coordinator(partix, execution_mode="threads").serve_in_thread()
        client = CoordinatorClient(coordinator.host, coordinator.port)
        try:
            assert client.shutdown_server()
            deadline = time.perf_counter() + 5.0
            while (
                coordinator._thread is not None
                and coordinator._thread.is_alive()
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
            assert coordinator.close()
        finally:
            client.close()
