"""Property-based tests (hypothesis) for core invariants.

Covered invariants:

* serialize → parse is the identity on data trees (the storage format);
* escaping round-trips arbitrary text and attribute values;
* path parsing round-trips through ``str``;
* ``definitely_disjoint`` is sound: predicates it separates never both
  hold on a document whose selector paths are single-valued;
* horizontal fragmentation by an equality family + residual satisfies all
  three §3.3 rules on arbitrary collections;
* vertical projection with an arbitrary prune set reconstructs the
  original document through the ID-join, across a serialization
  round-trip;
* the distributed execution of a selection query equals the centralized
  one on random data (the end-to-end contract).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Projection, reconstruct_one
from repro.datamodel import Collection, XMLNode, doc, elem
from repro.paths import cmp, definitely_disjoint, eq, ne, parse_path
from repro.xmltext import parse_xml, serialize
from repro.xmltext.escape import escape_attribute, escape_text
from repro.xmltext.parser import parse_fragment

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
names = st.text(
    alphabet=string.ascii_letters, min_size=1, max_size=8
).map(lambda s: "n" + s)  # guaranteed name-start character

# Printable text without XML-breaking control characters; the parser
# normalizes whitespace-only text away, so require a visible character.
texts = st.text(
    alphabet=string.printable.replace("\x0b", "").replace("\x0c", "").replace("\r", ""),
    min_size=1,
    max_size=30,
).filter(lambda s: s.strip() != "")


@st.composite
def xml_trees(draw, max_depth=3):
    """Random mixed trees honouring the no-mixed-content rule."""
    label = draw(names)
    node = XMLNode.element(label)
    for attr_name in draw(st.lists(names, max_size=2, unique=True)):
        node.append(XMLNode.attribute(attr_name, draw(texts)))
    if max_depth <= 0 or draw(st.booleans()):
        if draw(st.booleans()):
            node.append(XMLNode.text(draw(texts)))
        return node
    for child in draw(
        st.lists(xml_trees(max_depth=max_depth - 1), max_size=3)
    ):
        node.append(child)
    return node


class TestXMLRoundTrip:
    @given(xml_trees())
    @settings(max_examples=80)
    def test_serialize_parse_identity(self, tree):
        document = doc(tree.clone(deep=True))
        reparsed = parse_xml(serialize(document))
        assert reparsed.tree_equal(document)

    @given(texts)
    def test_text_escaping_round_trip(self, value):
        tree = parse_fragment(f"<a>{escape_text(value)}</a>")
        assert tree.text_value() == value

    @given(texts)
    def test_attribute_escaping_round_trip(self, value):
        tree = parse_fragment(f'<a x="{escape_attribute(value)}"/>')
        assert tree.get_attribute("x") == value

    @given(xml_trees())
    @settings(max_examples=50)
    def test_double_round_trip_stable(self, tree):
        once = serialize(doc(tree.clone(deep=True)))
        twice = serialize(parse_xml(once))
        assert once == twice


class TestPathRoundTrip:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["/", "//"]), names, st.booleans()),
            min_size=1,
            max_size=5,
        )
    )
    def test_parse_str_fixpoint(self, steps):
        text = "".join(
            axis + ("@" if is_attr and index == len(steps) - 1 else "") + name
            for index, (axis, name, is_attr) in enumerate(steps)
        )
        path = parse_path(text)
        assert str(parse_path(str(path))) == str(path)


values = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["CD", "DVD", "Book", "x", "y"]),
)
operators = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


class TestDisjointnessSoundness:
    @given(op1=operators, v1=values, op2=operators, v2=values, actual=values)
    @settings(max_examples=200)
    def test_never_wrongly_disjoint(self, op1, v1, op2, v2, actual):
        p = cmp("/a/b", op1, v1)
        q = cmp("/a/b", op2, v2)
        if definitely_disjoint(p, q):
            document = doc(elem("a", elem("b", str(actual))))
            assert not (p.evaluate(document) and q.evaluate(document))


sections = st.sampled_from(["CD", "DVD", "Book", "Toys"])


class TestHorizontalFragmentationProperty:
    @given(st.lists(sections, min_size=1, max_size=15))
    @settings(max_examples=40)
    def test_equality_family_design_is_correct(self, doc_sections):
        from repro.partix import (
            FragmentationSchema,
            HorizontalFragment,
            verify_fragmentation,
        )
        from repro.paths import And

        collection = Collection(
            "c",
            [
                doc(elem("Item", elem("Code", str(i)), elem("Section", s)),
                    name=f"d{i}.xml")
                for i, s in enumerate(doc_sections)
            ],
        )
        fragments = [
            HorizontalFragment("F_cd", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F_dvd", "c", predicate=eq("/Item/Section", "DVD")),
            HorizontalFragment(
                "F_rest",
                "c",
                predicate=And(
                    (ne("/Item/Section", "CD"), ne("/Item/Section", "DVD"))
                ),
            ),
        ]
        schema = FragmentationSchema("c", fragments, root_label="Item")
        report = verify_fragmentation(schema, collection)
        assert report.ok, report.violations


@st.composite
def wide_documents(draw):
    """Documents with a fixed top shape and random optional branches."""
    children = []
    for label in draw(
        st.lists(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),
            min_size=1,
            max_size=4,
            unique=True,
        )
    ):
        grand = [elem("leaf", draw(st.text(string.ascii_letters, min_size=1, max_size=5)))]
        children.append(elem(label, *grand))
    return doc(elem("root", *children), name="d.xml")


class TestVerticalReconstructionProperty:
    @given(wide_documents(), st.sampled_from(["alpha", "beta", "gamma", "delta"]))
    @settings(max_examples=60)
    def test_prune_complement_rebuilds(self, document, branch):
        prune_path = f"/root/{branch}"
        remainder = Projection("/root", prune=[prune_path]).apply(document)
        pruned = Projection(prune_path).apply(document)
        parts = []
        for part in remainder + pruned:
            reparsed = parse_xml(serialize(part), name=part.name)
            reparsed.origin = part.origin
            parts.append(reparsed)
        rebuilt = reconstruct_one(parts, origin="d.xml")
        assert rebuilt.tree_equal(document)


class TestDistributedEquivalenceProperty:
    @given(
        doc_sections=st.lists(sections, min_size=1, max_size=10),
        target=sections,
    )
    @settings(max_examples=25, deadline=None)
    def test_selection_matches_centralized(self, doc_sections, target):
        from repro.cluster import Cluster, Site
        from repro.partix import (
            FragmentationSchema,
            HorizontalFragment,
            Partix,
        )

        collection = Collection(
            "c",
            [
                doc(elem("Item", elem("Code", f"I{i}"), elem("Section", s)),
                    name=f"d{i}.xml")
                for i, s in enumerate(doc_sections)
            ],
        )
        cluster = Cluster.with_sites(2)
        cluster.add(Site("central"))
        partix = Partix(cluster)
        design = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "c", predicate=ne("/Item/Section", "CD")),
        ], root_label="Item")
        partix.publish(collection, design)
        partix.publish_centralized(collection, "central")
        query = (
            'for $i in collection("c")/Item'
            f' where $i/Section = "{target}" return $i/Code/text()'
        )
        distributed = sorted(partix.execute(query).result_text.split())
        centralized = sorted(
            partix.execute_centralized(query, "central").result_text.split()
        )
        assert distributed == centralized


# ----------------------------------------------------------------------
# Predicate serialization round-trip (random predicate trees)
# ----------------------------------------------------------------------
_paths = st.sampled_from(["/a/b", "/Item/Section", "//Description", "/a/b/@id"])
_atoms = st.one_of(
    st.builds(
        lambda p, op, v: cmp(p, op, v),
        _paths,
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.one_of(st.integers(-99, 99), st.sampled_from(["CD", "x y", 'qu"ote'])),
    ),
    st.builds(lambda p, n: __import__("repro.paths", fromlist=["contains"]).contains(p, n),
              _paths, st.sampled_from(["good", "né édlè"])),
    st.builds(lambda p: __import__("repro.paths", fromlist=["exists"]).exists(p), _paths),
    st.builds(lambda p: __import__("repro.paths", fromlist=["empty"]).empty(p), _paths),
)


def _combine(children):
    from repro.paths import And, Not, Or

    return st.one_of(
        st.builds(lambda inner: Not(inner), children),
        st.builds(lambda parts: And(tuple(parts)),
                  st.lists(children, min_size=2, max_size=3)),
        st.builds(lambda parts: Or(tuple(parts)),
                  st.lists(children, min_size=2, max_size=3)),
    )


_predicates = st.recursive(_atoms, _combine, max_leaves=6)


class TestPredicateSerializationProperty:
    @given(_predicates)
    @settings(max_examples=150)
    def test_json_round_trip(self, predicate):
        import json

        from repro.partix import predicate_from_dict, predicate_to_dict

        payload = json.dumps(predicate_to_dict(predicate))
        restored = predicate_from_dict(json.loads(payload))
        assert str(restored) == str(predicate)

    @given(_predicates, st.sampled_from(["CD", "DVD", "5", "good stuff"]))
    @settings(max_examples=80)
    def test_restored_predicate_evaluates_identically(self, predicate, value):
        from repro.partix import predicate_from_dict, predicate_to_dict

        document = doc(
            elem("Item", elem("Section", value), elem("Description", value))
        )
        restored = predicate_from_dict(predicate_to_dict(predicate))
        assert restored.evaluate(document) == predicate.evaluate(document)
