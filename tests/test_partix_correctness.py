"""Unit tests for the correctness rules of §3.3."""

import pytest

from repro.datamodel import Collection, doc, elem
from repro.errors import CorrectnessViolation
from repro.partix import (
    FragmentationSchema,
    HorizontalFragment,
    HybridFragment,
    VerticalFragment,
    symbolic_report,
    verify_fragmentation,
)
from repro.paths import And, TruePredicate, contains, eq, ne


def make_items(sections):
    return Collection(
        "c",
        [
            doc(elem("Item", elem("Code", f"I{i}"), elem("Section", s)),
                name=f"i{i}.xml")
            for i, s in enumerate(sections)
        ],
    )


class TestHorizontalRules:
    def test_complement_design_is_correct(self):
        collection = make_items(["CD", "DVD", "CD"])
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "c", predicate=ne("/Item/Section", "CD")),
        ])
        report = verify_fragmentation(schema, collection)
        assert report.ok

    def test_incomplete_design_detected(self):
        collection = make_items(["CD", "Book"])
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "c", predicate=eq("/Item/Section", "DVD")),
        ])
        report = verify_fragmentation(schema, collection)
        assert not report.complete
        assert not report.ok
        assert "no fragment predicate" in report.violations[0]

    def test_overlapping_design_detected(self):
        collection = make_items(["CD"])
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "c", predicate=TruePredicate()),
        ])
        report = verify_fragmentation(schema, collection)
        assert not report.disjoint

    def test_raise_if_invalid(self):
        collection = make_items(["Book"])
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
        ])
        report = verify_fragmentation(schema, collection)
        with pytest.raises(CorrectnessViolation) as info:
            report.raise_if_invalid()
        assert info.value.rule == "completeness"

    def test_reconstruction_checked(self):
        collection = make_items(["CD", "DVD"])
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "c", predicate=ne("/Item/Section", "CD")),
        ])
        report = verify_fragmentation(schema, collection)
        assert report.reconstructible


class TestVerticalRules:
    def _article(self, i=0):
        return doc(
            elem("article",
                 elem("prolog", elem("title", f"t{i}")),
                 elem("body", elem("p", f"b{i}")),
                 elem("epilog", elem("country", "BR"))),
            name=f"a{i}.xml",
        )

    def test_xbench_design_correct_with_root_note(self):
        collection = Collection("c", [self._article(i) for i in range(3)])
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/article/prolog"),
            VerticalFragment("F2", "c", path="/article/body"),
            VerticalFragment("F3", "c", path="/article/epilog"),
        ], root_label="article")
        report = verify_fragmentation(schema, collection)
        assert report.ok
        assert any("chain node" in note for note in report.notes)

    def test_strict_nodes_flags_uncovered_root(self):
        collection = Collection("c", [self._article()])
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/article/prolog"),
            VerticalFragment("F2", "c", path="/article/body"),
            VerticalFragment("F3", "c", path="/article/epilog"),
        ], root_label="article")
        report = verify_fragmentation(schema, collection, strict_nodes=True)
        assert not report.complete

    def test_missing_leaf_data_detected(self):
        collection = Collection("c", [self._article()])
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/article/prolog"),
            VerticalFragment("F2", "c", path="/article/body"),
            # epilog (with real data) is in no fragment
        ], root_label="article")
        report = verify_fragmentation(schema, collection)
        assert not report.complete

    def test_overlapping_projections_detected(self):
        collection = Collection("c", [self._article()])
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/article"),  # everything
            VerticalFragment("F2", "c", path="/article/body"),
        ], root_label="article")
        report = verify_fragmentation(schema, collection)
        assert not report.disjoint

    def test_prune_complement_design_correct(self):
        collection = Collection("c", [self._article()])
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/article", prune=("/article/body",)),
            VerticalFragment("F2", "c", path="/article/body"),
        ], root_label="article")
        report = verify_fragmentation(schema, collection)
        assert report.ok


class TestHybridRules:
    def test_store_design_correct(self, store_collection):
        schema = FragmentationSchema("Cstore", [
            VerticalFragment("F1", "Cstore", path="/Store",
                             prune=("/Store/Items",), stub_prunes=True),
            HybridFragment("F2", "Cstore", path="/Store/Items",
                           unit_label="Item", predicate=eq("/Item/Section", "CD")),
            HybridFragment("F3", "Cstore", path="/Store/Items",
                           unit_label="Item", predicate=ne("/Item/Section", "CD")),
        ], root_label="Store")
        report = verify_fragmentation(schema, store_collection)
        assert report.ok

    def test_incomplete_hybrid_detected(self, store_collection):
        schema = FragmentationSchema("Cstore", [
            VerticalFragment("F1", "Cstore", path="/Store",
                             prune=("/Store/Items",), stub_prunes=True),
            HybridFragment("F2", "Cstore", path="/Store/Items",
                           unit_label="Item", predicate=eq("/Item/Section", "CD")),
        ], root_label="Store")
        report = verify_fragmentation(schema, store_collection)
        assert not report.complete


class TestEdgeCaseRejections:
    """Each malformed design is rejected with its *specific* error: an
    empty design fails construction, overlap trips ``disjointness``, a
    dropped path trips ``completeness`` — never a generic failure."""

    def test_empty_fragment_list_rejected(self):
        from repro.errors import FragmentationError

        with pytest.raises(FragmentationError, match="needs fragments"):
            FragmentationSchema("c", [])

    def test_fragment_selecting_nothing_is_legal_but_noted(self):
        # An *empty* fragment (predicate matches no document) is not a
        # correctness violation — the design stays complete and disjoint.
        collection = make_items(["CD", "CD"])
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            HorizontalFragment("F2", "c", predicate=ne("/Item/Section", "CD")),
        ])
        report = verify_fragmentation(schema, collection)
        assert report.ok

    def test_overlapping_horizontal_predicates_rejected_as_disjointness(self):
        collection = make_items(["CD", "DVD"])
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/Item/Section", "CD")),
            # Overlaps F1 on every CD document and misses nothing else.
            HorizontalFragment("F2", "c", predicate=TruePredicate()),
        ])
        report = verify_fragmentation(schema, collection)
        assert report.complete  # the overlap is *only* a disjointness issue
        assert not report.disjoint
        with pytest.raises(CorrectnessViolation) as info:
            report.raise_if_invalid()
        assert info.value.rule == "disjointness"

    def test_vertical_design_dropping_required_path_rejected_as_completeness(self):
        collection = Collection("c", [
            doc(elem("article",
                     elem("prolog", elem("title", "t")),
                     elem("body", elem("p", "data lives here"))),
                name="a.xml"),
        ])
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/article/prolog"),
            # /article/body carries real data but belongs to no fragment.
        ], root_label="article")
        report = verify_fragmentation(schema, collection)
        assert report.disjoint  # dropping a path is *only* a completeness issue
        assert not report.complete
        with pytest.raises(CorrectnessViolation) as info:
            report.raise_if_invalid()
        assert info.value.rule == "completeness"

    def test_hybrid_overlapping_unit_predicates_rejected(self, store_collection):
        schema = FragmentationSchema("Cstore", [
            VerticalFragment("F1", "Cstore", path="/Store",
                             prune=("/Store/Items",), stub_prunes=True),
            HybridFragment("F2", "Cstore", path="/Store/Items",
                           unit_label="Item", predicate=eq("/Item/Section", "CD")),
            HybridFragment("F3", "Cstore", path="/Store/Items",
                           unit_label="Item", predicate=TruePredicate()),
        ], root_label="Store")
        report = verify_fragmentation(schema, store_collection)
        assert not report.disjoint
        with pytest.raises(CorrectnessViolation) as info:
            report.raise_if_invalid()
        assert info.value.rule == "disjointness"


class TestSymbolicReport:
    def test_complement_pair_proves_coverage(self):
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=eq("/a/b", "x")),
            HorizontalFragment("F2", "c", predicate=ne("/a/b", "x")),
        ])
        report = symbolic_report(schema)
        assert report.notes == []

    def test_unprovable_coverage_noted(self):
        schema = FragmentationSchema("c", [
            HorizontalFragment("F1", "c", predicate=contains("/a/b", "x")),
            HorizontalFragment("F2", "c", predicate=contains("/a/b", "y")),
        ])
        report = symbolic_report(schema)
        assert any("completeness" in note for note in report.notes)
        assert any("disjointness" in note for note in report.notes)

    def test_nested_verticals_without_prune_noted(self):
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/a"),
            VerticalFragment("F2", "c", path="/a/b"),
        ])
        report = symbolic_report(schema)
        assert any("may overlap" in note for note in report.notes)

    def test_nested_verticals_with_prune_silent(self):
        schema = FragmentationSchema("c", [
            VerticalFragment("F1", "c", path="/a", prune=("/a/b",)),
            VerticalFragment("F2", "c", path="/a/b"),
        ])
        report = symbolic_report(schema)
        assert not any("overlap" in note for note in report.notes)
