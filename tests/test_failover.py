"""End-to-end failover: killing one replica must not change the answer.

Every collection here is published twice — each fragment's primary on
its own site plus a replica of everything on a ``mirror`` site — so a
dead primary leaves exactly one live copy. The middleware must answer
byte-identically through the replica (simulated and tcp transports),
report the failover, and only degrade / fail fast once *every* replica
of a fragment is gone.
"""

import pytest

from repro.cluster import DEGRADE, ParallelDispatcher
from repro.cluster.site import Cluster, Site
from repro.errors import DispatchError
from repro.partix.catalog import FragmentAllocation
from repro.partix.driver import PartixDriver
from repro.partix.middleware import Partix
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)


class _DeadDriver(PartixDriver):
    """An in-process site that lost power: every call raises."""

    def _die(self, *args, **kwargs):
        raise RuntimeError("site is down")

    create_collection = _die
    store_document = _die
    document_count = _die
    collection_bytes = _die
    execute = _die


def _replicated_partix(fragment_count=2, item_count=24, dispatcher=None):
    """A published Partix where the ``mirror`` site replicates every
    fragment (primaries keep the default one-site-per-fragment layout)."""
    collection = build_items_collection(item_count, kind="small", seed=11)
    cluster = Cluster.with_sites(fragment_count)
    cluster.add(Site("mirror"))
    cluster.add(Site("central"))
    partix = Partix(cluster, dispatcher=dispatcher)
    design = items_horizontal_fragmentation(fragment_count)
    allocations = []
    for index, fragment in enumerate(design.fragments):
        allocations.append(
            FragmentAllocation(
                fragment=fragment.name,
                site=f"site{index % fragment_count}",
                stored_collection=fragment.name,
            )
        )
        allocations.append(
            FragmentAllocation(
                fragment=fragment.name,
                site="mirror",
                stored_collection=fragment.name,
            )
        )
    partix.publish(collection, design, allocations=allocations)
    partix.publish_centralized(collection, "central")
    return partix, collection


def _item_query(collection):
    return 'for $i in collection("%s")//Item return $i/Code' % collection.name


def _count_query(collection):
    return 'count(collection("%s")//Item)' % collection.name


class TestSimulatedFailover:
    def test_killed_primary_fails_over_byte_identical(self):
        partix, collection = _replicated_partix()
        query = _item_query(collection)
        healthy = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )
        victim = healthy.round.executions[0].site
        assert victim != "mirror"  # healthy lowering picks the primary

        partix.cluster.site(victim).driver = _DeadDriver()
        result = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )
        assert result.result_text == healthy.result_text
        assert result.failover_count >= 1
        assert any(e.site == "mirror" for e in result.round.executions)
        assert not any("degraded" in note for note in result.notes)
        assert any("failover" in note for note in result.notes)

    def test_failed_over_count_matches_the_centralized_oracle(self):
        partix, collection = _replicated_partix()
        query = _count_query(collection)
        central = partix.execute_centralized(query, "central").result_text
        partix.cluster.site("site0").driver = _DeadDriver()
        result = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )
        assert result.result_text == central
        assert result.failover_count >= 1

    def test_all_replicas_dead_fail_fast_raises(self):
        partix, collection = _replicated_partix()
        partix.cluster.site("site0").driver = _DeadDriver()
        partix.cluster.site("mirror").driver = _DeadDriver()
        with pytest.raises(DispatchError) as info:
            partix.execute(
                _item_query(collection),
                collection=collection.name,
                execution_mode="simulated",
            )
        assert "tried sites" in str(info.value)

    def test_all_replicas_dead_degrade_reports_the_dropped_fragment(self):
        dispatcher = ParallelDispatcher(
            retries=1, failure_policy=DEGRADE, sleep=lambda s: None
        )
        partix, collection = _replicated_partix(dispatcher=dispatcher)
        query = _item_query(collection)
        healthy = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )
        partix.cluster.site("site0").driver = _DeadDriver()
        partix.cluster.site("mirror").driver = _DeadDriver()
        result = partix.execute(
            query, collection=collection.name, execution_mode="simulated"
        )
        assert result.result_text != healthy.result_text  # fragment dropped
        degraded = [note for note in result.notes if "degraded" in note]
        assert len(degraded) == 1
        assert "tried sites site0, mirror" in degraded[0]

    def test_lowering_routes_new_plans_away_from_an_ejected_site(self):
        partix, collection = _replicated_partix()
        query = _item_query(collection)
        before = partix.explain(query, collection.name)
        assert any(sq.site == "site0" for sq in before.subqueries)

        for _ in range(partix.site_health.ejection_threshold):
            partix.site_health.record_failure("site0")
        after = partix.explain(query, collection.name)
        assert not any(sq.site == "site0" for sq in after.subqueries)
        assert any(
            "avoided ejected site" in note for note in after.notes
        )
        # Readmission restores the original routing.
        partix.site_health.readmit("site0")
        restored = partix.explain(query, collection.name)
        assert restored.render() == before.render()


class TestTcpFailover:
    def test_killed_tcp_replica_fails_over_byte_identical(self):
        partix, collection = _replicated_partix()
        query = _item_query(collection)
        central = partix.execute_centralized(
            _count_query(collection), "central"
        ).result_text
        partix.start_tcp()
        try:
            healthy = partix.execute(
                query, collection=collection.name, execution_mode="tcp"
            )
            victim = healthy.round.executions[0].site
            assert victim != "mirror"

            # The server process dies while the coordinator holds pooled
            # sockets to it — the retry discovers the corpse mid-use.
            partix.tcp.kill(victim)
            result = partix.execute(
                query, collection=collection.name, execution_mode="tcp"
            )
            assert result.result_text == healthy.result_text
            assert result.failover_count >= 1
            assert any(e.site == "mirror" for e in result.round.executions)
            assert not any("degraded" in note for note in result.notes)

            counted = partix.execute(
                _count_query(collection),
                collection=collection.name,
                execution_mode="tcp",
            )
            assert counted.result_text == central
        finally:
            partix.stop_tcp()

    def test_all_tcp_replicas_dead_fail_fast_raises(self):
        partix, collection = _replicated_partix()
        partix.start_tcp()
        try:
            partix.tcp.kill("site0")
            partix.tcp.kill("mirror")
            with pytest.raises(DispatchError):
                partix.execute(
                    _item_query(collection),
                    collection=collection.name,
                    execution_mode="tcp",
                )
        finally:
            partix.stop_tcp()

    def test_tcp_transport_ping_tracks_liveness(self):
        partix, _ = _replicated_partix()
        tcp = partix.start_tcp()
        try:
            transport = tcp.transport()
            assert transport.ping("site0")
            assert not transport.ping("nonexistent")
            tcp.kill("site0")
            assert not transport.ping("site0")
        finally:
            partix.stop_tcp()


class TestKillSiteFuzzMode:
    def test_kill_site_oracle_converges_through_the_replica(self):
        from repro.fuzz.generator import spec_for_iteration
        from repro.fuzz.runner import run_case

        spec = spec_for_iteration(20060807, 0)
        outcome = run_case(spec, modes=("simulated", "tcp"), kill_site=True)
        assert outcome.ok, [m.detail for m in outcome.mismatches]
        assert any("killed tcp site" in note for note in outcome.notes)
        failover_notes = [
            note
            for note in outcome.notes
            if note.startswith("replica failovers observed:")
        ]
        assert failover_notes, outcome.notes

    def test_kill_site_requires_a_tcp_mode(self):
        from repro.fuzz.generator import spec_for_iteration
        from repro.fuzz.runner import run_case

        with pytest.raises(ValueError, match="tcp"):
            run_case(
                spec_for_iteration(20060807, 0),
                modes=("simulated",),
                kill_site=True,
            )
