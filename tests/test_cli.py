"""Tests for the ``python -m repro.bench`` command-line entry point."""

import pytest

from repro.bench.__main__ import FIGURES, main


class TestCli:
    def test_figures_registry(self):
        assert set(FIGURES) == {"7a", "7b", "7c", "7d", "headline", "modes"}

    def test_runs_modes_figure(self, capsys):
        exit_code = main(
            ["--figure", "modes", "--scale", "0.0005", "--repetitions", "1"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "simulated vs threads" in output
        assert "DIFF" not in output

    def test_runs_a_tiny_figure(self, capsys):
        exit_code = main(
            ["--figure", "7c", "--scale", "0.0005", "--repetitions", "1"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "XBenchVer" in output
        assert "Q10" in output

    def test_transmission_flag(self, capsys):
        main(
            [
                "--figure", "7c",
                "--scale", "0.0005",
                "--repetitions", "1",
                "--transmission",
            ]
        )
        assert "with transmission" in capsys.readouterr().out

    def test_requires_figure(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "9z"])
