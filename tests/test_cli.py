"""Tests for the ``python -m repro.bench`` command-line entry point."""

import pytest

from repro.bench.__main__ import FIGURES, main


class TestCli:
    def test_figures_registry(self):
        assert set(FIGURES) == {
            "7a", "7b", "7c", "7d", "headline", "modes", "transport",
            "streaming", "serving", "plans", "rebalance", "pushdown",
            "parallel",
        }

    def test_runs_modes_figure(self, capsys):
        exit_code = main(
            ["--figure", "modes", "--scale", "0.0005", "--repetitions", "1"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "simulated vs threads" in output
        assert "DIFF" not in output

    def test_modes_json_records_lane_estimates(self, capsys, tmp_path):
        import json

        path = tmp_path / "modes.json"
        exit_code = main(
            [
                "--figure", "modes",
                "--scale", "0.0005",
                "--repetitions", "1",
                "--json", str(path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(path.read_text())
        assert payload["byte_identical"] is True
        timings = [
            timing
            for run in payload["runs"]
            for timing in run["lane_timings"]
        ]
        assert timings
        for timing in timings:
            assert timing["plan_node"].startswith("scan")
            assert timing["estimated_seconds"] > 0.0
            assert timing["simulated_seconds"] > 0.0
            assert timing["threads_seconds"] > 0.0

    def test_plans_figure_prints_explain_trees(self, capsys):
        exit_code = main(["--figure", "plans", "--scale", "0.0005"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "PhysicalPlan" in output
        assert "compose [concat]" in output
        assert "id-join" in output
        assert "merge-aggregate" in output

    def test_plans_golden_update_then_match_then_drift(self, capsys, tmp_path):
        golden = tmp_path / "plans"
        assert main(
            [
                "--figure", "plans", "--scale", "0.0005",
                "--golden-dir", str(golden), "--update-golden",
            ]
        ) == 0
        assert main(
            [
                "--figure", "plans", "--scale", "0.0005",
                "--golden-dir", str(golden),
            ]
        ) == 0
        assert "golden plans match" in capsys.readouterr().out
        # Corrupt one golden: the comparison must fail with a diff.
        victim = next(golden.glob("*.txt"))
        victim.write_text(victim.read_text() + "drift\n", encoding="utf-8")
        assert main(
            [
                "--figure", "plans", "--scale", "0.0005",
                "--golden-dir", str(golden),
            ]
        ) == 1
        assert "-drift" in capsys.readouterr().out

    def test_golden_flags_require_plans_figure(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "--figure", "7c",
                    "--scale", "0.0005",
                    "--golden-dir", str(tmp_path),
                ]
            )

    def test_runs_a_tiny_figure(self, capsys):
        exit_code = main(
            ["--figure", "7c", "--scale", "0.0005", "--repetitions", "1"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "XBenchVer" in output
        assert "Q10" in output

    def test_transmission_flag(self, capsys):
        main(
            [
                "--figure", "7c",
                "--scale", "0.0005",
                "--repetitions", "1",
                "--transmission",
            ]
        )
        assert "with transmission" in capsys.readouterr().out

    def test_runs_transport_figure_and_writes_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "transport.json"
        exit_code = main(
            [
                "--figure", "transport",
                "--scale", "0.0005",
                "--repetitions", "1",
                "--json", str(path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "transport comparison" in output
        assert "(wire)" in output
        assert "ANSWERS DIFFER" not in output
        payload = json.loads(path.read_text())
        assert payload["byte_identical"] is True
        assert payload["modes"] == ["simulated", "threads", "tcp"]
        tcp_lanes = [
            lane
            for run in payload["runs"]
            for lane in run["lanes"]
            if lane["mode"] == "tcp"
        ]
        assert tcp_lanes and all(lane["wire_measured"] for lane in tcp_lanes)
        assert all(lane["bytes_sent"] > 0 for lane in tcp_lanes)

    def test_runs_streaming_figure_and_writes_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "streaming.json"
        exit_code = main(
            [
                "--figure", "streaming",
                "--scale", "0.0005",
                "--repetitions", "1",
                "--json", str(path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "monolithic vs streamed" in output
        assert "ANSWERS DIFFER" not in output
        payload = json.loads(path.read_text())
        assert payload["byte_identical"] is True
        assert payload["checks"]["peak_buffer_bounded"] is True
        assert payload["checks"]["aggregate_wire_o_fragments"] is True
        streamed_lanes = [
            lane
            for run in payload["runs"]
            for lane in run["lanes"]
            if lane["mode"] == "tcp-stream"
        ]
        assert streamed_lanes
        assert all(lane["streamed"] for lane in streamed_lanes)

    def test_json_flag_rejected_for_figures_without_payload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "--figure", "7c",
                    "--scale", "0.0005",
                    "--repetitions", "1",
                    "--json", str(tmp_path / "nope.json"),
                ]
            )

    def test_requires_figure(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["--figure", "9z"])
