"""Streaming pipeline tests: chunk frames, incremental composition,
aggregate pushdown, and failure semantics.

The byte-identity contract under test: for any query, the streamed
answer (chunks → incremental composer) must equal the monolithic answer
byte for byte, in every execution mode, for every chunk size — including
chunk boundaries that fall inside a multi-byte UTF-8 character.
"""

import socket
import threading

import pytest

from repro.cluster.dispatch import InProcessTransport, ParallelDispatcher
from repro.cluster.site import Cluster, Site
from repro.errors import StorageError, TransportError
from repro.net import SiteClient, SiteServer
from repro.net.protocol import (
    DEFAULT_CHUNK_BYTES,
    Frame,
    FrameType,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    frame_size_bucket,
    negotiate_chunk_bytes,
    recv_frame,
    send_frame,
)
from repro.partix.composer import (
    IncrementalComposer,
    ResultComposer,
    SpillBuffer,
    fold_aggregate_values,
    parse_aggregate_partial,
)
from repro.partix.decomposer import CompositionSpec, SubQuery
from repro.partix.middleware import Partix
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)


def _subqueries(count, collection="C"):
    return [
        SubQuery(f"F{i}", f"site{i}", f"{collection}_F{i}", "q")
        for i in range(count)
    ]


def _feed(sink, index, text, chunk_bytes=3):
    """Stream ``text`` into one lane in ``chunk_bytes``-sized slices."""
    data = text.encode("utf-8")
    sink.begin(index)
    for start in range(0, len(data), chunk_bytes):
        sink.chunk(index, data[start : start + chunk_bytes])
    sink.complete(index)


class TestChunkNegotiation:
    def test_clamping(self):
        assert negotiate_chunk_bytes(None) == DEFAULT_CHUNK_BYTES
        assert negotiate_chunk_bytes("garbage") == DEFAULT_CHUNK_BYTES
        assert negotiate_chunk_bytes(0) == 1
        assert negotiate_chunk_bytes(-5) == 1
        assert negotiate_chunk_bytes(7) == 7
        assert negotiate_chunk_bytes(MAX_PAYLOAD_BYTES * 10) == MAX_PAYLOAD_BYTES

    def test_frame_size_buckets_are_monotonic(self):
        assert frame_size_bucket(0) == "<=64B"
        assert frame_size_bucket(64) == "<=64B"
        assert frame_size_bucket(65) == "<=128B"
        assert frame_size_bucket(100_000) == "<=131072B"


class TestIncrementalAggregates:
    """Streamed aggregate folding must match the monolithic composer."""

    CASES = [
        ("count", ["3", "0", "4"]),
        ("sum", ["1.5", "2.25", "3"]),
        ("sum", ["0.1", "0.2", "0.3"]),  # float-order-sensitive
        ("min", ["7", "", "3.5"]),
        ("max", ["7", "", "9.25"]),
        ("avg", ["3.0 2", "", "5.0 1"]),  # partials ship (sum, count)
        ("exists", ["false", "true", "false"]),
        ("exists", ["false", "false", "false"]),
        ("empty", ["true", "true", "true"]),
        ("empty", ["true", "false", "true"]),
    ]

    @pytest.mark.parametrize("op,partial_texts", CASES)
    def test_matches_monolithic_fold(self, op, partial_texts):
        spec = CompositionSpec(kind="aggregate", aggregate=op)
        subqueries = _subqueries(len(partial_texts))
        monolithic = ResultComposer().compose(
            spec, list(zip(subqueries, partial_texts))
        )
        sink = IncrementalComposer(spec, subqueries)
        # Lanes complete in reverse order: the fold must still be
        # plan-ordered.
        for index in reversed(range(len(partial_texts))):
            _feed(sink, index, partial_texts[index], chunk_bytes=1)
        composed = sink.finish()
        assert composed.result_text == monolithic.result_text

    def test_fold_is_associative_over_partial_grouping(self):
        # Folding [a, b, c] must equal folding [fold([a, b]), c] for the
        # ops the decomposer pushes down (count/sum are plain sums).
        values = [[3.0], [4.0], [5.0]]
        whole, _ = fold_aggregate_values("sum", values)
        merged_text, _ = fold_aggregate_values("sum", values[:2])
        merged = parse_aggregate_partial("sum", merged_text)
        regrouped, _ = fold_aggregate_values("sum", [merged, values[2]])
        assert whole == regrouped

    def test_zero_partials_use_aggregate_identities(self):
        # Every fragment pruned: exists() of nothing is false, empty() of
        # nothing is true, count is 0 — centralized empty-sequence
        # semantics.
        for op, expected in (("exists", "false"), ("empty", "true"), ("count", "0")):
            sink = IncrementalComposer(
                CompositionSpec(kind="aggregate", aggregate=op), []
            )
            assert sink.finish().result_text == expected


class TestIncrementalConcat:
    def test_out_of_order_lanes_compose_in_plan_order(self):
        spec = CompositionSpec(kind="concat")
        texts = ["<Item>a</Item>", "<Item>b</Item>\n<Item>c</Item>", "<Item>d</Item>"]
        subqueries = _subqueries(len(texts))
        monolithic = ResultComposer().compose(spec, list(zip(subqueries, texts)))
        sink = IncrementalComposer(spec, subqueries)
        for index in (2, 0, 1):
            _feed(sink, index, texts[index])
        assert sink.finish().result_text == monolithic.result_text

    def test_chunk_boundary_inside_multibyte_character(self):
        spec = CompositionSpec(kind="concat")
        texts = ["<Item>café ☃ \U0001f409</Item>", "<Item>naïve</Item>"]
        subqueries = _subqueries(len(texts))
        monolithic = ResultComposer().compose(spec, list(zip(subqueries, texts)))
        for chunk_bytes in (1, 2, 3, 7):
            sink = IncrementalComposer(spec, subqueries)
            for index in range(len(texts)):
                _feed(sink, index, texts[index], chunk_bytes=chunk_bytes)
            assert sink.finish().result_text == monolithic.result_text

    def test_retry_begin_resets_stale_lane_bytes(self):
        spec = CompositionSpec(kind="concat")
        subqueries = _subqueries(2)
        sink = IncrementalComposer(spec, subqueries)
        sink.begin(0)
        sink.chunk(0, b"<Item>garbage from a dead attem")  # attempt dies
        _feed(sink, 0, "<Item>good</Item>")  # retry: begin() resets
        _feed(sink, 1, "<Item>two</Item>")
        assert sink.finish().result_text == "<Item>good</Item>\n<Item>two</Item>"

    def test_incomplete_lane_is_excluded(self):
        # A lane that never completes (all attempts exhausted under the
        # degrade policy) must not contribute half an answer.
        spec = CompositionSpec(kind="concat")
        subqueries = _subqueries(2)
        sink = IncrementalComposer(spec, subqueries)
        _feed(sink, 0, "<Item>ok</Item>")
        sink.begin(1)
        sink.chunk(1, b"<Item>half")
        assert sink.finish().result_text == "<Item>ok</Item>"

    def test_peak_buffer_and_first_chunk_accounting(self):
        spec = CompositionSpec(kind="concat")
        subqueries = _subqueries(1)
        sink = IncrementalComposer(spec, subqueries, spill_threshold=8)
        assert sink.time_to_first_chunk is None
        _feed(sink, 0, "x" * 100, chunk_bytes=4)
        assert sink.time_to_first_chunk is not None
        assert sink.chunks_received == 25
        assert sink.bytes_received == 100
        # The lane spilled at >8 in-memory bytes, so the peak stays far
        # below the 100-byte total.
        assert 0 < sink.peak_buffered_bytes <= 12
        assert sink.finish().result_text == "x" * 100


class TestSpillBuffer:
    def test_spills_past_threshold_and_round_trips(self):
        buffer = SpillBuffer(threshold=10)
        buffer.write(b"0123456789")
        assert buffer.memory_bytes == 10
        buffer.write(b"abc")  # crosses the threshold → disk
        assert buffer.memory_bytes == 0
        buffer.write(b"def")
        assert buffer.total_bytes == 16
        assert buffer.getvalue() == b"0123456789abcdef"
        assert buffer.getvalue() == b"0123456789abcdef"  # re-readable
        buffer.release()
        buffer.release()  # idempotent


class _ScriptedServer:
    """A fake site server that follows the handshake, then runs a script
    of frames for the first EXECUTE and closes the connection."""

    def __init__(self, frames):
        self.frames = frames
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        conn, _ = self.listener.accept()
        with conn:
            hello, _ = recv_frame(conn)
            send_frame(
                conn,
                Frame(
                    type=FrameType.WELCOME,
                    request_id=hello.request_id,
                    payload={
                        "version": PROTOCOL_VERSION,
                        "site": "fake",
                        "chunk_bytes": DEFAULT_CHUNK_BYTES,
                    },
                ),
            )
            request, _ = recv_frame(conn)
            for build in self.frames:
                send_frame(conn, build(request.request_id))

    def close(self):
        self.listener.close()


class TestStreamFailureSemantics:
    def _client(self, port):
        return SiteClient("127.0.0.1", port, site="fake", read_timeout=5.0)

    def test_truncated_stream_raises_transport_error(self):
        # One chunk, then the connection dies before RESULT_END: the
        # partial answer must never be mistaken for a short answer.
        server = _ScriptedServer(
            [
                lambda rid: Frame(
                    type=FrameType.RESULT_CHUNK, request_id=rid, raw=b"<Item/>"
                )
            ]
        )
        client = self._client(server.port)
        try:
            with pytest.raises(TransportError, match="truncated before RESULT_END"):
                client.execute_stream("q")
        finally:
            client.close()
            server.close()

    def test_wrong_frame_type_mid_stream_raises(self):
        server = _ScriptedServer(
            [
                lambda rid: Frame(
                    type=FrameType.PONG, request_id=rid, payload={"site": "fake"}
                )
            ]
        )
        client = self._client(server.port)
        try:
            with pytest.raises(TransportError, match="PONG"):
                client.execute_stream("q")
        finally:
            client.close()
            server.close()

    def test_error_frame_mid_stream_maps_to_original_exception(self):
        server = SiteServer(site="s0").serve_in_thread()
        client = SiteClient("127.0.0.1", server.port, site="s0")
        try:
            with pytest.raises(StorageError):
                client.execute_stream('collection("missing")//Item')
        finally:
            client.close()
            server.close()

    def test_streamed_answer_matches_monolithic_over_real_server(self):
        server = SiteServer(site="s0").serve_in_thread()
        client = SiteClient(
            "127.0.0.1", server.port, site="s0", chunk_bytes=3
        )
        try:
            client.create_collection("C")
            for index, text in enumerate(("café ☃", "naïve \U0001f409", "plain")):
                client.store_document(
                    "C", f"<Item><Name>{text}</Name></Item>", name=f"d{index}"
                )
            query = 'for $i in collection("C")//Item return $i/Name'
            assert client.negotiated_chunk_bytes == 3
            monolithic, _, _ = client.execute(query)
            chunks = []
            streamed, _, _ = client.execute_stream(
                query, on_chunk=chunks.append
            )
            assert b"".join(chunks).decode("utf-8") == monolithic.result_text
            assert streamed.result_text == ""  # text travels only as chunks
            assert streamed.result_bytes == monolithic.result_bytes
            # chunk_bytes=3 really splits the multi-byte characters.
            assert len(chunks) > monolithic.result_bytes // 4
            stats = client.server_stats()
            assert stats["frame_sizes_sent"]  # histogram is populated
        finally:
            client.close()
            server.close()


def _published_partix(fragment_count=4, item_count=18, chunk_bytes=5):
    collection = build_items_collection(item_count, kind="small", seed=11)
    cluster = Cluster.with_sites(fragment_count)
    cluster.add(Site("central"))
    partix = Partix(cluster, chunk_bytes=chunk_bytes)
    partix.publish(collection, items_horizontal_fragmentation(fragment_count))
    partix.publish_centralized(collection, "central")
    return partix, collection


class TestPartixStreaming:
    QUERIES = [
        'for $i in collection("{c}")//Item return $i/Code',
        'count(collection("{c}")//Item)',
        'exists(collection("{c}")//Item[Code = "I0001"])',
        'empty(collection("{c}")//Item[Code = "no-such-code"])',
    ]

    def test_streaming_modes_are_byte_identical(self):
        partix, collection = _published_partix()
        for template in self.QUERIES:
            query = template.format(c=collection.name)
            baseline = partix.execute(
                query, collection=collection.name, execution_mode="simulated"
            )
            for mode in ("simulated", "threads"):
                streamed = partix.execute(
                    query,
                    collection=collection.name,
                    execution_mode=mode,
                    streaming=True,
                )
                assert streamed.result_text == baseline.result_text
                assert streamed.streamed
                assert not baseline.streamed

    def test_exists_empty_push_down_as_aggregates(self):
        partix, collection = _published_partix()
        plan = partix.explain(
            'exists(collection("{c}")//Item)'.format(c=collection.name),
            collection.name,
        )
        assert plan.composition.kind == "aggregate"
        assert plan.composition.aggregate == "exists"
        plan = partix.explain(
            'empty(collection("{c}")//Item)'.format(c=collection.name),
            collection.name,
        )
        assert plan.composition.aggregate == "empty"
        # Answers match the centralized engine.
        for query, expected in (
            ('exists(collection("%s")//Item)' % collection.name, "true"),
            ('empty(collection("%s")//Item)' % collection.name, "false"),
        ):
            assert (
                partix.execute(query, collection=collection.name).result_text
                == expected
            )
            assert (
                partix.execute_centralized(query, "central").result_text
                == expected
            )

    def test_in_process_transport_emulates_chunking(self):
        partix, collection = _published_partix(chunk_bytes=2)
        transport = InProcessTransport(partix.cluster, chunk_bytes=2)
        assert transport.chunk_bytes == 2
        streamed = partix.execute(
            'for $i in collection("{c}")//Item return $i/Code'.format(
                c=collection.name
            ),
            collection=collection.name,
            execution_mode="threads",
            streaming=True,
        )
        baseline = partix.execute(
            'for $i in collection("{c}")//Item return $i/Code'.format(
                c=collection.name
            ),
            collection=collection.name,
        )
        assert streamed.result_text == baseline.result_text
        assert streamed.peak_buffered_bytes > 0
        assert streamed.first_chunk_seconds is not None

    def test_tcp_stream_alias_and_byte_identity(self):
        partix, collection = _published_partix(fragment_count=2, item_count=12)
        partix.start_tcp()
        try:
            for template in self.QUERIES:
                query = template.format(c=collection.name)
                by_mode = {
                    mode: partix.execute(
                        query, collection=collection.name, execution_mode=mode
                    )
                    for mode in ("simulated", "threads", "tcp", "tcp-stream")
                }
                texts = {r.result_text for r in by_mode.values()}
                assert len(texts) == 1, f"modes disagree on {query!r}"
                assert by_mode["tcp-stream"].streamed
                assert by_mode["tcp-stream"].wire_measured
                assert not by_mode["tcp"].streamed
        finally:
            partix.stop_tcp()

    def test_aggregate_pushdown_is_o_fragments_on_wire(self):
        partix, collection = _published_partix(fragment_count=2, item_count=12)
        partix.start_tcp()
        try:
            count = partix.execute(
                'count(collection("%s")//Item)' % collection.name,
                collection=collection.name,
                execution_mode="tcp-stream",
            )
            full = partix.execute(
                'for $i in collection("%s")//Item return $i' % collection.name,
                collection=collection.name,
                execution_mode="tcp-stream",
            )
            # The count answer ships one scalar per fragment; the full
            # scan ships every item. Frame overhead included, the
            # aggregate's wire traffic must be far below the scan's.
            assert count.bytes_received < full.bytes_received / 4
            assert count.bytes_received < 2048 * 2
        finally:
            partix.stop_tcp()
