"""Plan-cache unit tests: accounting, eviction, and the re-lower rule.

The cache stores *logical* plans keyed ``(query, collection,
catalog_version)`` — a republish bumps the version and strands stale
entries, and every hit is re-lowered against the live cost model and
site health, so a cached query can never be routed to a site that was
ejected after the plan was cached.
"""

import pytest

from repro.cluster.site import Cluster, Site
from repro.partix.catalog import FragmentAllocation
from repro.partix.middleware import Partix
from repro.plan.cache import PlanCache
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)


class TestPlanCacheUnit:
    def test_miss_then_hit_accounting(self):
        cache = PlanCache(capacity=4)
        assert cache.get("q", "c", 1) is None
        cache.put("q", "c", 1, "logical-plan")
        assert cache.get("q", "c", 1) == "logical-plan"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_catalog_version_is_part_of_the_key(self):
        cache = PlanCache(capacity=4)
        cache.put("q", "c", 1, "old-design-plan")
        # Same query, bumped version: the stale entry must not answer.
        assert cache.get("q", "c", 2) is None

    def test_collection_is_part_of_the_key(self):
        cache = PlanCache(capacity=4)
        cache.put("q", "c1", 1, "plan-one")
        assert cache.get("q", "c2", 1) is None

    def test_lru_eviction_stays_within_capacity(self):
        cache = PlanCache(capacity=2)
        cache.put("q1", "c", 1, "p1")
        cache.put("q2", "c", 1, "p2")
        cache.get("q1", "c", 1)  # q1 is now most-recent
        cache.put("q3", "c", 1, "p3")  # evicts q2, the LRU entry
        assert len(cache) == 2
        assert cache.get("q2", "c", 1) is None
        assert cache.get("q1", "c", 1) == "p1"
        assert cache.get("q3", "c", 1) == "p3"
        assert cache.stats()["evictions"] == 1

    def test_put_is_idempotent_for_a_key(self):
        cache = PlanCache(capacity=2)
        cache.put("q", "c", 1, "p")
        cache.put("q", "c", 1, "p-again")
        assert len(cache) == 1
        assert cache.get("q", "c", 1) == "p-again"

    def test_clear_resets_entries_but_not_counters(self):
        cache = PlanCache(capacity=2)
        cache.put("q", "c", 1, "p")
        cache.get("q", "c", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


def _replicated_partix(plan_cache, fragment_count=2, item_count=24):
    """A published Partix whose ``mirror`` site replicates every fragment."""
    collection = build_items_collection(item_count, kind="small", seed=11)
    cluster = Cluster.with_sites(fragment_count)
    cluster.add(Site("mirror"))
    partix = Partix(cluster, plan_cache=plan_cache)
    design = items_horizontal_fragmentation(fragment_count)
    allocations = []
    for index, fragment in enumerate(design.fragments):
        allocations.append(
            FragmentAllocation(
                fragment=fragment.name,
                site=f"site{index % fragment_count}",
                stored_collection=fragment.name,
            )
        )
        allocations.append(
            FragmentAllocation(
                fragment=fragment.name,
                site="mirror",
                stored_collection=fragment.name,
            )
        )
    partix.publish(collection, design, allocations=allocations)
    return partix, collection


def _item_query(collection):
    return 'for $i in collection("%s")//Item return $i/Code' % collection.name


class TestPlanCacheInMiddleware:
    def test_repeat_executions_hit_the_cache(self):
        cache = PlanCache()
        partix, collection = _replicated_partix(cache)
        query = _item_query(collection)
        first = partix.execute(query, collection=collection.name)
        second = partix.execute(query, collection=collection.name)
        assert second.result_text == first.result_text
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_cached_plan_relowers_away_from_an_ejected_site(self):
        # Regression: the cache stores the LOGICAL plan, so a hit is
        # re-lowered against live site health — a site ejected after the
        # plan was cached must not appear in the next execution's routing.
        cache = PlanCache()
        partix, collection = _replicated_partix(cache)
        query = _item_query(collection)
        warm = partix.execute(query, collection=collection.name)
        assert any(
            execution.site == "site0" for execution in warm.round.executions
        )

        for _ in range(partix.site_health.ejection_threshold):
            partix.site_health.record_failure("site0")
        rerouted = partix.execute(query, collection=collection.name)
        assert cache.stats()["hits"] >= 1  # the plan DID come from the cache
        assert not any(
            execution.site == "site0"
            for execution in rerouted.round.executions
        )
        assert rerouted.result_text == warm.result_text

    def test_uncached_middleware_still_plans_from_scratch(self):
        partix, collection = _replicated_partix(plan_cache=None)
        assert partix.plan_cache is None
        query = _item_query(collection)
        result = partix.execute(query, collection=collection.name)
        assert result.result_text
