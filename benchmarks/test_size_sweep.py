"""Database-size sweep (§5): 5/20/100/250MB grid.

Expected shapes: "in small databases (i.e., 5Mb) the performance gain
obtained is not enough to justify the use of fragmentation"; gains grow
with database size for horizontal fragmentation; for vertical
fragmentation "as the database size grows, the performance gains
decrease" (single-fragment wins shrink relative to the join costs).
"""

import pytest

from repro.bench import build_items_scenario, build_xbench_scenario

SIZES = (5, 20, 100, 250)


@pytest.fixture(scope="module")
def horizontal_results(scale, repetitions):
    results = {}
    for paper_mb in SIZES:
        scenario = build_items_scenario(
            "small", paper_mb=paper_mb, fragment_count=4, scale=scale
        )
        results[paper_mb] = scenario.run(repetitions=repetitions)
    return results


@pytest.mark.parametrize("paper_mb", SIZES)
def test_workload_by_size(benchmark, scale, paper_mb):
    scenario = build_items_scenario(
        "small", paper_mb=paper_mb, fragment_count=4, scale=scale
    )
    q8 = next(q for q in scenario.queries if q.qid == "Q8")
    benchmark.pedantic(
        lambda: scenario.partix.execute(q8.text),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )


def test_shape_speedup_tracks_fragment_skew(horizontal_results):
    """Fragmented time is bounded by the largest fragment: with the
    non-uniform Section distribution (4 fragments, largest share ≈0.48)
    the scan-query speedup sits near 1/0.48 ≈ 2.1x at every size.

    This is where our reproduction *deviates knowingly* from the paper:
    the paper's relative gains grew with database size because eXist's
    centralized times grew superlinearly (a 250MB database against 512MB
    of RAM); a linear in-memory engine cannot reproduce that, so the
    reproducible invariant is the skew bound (see EXPERIMENTS.md, S-DBS).
    """
    speedups = {
        mb: result.run_by_id("Q8").speedup
        for mb, result in horizontal_results.items()
    }
    print(f"\nQ8 speedup by paper size: {speedups}")
    for mb in (20, 100, 250):
        assert 1.5 <= speedups[mb] <= 3.5, (
            f"{mb}MB speedup {speedups[mb]:.2f} strays from the skew bound"
        )


def test_shape_absolute_gains_grow_with_size(horizontal_results):
    """The *absolute* time saved by fragmentation grows with database
    size — the operational content of the paper's "small databases do not
    justify fragmentation" observation."""
    saved = {
        mb: (
            result.run_by_id("Q8").centralized_seconds
            - result.run_by_id("Q8").fragmented_seconds
        )
        for mb, result in horizontal_results.items()
    }
    print(f"\nQ8 absolute saving by paper size (s): "
          f"{ {mb: round(v, 3) for mb, v in saved.items()} }")
    assert saved[250] > saved[100] > saved[5]
    assert saved[5] < 0.15, "the 5MB-point saving should be tiny in absolute terms"


def test_shape_vertical_gains_shrink_with_size(scale, repetitions):
    """Vertical fragmentation: single-fragment speedups decrease as the
    database grows (paper: by 250MB some queries match centralized)."""
    small = build_xbench_scenario(paper_mb=20, scale=scale).run(
        repetitions=repetitions
    )
    large = build_xbench_scenario(paper_mb=250, scale=scale).run(
        repetitions=repetitions
    )
    # Q5 scans the dominant body fragment: its advantage cannot grow with
    # size (the fragment is ~the whole database).
    q5_small = small.run_by_id("Q5").speedup
    q5_large = large.run_by_id("Q5").speedup
    print(f"\nvertical Q5 speedup: 20MB-point {q5_small:.2f}x,"
          f" 250MB-point {q5_large:.2f}x")
    assert q5_large < q5_small * 1.5, "body-bound vertical gain should not grow"
