"""Figure 7(d): StoreHyb — hybrid fragmentation, FragMode1 vs FragMode2.

The SD store splits into a remainder fragment plus four Section-based
item fragments, materialized as independent per-item documents
(FragMode1) or as one pruned document per fragment (FragMode2). Expected
shapes (paper §5):

* FragMode1 "has proved to be very inefficient" — parsing hundreds of
  small documents is slower than parsing one large document;
* FragMode2 "beats the centralized approach in most of the cases" once
  transmission time is excluded;
* the Items-pruning queries (Q9, Q10) always beat centralized;
* with transmission counted, the whole-Item result sizes erode the win.
"""

import pytest

from repro.bench import build_store_scenario, format_scenario_table
from repro.partix import FragMode

PAPER_MB = 100


@pytest.fixture(scope="module")
def scenario_mode1(scale):
    return build_store_scenario(
        paper_mb=PAPER_MB, frag_mode=FragMode.INDEPENDENT_DOCUMENTS, scale=scale
    )


@pytest.fixture(scope="module")
def scenario_mode2(scale):
    return build_store_scenario(
        paper_mb=PAPER_MB, frag_mode=FragMode.SINGLE_DOCUMENT, scale=scale
    )


@pytest.fixture(scope="module")
def result_mode1(scenario_mode1, repetitions):
    return scenario_mode1.run(repetitions=repetitions)


@pytest.fixture(scope="module")
def result_mode2(scenario_mode2, repetitions):
    return scenario_mode2.run(repetitions=repetitions)


def test_fragmode1_workload(benchmark, scenario_mode1):
    def run_workload():
        for query in scenario_mode1.queries:
            scenario_mode1.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)


def test_fragmode2_workload(benchmark, scenario_mode2):
    def run_workload():
        for query in scenario_mode2.queries:
            scenario_mode2.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)


def test_shape_fragmode2_beats_fragmode1(result_mode1, result_mode2):
    """Item-region queries run faster under FragMode2 (paper's FragMode
    finding, with document-level index pruning off as in eXist 2005)."""
    print("\nFragMode1 (independent item documents):")
    print(format_scenario_table(result_mode1))
    print("\nFragMode2 (single pruned document):")
    print(format_scenario_table(result_mode2))
    item_queries = [f"Q{i}" for i in range(1, 9)] + ["Q11"]
    mode1_total = sum(
        result_mode1.run_by_id(q).fragmented_seconds for q in item_queries
    )
    mode2_total = sum(
        result_mode2.run_by_id(q).fragmented_seconds for q in item_queries
    )
    print(
        f"\nitem-query totals: FragMode1 {mode1_total * 1000:.0f}ms,"
        f" FragMode2 {mode2_total * 1000:.0f}ms"
    )
    assert mode2_total < mode1_total


def test_shape_items_pruning_queries_always_win(result_mode1, result_mode2):
    """Q9/Q10 prune the Items element and win in both modes (paper)."""
    for result in (result_mode1, result_mode2):
        for qid in ("Q9", "Q10"):
            assert result.run_by_id(qid).speedup > 1.0, (
                f"{result.name} {qid} should beat centralized"
            )


def test_shape_fragmode2_wins_without_transmission(result_mode2):
    """Paper: "Without considering [transmission] time, FragMode2 wins in
    all databases, in all queries" (modulo one small-database anomaly)."""
    wins = sum(run.speedup > 1.0 for run in result_mode2.runs)
    assert wins >= 9, f"FragMode2 wins only {wins}/11 without transmission"
    assert all(run.results_match for run in result_mode2.runs)


def test_shape_transmission_erodes_big_results(result_mode2):
    """Whole-Item queries lose more of their margin to transmission than
    code/name-only queries (the paper's decisive observation)."""
    big = result_mode2.run_by_id("Q5")  # whole Items
    small = result_mode2.run_by_id("Q8")  # names only
    big_erosion = big.speedup / big.speedup_with_transmission
    small_erosion = small.speedup / small.speedup_with_transmission
    print(
        f"\ntransmission erosion: whole-Item {big_erosion:.3f}x vs"
        f" names-only {small_erosion:.3f}x"
    )
    assert big.fragmented_result_bytes > small.fragmented_result_bytes
