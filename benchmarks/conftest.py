"""Shared benchmark configuration.

Scale: every paper database size is multiplied by ``REPRO_SCALE``
(default 1/100; export e.g. ``REPRO_SCALE=0.02`` for a heavier run).
Scenario construction is session-scoped — databases are generated and
published once per benchmark session.
"""

from __future__ import annotations

import os

import pytest

SCALE = float(os.environ.get("REPRO_SCALE", 1 / 100))
REPETITIONS = int(os.environ.get("REPRO_REPETITIONS", 2))


def pytest_report_header(config):
    return (
        f"PartiX reproduction benchmarks — scale={SCALE:g}"
        f" (paper sizes x {SCALE:g}), repetitions={REPETITIONS}"
    )


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def repetitions():
    return REPETITIONS
