"""Figure 7(c): XBenchVer — vertical fragmentation of article documents.

Three fragments (prolog / body / epilog). Expected shapes (paper §5):
"the main benefits occur for queries that use a single fragment"; queries
needing several fragments "can be slowed down by fragmentation" (the join
reconstruction is much more expensive than a union).
"""

import pytest

from repro.bench import build_xbench_scenario, format_scenario_table

PAPER_MB = 100

SINGLE_FRAGMENT = ("Q1", "Q2", "Q3", "Q5", "Q6")
MULTI_FRAGMENT = ("Q4", "Q7", "Q8", "Q9")
# Queries confined to the *small* fragments (prolog/epilog): the clean
# vertical win. The body fragment is ~95% of every article, so Q5 (single
# fragment but body-bound) gains little — also a paper observation.
SMALL_FRAGMENT_ONLY = ("Q1", "Q2", "Q3", "Q6")
# Multi-fragment queries that must fetch the dominant body fragment and
# pay the ID-join over it.
BODY_JOIN = ("Q4", "Q8", "Q9")


@pytest.fixture(scope="module")
def scenario(scale):
    return build_xbench_scenario(paper_mb=PAPER_MB, scale=scale)


@pytest.fixture(scope="module")
def result(scenario, repetitions):
    return scenario.run(repetitions=repetitions)


def test_single_fragment_queries(benchmark, scenario):
    queries = [q for q in scenario.queries if q.qid in SINGLE_FRAGMENT]

    def run_workload():
        for query in queries:
            scenario.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)


def test_multi_fragment_queries(benchmark, scenario):
    queries = [q for q in scenario.queries if q.qid in MULTI_FRAGMENT]

    def run_workload():
        for query in queries:
            scenario.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=1, iterations=1, warmup_rounds=1)


def test_shape_single_fragment_queries_win(result):
    print()
    print(format_scenario_table(result))
    speedups = [result.run_by_id(q).speedup for q in SMALL_FRAGMENT_ONLY]
    assert all(s > 1.0 for s in speedups), (
        f"small-fragment speedups: {speedups}"
    )
    assert all(run.results_match for run in result.runs)


def test_shape_multi_fragment_queries_pay_the_join(result):
    """Queries that fetch the dominant body fragment and pay the ID-join
    do far worse than the clean single-small-fragment queries; at least
    one falls behind the centralized baseline (paper: multi-fragment
    queries "can be slowed down by fragmentation")."""
    small = [result.run_by_id(q).speedup for q in SMALL_FRAGMENT_ONLY]
    joins = [result.run_by_id(q).speedup for q in BODY_JOIN]
    print(f"\nsmall-fragment speedups: {small}")
    print(f"body-join speedups: {joins}")
    assert max(joins) < min(small), (
        "body-join queries should do worse than small-fragment queries"
    )
    assert min(joins) < 1.0, "the join should cost more than centralized"


def test_shape_body_bound_single_fragment_gains_little(result, scenario):
    """Q5 lives in one fragment, but that fragment is ~the whole database.

    The paper's mechanism is byte volume: a parse-on-access engine pays
    per byte, so a query localized to a fragment holding nearly all the
    bytes gains almost nothing. The binary node tables replaced that
    parse with a node-proportional decode, and the body fragment holds
    most of the *bytes* but a minority of the *nodes* (prolog/epilog are
    node-dense), so Q5's wall-clock gain is no longer reliably below the
    small-fragment queries' — see EXPERIMENTS.md. The assertion
    therefore pins the deterministic byte share the claim rests on.
    """
    q5 = result.run_by_id("Q5")
    assert q5.subqueries == 1
    plan = scenario.partix.explain(
        next(q for q in scenario.queries if q.qid == "Q5").text
    )
    (q5_fragment,) = plan.fragment_names
    catalog = scenario.partix.distribution_catalog
    shares = {}
    total = 0
    for allocation in catalog.allocations(scenario.collection_name):
        stats = catalog.statistics(
            scenario.collection_name, allocation.fragment, allocation.site
        )
        if stats is not None and allocation.fragment not in shares:
            shares[allocation.fragment] = stats.bytes
            total += stats.bytes
    shares = {fragment: size / total for fragment, size in shares.items()}
    print(f"\nQ5 fragment {q5_fragment} byte share {shares[q5_fragment]:.3f}")
    # Q5's fragment is ~the whole database; the clean vertical wins read
    # fragments that are a sliver of it.
    assert shares[q5_fragment] > 0.9
    assert all(
        share < 0.05
        for fragment, share in shares.items()
        if fragment != q5_fragment
    )
    # And localization buys Q5 no document-level pruning: the fragment
    # holds every article's body, so it materializes as many documents
    # as the centralized baseline.
    assert q5.fragmented_docs_parsed >= q5.centralized_docs_parsed
