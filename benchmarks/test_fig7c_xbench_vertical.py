"""Figure 7(c): XBenchVer — vertical fragmentation of article documents.

Three fragments (prolog / body / epilog). Expected shapes (paper §5):
"the main benefits occur for queries that use a single fragment"; queries
needing several fragments "can be slowed down by fragmentation" (the join
reconstruction is much more expensive than a union).
"""

import pytest

from repro.bench import build_xbench_scenario, format_scenario_table

PAPER_MB = 100

SINGLE_FRAGMENT = ("Q1", "Q2", "Q3", "Q5", "Q6")
MULTI_FRAGMENT = ("Q4", "Q7", "Q8", "Q9")
# Queries confined to the *small* fragments (prolog/epilog): the clean
# vertical win. The body fragment is ~95% of every article, so Q5 (single
# fragment but body-bound) gains little — also a paper observation.
SMALL_FRAGMENT_ONLY = ("Q1", "Q2", "Q3", "Q6")
# Multi-fragment queries that must fetch the dominant body fragment and
# pay the ID-join over it.
BODY_JOIN = ("Q4", "Q8", "Q9")


@pytest.fixture(scope="module")
def scenario(scale):
    return build_xbench_scenario(paper_mb=PAPER_MB, scale=scale)


@pytest.fixture(scope="module")
def result(scenario, repetitions):
    return scenario.run(repetitions=repetitions)


def test_single_fragment_queries(benchmark, scenario):
    queries = [q for q in scenario.queries if q.qid in SINGLE_FRAGMENT]

    def run_workload():
        for query in queries:
            scenario.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)


def test_multi_fragment_queries(benchmark, scenario):
    queries = [q for q in scenario.queries if q.qid in MULTI_FRAGMENT]

    def run_workload():
        for query in queries:
            scenario.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=1, iterations=1, warmup_rounds=1)


def test_shape_single_fragment_queries_win(result):
    print()
    print(format_scenario_table(result))
    speedups = [result.run_by_id(q).speedup for q in SMALL_FRAGMENT_ONLY]
    assert all(s > 1.0 for s in speedups), (
        f"small-fragment speedups: {speedups}"
    )
    assert all(run.results_match for run in result.runs)


def test_shape_multi_fragment_queries_pay_the_join(result):
    """Queries that fetch the dominant body fragment and pay the ID-join
    do far worse than the clean single-small-fragment queries; at least
    one falls behind the centralized baseline (paper: multi-fragment
    queries "can be slowed down by fragmentation")."""
    small = [result.run_by_id(q).speedup for q in SMALL_FRAGMENT_ONLY]
    joins = [result.run_by_id(q).speedup for q in BODY_JOIN]
    print(f"\nsmall-fragment speedups: {small}")
    print(f"body-join speedups: {joins}")
    assert max(joins) < min(small), (
        "body-join queries should do worse than small-fragment queries"
    )
    assert min(joins) < 1.0, "the join should cost more than centralized"


def test_shape_body_bound_single_fragment_gains_little(result):
    """Q5 lives in one fragment, but that fragment is ~the whole database:
    its speedup stays well below the small-fragment queries'."""
    q5 = result.run_by_id("Q5").speedup
    small = min(result.run_by_id(q).speedup for q in SMALL_FRAGMENT_ONLY)
    print(f"\nbody-bound Q5 speedup {q5:.2f}x vs min small-fragment {small:.2f}x")
    assert q5 < small
