"""Figure 7(a): ItemsSHor — horizontal fragmentation, ~2KB documents.

Regenerates the paper's panel: the 8-query workload over the small-item
database, centralized vs 2/4/8 Section-based fragments. Expected shape
(paper §5): fragmentation reduces response time for most queries, and the
text-search / aggregation queries (Q5-Q8) benefit most.
"""

import pytest

from repro.bench import build_items_scenario, format_scenario_table, summarize_wins

PAPER_MB = 100


@pytest.fixture(scope="module")
def scenarios(scale):
    return {
        count: build_items_scenario(
            "small", paper_mb=PAPER_MB, fragment_count=count, scale=scale
        )
        for count in (2, 4, 8)
    }


@pytest.fixture(scope="module")
def results(scenarios, repetitions):
    return {
        count: scenario.run(repetitions=repetitions)
        for count, scenario in scenarios.items()
    }


@pytest.mark.parametrize("fragment_count", [2, 4, 8])
def test_fragmented_workload(benchmark, scenarios, fragment_count):
    """Wall time of the whole 8-query workload over the fragments."""
    scenario = scenarios[fragment_count]

    def run_workload():
        for query in scenario.queries:
            scenario.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)


def test_centralized_workload(benchmark, scenarios):
    scenario = scenarios[2]

    def run_workload():
        for query in scenario.queries:
            scenario.partix.execute_centralized(query.text, "central")

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)


def test_shape_fragmentation_wins(results):
    """Paper: "fragmentation reduces the response time for most queries"."""
    for count, result in results.items():
        print()
        print(format_scenario_table(result))
        summary = summarize_wins(result)
        assert summary["wins"] >= 6, (
            f"{count} fragments: only {summary['wins']}/8 queries sped up"
        )
        assert all(run.results_match for run in result.runs)


def test_shape_text_search_benefits_most(results):
    """Paper: text search + aggregation (Q5-Q8) gain significantly."""
    result = results[8]
    heavy = [result.run_by_id(q).speedup for q in ("Q5", "Q6", "Q7", "Q8")]
    assert min(heavy) > 1.5, f"Q5-Q8 speedups too small: {heavy}"


def test_shape_more_fragments_help_scan_queries(results):
    """Scan-bound queries speed up further from 2 to 8 fragments."""
    q8_series = {count: results[count].run_by_id("Q8").speedup for count in results}
    print(f"\nQ8 speedup by fragment count: {q8_series}")
    assert q8_series[8] > q8_series[2]
