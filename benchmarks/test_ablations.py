"""Ablations of the design choices DESIGN.md calls out.

1. **Document-level index pruning** — the reproduction's engine can prune
   candidate documents through full-text/value indexes, which eXist
   (2005) did not do for generic XQuery predicates. The ablation shows
   this single capability *inverts* the paper's FragMode finding: with
   pruning on, FragMode1's per-item documents become an index advantage.
2. **Parse-on-access vs parsed cache** — the paper's per-query parse cost
   is the mechanism behind fragmentation gains; caching parsed trees
   collapses it.
3. **Localization** — predicate-based fragment pruning (the decomposer's
   contribution) vs shipping every sub-query everywhere.
"""

import pytest

from repro.bench import build_store_scenario
from repro.engine import XMLEngine
from repro.partix import FragMode
from repro.workloads import build_items_collection, items_queries
from repro.xmltext import serialize

PAPER_MB = 20


def _item_query_total(result):
    item_queries = [f"Q{i}" for i in range(1, 9)] + ["Q11"]
    return sum(result.run_by_id(q).fragmented_seconds for q in item_queries)


class TestIndexPruningAblation:
    @pytest.fixture(scope="class")
    def results(self, scale, repetitions):
        results = {}
        for use_indexes in (False, True):
            for mode in (FragMode.INDEPENDENT_DOCUMENTS, FragMode.SINGLE_DOCUMENT):
                scenario = build_store_scenario(
                    paper_mb=PAPER_MB,
                    frag_mode=mode,
                    scale=scale,
                    use_indexes=use_indexes,
                )
                results[(use_indexes, mode)] = scenario.run(
                    repetitions=repetitions
                )
        return results

    def test_pruning_inverts_the_fragmode_finding(self, results):
        """Without pruning (eXist-2005 behaviour) FragMode2 wins, exactly
        as the paper reports; with document-level index pruning FragMode1
        catches up or wins, because per-item documents let the indexes
        skip parsing entirely."""
        off_mode1 = _item_query_total(
            results[(False, FragMode.INDEPENDENT_DOCUMENTS)]
        )
        off_mode2 = _item_query_total(results[(False, FragMode.SINGLE_DOCUMENT)])
        on_mode1 = _item_query_total(
            results[(True, FragMode.INDEPENDENT_DOCUMENTS)]
        )
        on_mode2 = _item_query_total(results[(True, FragMode.SINGLE_DOCUMENT)])
        print(
            f"\nitem-query totals (ms):"
            f"\n  pruning off: FragMode1 {off_mode1 * 1000:.0f},"
            f" FragMode2 {off_mode2 * 1000:.0f}"
            f"\n  pruning on:  FragMode1 {on_mode1 * 1000:.0f},"
            f" FragMode2 {on_mode2 * 1000:.0f}"
        )
        assert off_mode2 < off_mode1, "paper shape requires FragMode2 to win"
        mode1_gain = off_mode1 / on_mode1
        mode2_gain = off_mode2 / on_mode2
        assert mode1_gain > mode2_gain, (
            "index pruning should help per-item documents far more"
        )


class TestParseCacheAblation:
    def _engine(self, cache: bool) -> XMLEngine:
        engine = XMLEngine("ablate", cache_parsed=cache, use_indexes=False)
        for document in build_items_collection(150, kind="small", seed=21):
            engine.store_document("Citems", serialize(document), name=document.name)
        return engine

    def test_cache_collapses_parse_cost(self, benchmark):
        engine = self._engine(cache=True)
        query = items_queries()[7].text  # Q8: text search + count
        engine.execute(query)  # warm the cache
        benchmark.pedantic(
            lambda: engine.execute(query), rounds=3, iterations=2
        )
        assert engine.stats.documents_parsed == 150  # parsed exactly once

    def test_no_cache_reparses_every_query(self):
        engine = self._engine(cache=False)
        query = items_queries()[7].text
        first = engine.execute(query)
        second = engine.execute(query)
        assert first.documents_parsed == 150
        assert second.documents_parsed == 150
        cached = self._engine(cache=True)
        cached.execute(query)
        warm = cached.execute(query)
        print(
            f"\nQ8 parse-on-access {second.elapsed_seconds * 1000:.1f}ms vs"
            f" warm cache {warm.elapsed_seconds * 1000:.1f}ms"
        )
        assert warm.elapsed_seconds < second.elapsed_seconds


class TestLocalizationAblation:
    def test_predicate_pruning_skips_fragments(self, scale, repetitions):
        """The decomposer ships the fragmentation-matching query (Q2) to
        one fragment; without localization it would hit all four."""
        from repro.bench import build_items_scenario

        scenario = build_items_scenario(
            "small", paper_mb=PAPER_MB, fragment_count=4, scale=scale
        )
        q2 = next(q for q in scenario.queries if q.qid == "Q2")
        localized = scenario.partix.execute(q2.text)
        assert len(localized.plan.subqueries) == 1
        # Compare against a manually broadcast plan.
        from repro.partix import CompositionSpec, SubQuery, annotated
        from repro.partix.decomposer import rename_collections
        from repro.xquery.parser import parse_query
        from repro.xquery.unparse import unparse

        ast = parse_query(q2.text)
        broadcast_subqueries = []
        for allocation in scenario.partix.distribution_catalog.allocations(
            "Citems"
        ):
            renamed = rename_collections(
                ast, {"Citems": allocation.stored_collection}
            )
            broadcast_subqueries.append(
                SubQuery(
                    allocation.fragment,
                    allocation.site,
                    allocation.stored_collection,
                    unparse(renamed),
                )
            )
        broadcast = scenario.partix.execute(
            q2.text,
            plan=annotated("Citems", broadcast_subqueries, CompositionSpec("concat")),
        )
        print(
            f"\nQ2 localized {localized.parallel_seconds * 1000:.1f}ms"
            f" vs broadcast {broadcast.parallel_seconds * 1000:.1f}ms"
        )
        assert sorted(localized.result_text.split()) == sorted(
            broadcast.result_text.split()
        )
        assert localized.sequential_seconds < broadcast.sequential_seconds


class TestEscapeHotPath:
    """Guard for the serializer's escaping hot path.

    ``escape_text``/``escape_attribute`` run for every text node and
    attribute a site serializes — with streaming, that is every byte that
    crosses the wire. The shipped implementation is a chain of C-level
    ``str.replace`` scans; this guard keeps it measurably ahead of the
    per-character ``"".join`` it replaced, so a regression back to
    character-at-a-time string building fails the benchmark suite.
    """

    CORPUS = [
        "plain description text with no markup at all " * 8,
        "a <b>bold</b> claim & a 'quoted' \"value\" " * 8,
        "&&&<<<>>>" * 40,
        "unicode café ☃ \U0001f409 & <tags> " * 8,
    ]

    @staticmethod
    def _naive_escape(value: str) -> str:
        from repro.xmltext.escape import _TEXT_ESCAPES

        if not any(c in value for c in "&<>"):
            return value
        return "".join(_TEXT_ESCAPES.get(c, c) for c in value)

    def _best_of(self, func, rounds: int = 5, iterations: int = 200) -> float:
        import time

        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(iterations):
                for text in self.CORPUS:
                    func(text)
            best = min(best, time.perf_counter() - start)
        return best

    def test_translate_beats_per_char_join(self):
        from repro.xmltext.escape import escape_text

        for text in self.CORPUS:
            assert escape_text(text) == self._naive_escape(text)
        shipped = self._best_of(escape_text)
        naive = self._best_of(self._naive_escape)
        print(
            f"\nescape_text best-of-5: replace-chain {shipped * 1000:.2f}ms"
            f" vs per-char join {naive * 1000:.2f}ms"
            f" ({naive / shipped:.1f}x)"
        )
        assert shipped < naive, (
            "escape_text regressed behind the per-character join baseline"
        )

    def test_attribute_escaping_matches_reference(self):
        from repro.xmltext.escape import escape_attribute

        assert (
            escape_attribute("a & b <c> 'd' \"e\"")
            == "a &amp; b &lt;c&gt; &apos;d&apos; &quot;e&quot;"
        )
        clean = "no specials here"
        assert escape_attribute(clean) == clean


class TestBinaryHotPath:
    """Guards for the binary node-table hot paths (PR 9).

    The engine answers structural tests with prefix-label comparisons
    over the preorder table and materializes documents by decoding that
    table instead of re-tokenizing XML text. Both claims are measurable;
    these guards keep the fast paths ahead of the DOM-era baselines they
    replaced, so a regression back to parse-on-access or pointer-chasing
    structural tests fails the benchmark suite.
    """

    def _corpus(self):
        from repro.datamodel.binary import BinaryXMLDocument, StringPool
        from repro.xmltext import serialize

        pool = StringPool()
        documents = list(build_items_collection(60, kind="small", seed=9))
        texts = [serialize(document) for document in documents]
        binaries = [
            BinaryXMLDocument.encode(document, pool)
            for document in documents
        ]
        return pool, documents, texts, binaries

    @staticmethod
    def _best_of(func, rounds: int = 5) -> float:
        import time

        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - start)
        return best

    def test_label_comparison_beats_dom_walk(self):
        """Ancestor tests: label-prefix comparison vs climbing DOM
        parent pointers (the cheapest tree-walk formulation — a
        childless DOM would need a full descendant search)."""
        pool, _, _, binaries = self._corpus()
        binary = binaries[0]
        trees = [binary.materialize() for _ in range(1)]
        tree = trees[0]
        nodes = list(tree.nodes())
        count = len(binary)
        pairs = [
            (a, d)
            for a in range(count)
            for d in range(count)
            if a != d
        ]

        def dom_is_ancestor(ancestor, descendant):
            node = descendant.parent
            while node is not None:
                if node is ancestor:
                    return True
                node = node.parent
            return False

        # Preorder index i ↔ the i-th node of the materialized tree, so
        # both formulations answer the very same questions — checked
        # before timing them.
        for a, d in pairs:
            assert binary.is_ancestor(a, d) == dom_is_ancestor(
                nodes[a], nodes[d]
            )

        label_seconds = self._best_of(
            lambda: [binary.is_ancestor(a, d) for a, d in pairs]
        )
        dom_seconds = self._best_of(
            lambda: [dom_is_ancestor(nodes[a], nodes[d]) for a, d in pairs]
        )
        print(
            f"\n{len(pairs)} ancestor tests best-of-5:"
            f" labels {label_seconds * 1000:.2f}ms vs"
            f" DOM walk {dom_seconds * 1000:.2f}ms"
            f" ({dom_seconds / label_seconds:.1f}x)"
        )
        assert label_seconds < dom_seconds, (
            "prefix-label structural tests regressed behind the DOM walk"
        )

    def test_binary_decode_beats_reparse(self):
        """Per-document access: decoding the preorder table vs
        re-tokenizing the serialized XML text (what every query paid
        before binary storage)."""
        from repro.datamodel.binary import BinaryXMLDocument
        from repro.xmltext import parse_xml

        pool, documents, texts, binaries = self._corpus()
        tables = [binary.to_bytes() for binary in binaries]

        for text, binary, document in zip(texts, binaries, documents):
            assert binary.materialize().tree_equal(parse_xml(text))

        decode_seconds = self._best_of(
            lambda: [
                BinaryXMLDocument.from_bytes(table, pool).materialize()
                for table in tables
            ]
        )
        reparse_seconds = self._best_of(
            lambda: [parse_xml(text) for text in texts]
        )
        print(
            f"\n{len(texts)} document accesses best-of-5:"
            f" binary decode {decode_seconds * 1000:.2f}ms vs"
            f" reparse {reparse_seconds * 1000:.2f}ms"
            f" ({reparse_seconds / decode_seconds:.1f}x)"
        )
        assert decode_seconds < reparse_seconds, (
            "binary decode regressed behind re-parsing the XML text"
        )


class TestAdvisorDesign:
    """The auto-designed fragmentation (paper future work) should hold
    its own against the paper's hand-made Section design."""

    def test_advisor_matches_manual_design(self, scale, repetitions):
        from repro.bench.scenarios import CENTRAL_SITE, Scenario, _make_cluster
        from repro.bench.scenarios import PAPER_DOC_OVERHEAD
        from repro.bench import build_items_scenario, scaled_point, items_count_for
        from repro.partix import FragmentationAdvisor, Partix, WorkloadQuery
        from repro.workloads import build_items_collection, items_queries

        manual = build_items_scenario(
            "small", paper_mb=PAPER_MB, fragment_count=4, scale=scale
        ).run(repetitions=repetitions)

        point = scaled_point(PAPER_MB, scale)
        collection = build_items_collection(
            items_count_for(point.target_bytes, "small"), kind="small", seed=42
        )
        workload = [WorkloadQuery(q.text) for q in items_queries()]
        design = FragmentationAdvisor(
            collection, workload, site_count=4
        ).recommend()
        cluster = _make_cluster(4, False, PAPER_DOC_OVERHEAD)
        partix = Partix(cluster)
        partix.publish(collection, design.fragmentation)
        partix.publish_centralized(collection, CENTRAL_SITE)
        scenario = Scenario(
            "Advisor", partix, collection.name, items_queries(),
            PAPER_MB, point.target_bytes, len(design.fragmentation),
        )
        auto = scenario.run(repetitions=repetitions)

        manual_total = sum(run.fragmented_seconds for run in manual.runs)
        auto_total = sum(run.fragmented_seconds for run in auto.runs)
        print(
            f"\nworkload totals: manual design {manual_total * 1000:.0f}ms,"
            f" advisor design {auto_total * 1000:.0f}ms"
        )
        assert all(run.results_match for run in auto.runs)
        assert auto_total < manual_total * 1.6, (
            "advisor design should be in the same league as the manual one"
        )


class TestShardPipelineGuards:
    """Guards for intra-site sharded evaluation (the shard pipeline).

    The degree chooser prices serial vs sharded scans from fragment
    statistics plus a per-shard startup cost; these guards pin both
    sides of that bargain: a large fragment must actually get cheaper
    when sharded, and a tiny fragment must never pay pool startup.
    """

    def _engine(self, shard_workers: int) -> XMLEngine:
        from repro.bench.scenarios import PAPER_DOC_OVERHEAD

        engine = XMLEngine(
            "shard-guard",
            shard_workers=shard_workers,
            per_document_overhead=PAPER_DOC_OVERHEAD,
            use_indexes=False,
        )
        for document in build_items_collection(96, kind="small", seed=33):
            engine.store_document(
                "Citems", serialize(document), name=document.name
            )
        return engine

    def test_sharded_scan_beats_serial_on_large_fragment(self):
        """One 96-document fragment, measured on the suite's standard
        elapsed time (wall plus the paper's per-document access
        overhead, which sharded evaluation accrues concurrently)."""
        engine = self._engine(shard_workers=4)
        query = 'collection("Citems")/Item/Code'
        try:
            serial_text = engine.execute(query).result_text
            sharded_text = engine.execute(
                query, parallel_degree=4
            ).result_text
            assert sharded_text == serial_text

            def best_of(degree):
                best = float("inf")
                for _ in range(5):
                    result = engine.execute(query, parallel_degree=degree)
                    best = min(best, result.elapsed_seconds)
                return best

            serial_seconds = best_of(None)
            sharded_seconds = best_of(4)
            print(
                f"\n96-document fragment best-of-5:"
                f" serial {serial_seconds * 1000:.1f}ms vs"
                f" degree-4 {sharded_seconds * 1000:.1f}ms"
                f" ({serial_seconds / sharded_seconds:.1f}x)"
            )
            assert sharded_seconds < serial_seconds, (
                "sharded scan regressed behind the serial scan"
            )
        finally:
            engine.close()

    def test_tiny_fragments_never_pay_pool_startup(self):
        """Lowering keeps small fragments serial: at the default
        statistics (8 documents) no worker count amortizes the
        per-shard startup cost, so no pool is ever touched."""
        from repro.plan.cost import CostModel, MIN_SHARD_DOCUMENTS

        for workers in (2, 4, 8, 16):
            model = CostModel(shard_workers=workers)
            assert model.shard_degree("Citems", "F", "s0") == 1

        class TinyCatalog:
            class _Stats:
                documents = MIN_SHARD_DOCUMENTS
                bytes = 2048

            def statistics(self, collection, fragment, site):
                return self._Stats()

        model = CostModel(TinyCatalog(), shard_workers=8)
        assert model.shard_degree("Citems", "F", "s0") == 1
