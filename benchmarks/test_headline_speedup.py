"""The headline claim: "up to a 72 scale up factor" (horizontal, 250MB).

The paper's largest reported gain is the Q8-class query (text search +
count) on the 250MB small-document database. We run the same
configuration at scale and report the best observed speedup across the
workload. Absolute factors differ (the authors' 72x includes eXist's
memory-pressure superlinearity on a 512MB machine); the shape requirement
is a large, fragment-count-increasing gain on Q8-class queries.
"""

import pytest

from repro.bench import build_items_scenario, format_speedup_series

PAPER_MB = 250


@pytest.fixture(scope="module")
def results(scale, repetitions):
    results = {}
    for count in (2, 4, 8):
        scenario = build_items_scenario(
            "small", paper_mb=PAPER_MB, fragment_count=count, scale=scale
        )
        results[count] = scenario.run(repetitions=repetitions)
    return results


def test_headline_configuration(benchmark, scale):
    scenario = build_items_scenario(
        "small", paper_mb=PAPER_MB, fragment_count=8, scale=scale
    )
    q8 = next(q for q in scenario.queries if q.qid == "Q8")
    benchmark.pedantic(
        lambda: scenario.partix.execute(q8.text),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )


def test_shape_large_speedup_on_q8(results):
    print()
    print(format_speedup_series(list(results.values()), "Q8"))
    best = max(result.run_by_id("Q8").speedup for result in results.values())
    print(f"best Q8 speedup observed: {best:.1f}x (paper reports up to 72x)")
    assert best >= 3.0, f"headline speedup too small: {best:.1f}x"


def test_shape_speedup_grows_with_fragments(results):
    series = [results[count].run_by_id("Q8").speedup for count in (2, 4, 8)]
    assert series[-1] > series[0], f"Q8 speedups not growing: {series}"


def test_shape_best_speedup_is_a_text_search_query(results):
    """The paper's best class: text search and/or aggregation (Q5-Q8)."""
    result = results[8]
    best = max(result.runs, key=lambda run: run.speedup)
    print(f"\nbest query at 8 fragments: {best.qid} ({best.speedup:.1f}x)")
    assert best.qid in ("Q3", "Q5", "Q6", "Q7", "Q8")
