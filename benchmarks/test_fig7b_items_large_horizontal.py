"""Figure 7(b): ItemsLHor — horizontal fragmentation, ~80KB documents.

Same design as Fig. 7(a) over large documents. Additional paper shapes:
"the eXist DBMS presents better results when dealing with large documents"
(per-document pre-processing amortizes), and "ItemsLHor presents better
results with few fragments, while ItemsSHor presents better results with
many fragments".
"""

import pytest

from repro.bench import (
    build_items_scenario,
    format_scenario_table,
    summarize_wins,
)

PAPER_MB = 100


@pytest.fixture(scope="module")
def scenarios(scale):
    return {
        count: build_items_scenario(
            "large", paper_mb=PAPER_MB, fragment_count=count, scale=scale
        )
        for count in (2, 4, 8)
    }


@pytest.fixture(scope="module")
def results(scenarios, repetitions):
    return {
        count: scenario.run(repetitions=repetitions)
        for count, scenario in scenarios.items()
    }


@pytest.mark.parametrize("fragment_count", [2, 4, 8])
def test_fragmented_workload(benchmark, scenarios, fragment_count):
    scenario = scenarios[fragment_count]

    def run_workload():
        for query in scenario.queries:
            scenario.partix.execute(query.text)

    benchmark.pedantic(run_workload, rounds=2, iterations=1, warmup_rounds=1)


def test_shape_fragmentation_wins(results):
    for count, result in results.items():
        print()
        print(format_scenario_table(result))
        summary = summarize_wins(result)
        assert summary["wins"] >= 5, (
            f"{count} fragments: only {summary['wins']}/8 queries sped up"
        )
        assert all(run.results_match for run in result.runs)


def test_shape_large_documents_scan_faster_per_byte(scale, repetitions):
    """Paper: at equal total size, the small-document database is much
    slower than the large-document one (per-document overheads)."""
    small = build_items_scenario(
        "small", paper_mb=20, fragment_count=2, scale=scale
    ).run(repetitions=repetitions)
    large = build_items_scenario(
        "large", paper_mb=20, fragment_count=2, scale=scale
    ).run(repetitions=repetitions)
    # Compare the full-scan text-search + count query (Q8), centralized.
    small_q8 = small.run_by_id("Q8").centralized_seconds
    large_q8 = large.run_by_id("Q8").centralized_seconds
    print(
        f"\nQ8 centralized at equal size: ItemsSHor {small_q8 * 1000:.1f}ms"
        f" vs ItemsLHor {large_q8 * 1000:.1f}ms"
    )
    assert large_q8 < small_q8, (
        "large-document database should outperform many-small-documents"
    )
