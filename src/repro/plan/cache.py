"""A bounded LRU cache of *logical* plans.

Decompose is the expensive, deterministic half of planning: parse +
analyze + localization against the fragmentation design. Lowering is the
cheap, *dynamic* half — it consults the live cost model and
:class:`~repro.cluster.health.SiteHealth`, so its output legitimately
changes between two executions of the same query (a replica gets
ejected, statistics move). The cache therefore stores the logical plan
and callers re-lower on every hit: a cached query still routes around an
ejected site, while skipping parse/analyze/localize entirely.

The key is ``(query, collection, catalog_version)``. The catalog version
is bumped by every design registration/replacement/unregistration, so a
republish implicitly invalidates every entry planned against the old
design — the design identity never needs to be hashed separately.

Thread-safe: the coordinator looks plans up from many worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.plan.logical import LogicalPlan

#: Default number of distinct (query, collection, version) entries kept.
DEFAULT_PLAN_CACHE_CAPACITY = 256


class PlanCache:
    """Bounded, thread-safe LRU of decomposed logical plans."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY):
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, LogicalPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(query: str, collection: Optional[str], catalog_version: int) -> tuple:
        return (query, collection, catalog_version)

    def get(
        self, query: str, collection: Optional[str], catalog_version: int
    ) -> Optional[LogicalPlan]:
        """The cached logical plan, or None; refreshes LRU order on hit."""
        key = self._key(query, collection, catalog_version)
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(
        self,
        query: str,
        collection: Optional[str],
        catalog_version: int,
        plan: LogicalPlan,
    ) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        key = self._key(query, collection, catalog_version)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counters for serving stats / bench payloads."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
