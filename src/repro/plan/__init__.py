"""Explicit query-plan IR: plan → lower → execute.

The paper's §3.3 methodology is plan-shaped — localize the global query
onto fragments, run the sub-queries in parallel, recompose — and this
package materializes that plan instead of leaving it implicit in the
decomposer/middleware control flow:

* :mod:`repro.plan.logical` — the logical IR the decomposer emits:
  ``FragmentScan`` leaves (one per relevant fragment, carrying one
  *candidate* per replica) under ``Union`` / ``MergeAggregate`` +
  ``PartialAggregate`` / ``IdJoin``, rooted in a ``Compose`` node.
* :mod:`repro.plan.cost` — the cost model: catalog fragment statistics
  (documents / bytes, recorded at publish time) combined with the
  :class:`~repro.cluster.network.NetworkModel`.
* :mod:`repro.plan.lower` — lowering to a :class:`PhysicalPlan`: one
  *lane* per scan with cost-based site/replica selection, pushdown and
  streaming recorded as plan attributes.
* :mod:`repro.plan.explain` — the indented ``EXPLAIN`` tree with
  per-node cost estimates, plus dict round-tripping.
* :mod:`repro.plan.cache` — a bounded LRU of *logical* plans keyed on
  ``(query, collection, catalog_version)``; hits re-lower against the
  live site health, so cached queries still avoid ejected sites.
* :mod:`repro.plan.executor` — the single plan-driven executor every
  execution mode runs through (modes are Transport choices, nothing
  more), and the :class:`ExecutionMode` parser.
"""

from repro.plan.cache import PlanCache
from repro.plan.cost import CostEstimate, CostModel
from repro.plan.executor import ExecutedPlan, ExecutionMode, PlanExecutor
from repro.plan.explain import plan_from_dict, plan_to_dict, render_plan
from repro.plan.logical import (
    Compose,
    FragmentScan,
    IdJoin,
    LogicalPlan,
    MergeAggregate,
    PartialAggregate,
    ScanCandidate,
    Union,
)
from repro.plan.lower import lower, lower_annotated
from repro.plan.physical import Lane, PhysicalPlan, PlanNode
from repro.plan.spec import CompositionSpec, SubQuery

__all__ = [
    "Compose",
    "CompositionSpec",
    "CostEstimate",
    "CostModel",
    "ExecutedPlan",
    "ExecutionMode",
    "FragmentScan",
    "IdJoin",
    "Lane",
    "LogicalPlan",
    "MergeAggregate",
    "PartialAggregate",
    "PhysicalPlan",
    "PlanCache",
    "PlanExecutor",
    "PlanNode",
    "ScanCandidate",
    "SubQuery",
    "Union",
    "lower",
    "lower_annotated",
    "plan_from_dict",
    "plan_to_dict",
    "render_plan",
]
