"""The physical plan: lanes, node tree, execution attributes.

A :class:`PhysicalPlan` is what :meth:`Partix.explain` returns and what
the single plan executor runs, whatever the execution mode. It keeps the
decomposer-era surface (``subqueries`` / ``composition`` / ``notes`` /
``fragment_names``) so existing callers — the composer, the fuzz oracle,
the bench scenarios — read it unchanged; ``repro.partix.decomposer``
aliases its old ``DecomposedQuery`` name to this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.plan.cost import CostEstimate
from repro.plan.spec import CompositionSpec, SubQuery


@dataclass
class PlanNode:
    """One node of the physical plan tree.

    ``op`` is the node kind (``compose`` / ``union`` /
    ``merge-aggregate`` / ``id-join`` / ``partial-aggregate`` /
    ``scan``); ``node_id`` is its stable identity, threaded into
    ``SubQueryExecution.plan_node`` so measured per-lane timings can be
    joined back to the estimates; ``detail`` carries op-specific
    attributes (fragment, site, aggregate, purpose, …) as a JSON-able
    dict.
    """

    op: str
    node_id: str
    detail: dict = field(default_factory=dict)
    estimate: Optional[CostEstimate] = None
    children: list = field(default_factory=list)


@dataclass
class Lane:
    """One physical scan assignment: plan index, node and sub-query."""

    index: int
    node_id: str
    subquery: SubQuery
    estimate: Optional[CostEstimate] = None
    #: How many replica candidates lowering chose between.
    candidates: int = 1


@dataclass
class PhysicalPlan:
    """The lowered plan the executor runs (all modes, one code path)."""

    collection: str
    root: PlanNode
    lanes: list = field(default_factory=list)
    composition: CompositionSpec = field(
        default_factory=lambda: CompositionSpec(kind="concat")
    )
    notes: list = field(default_factory=list)
    #: Execution attributes, explicit on the plan instead of scattered
    #: if/else: route partials through the incremental composer in
    #: ``chunk_bytes``-bounded chunks?
    streaming: bool = False
    chunk_bytes: Optional[int] = None

    # -- decomposer-era surface ----------------------------------------
    @property
    def subqueries(self) -> list:
        return [lane.subquery for lane in self.lanes]

    @property
    def fragment_names(self) -> list:
        return [lane.subquery.fragment for lane in self.lanes]

    # ------------------------------------------------------------------
    @property
    def estimated_parallel_seconds(self) -> float:
        """Estimated round completion: slowest site's lane budget plus
        the interior (composition-side) node costs."""
        busy: dict = {}
        for lane in self.lanes:
            if lane.estimate is not None:
                site = lane.subquery.site
                busy[site] = busy.get(site, 0.0) + lane.estimate.total_seconds
        interior = self._interior_cpu_seconds(self.root)
        return max(busy.values(), default=0.0) + interior

    def _interior_cpu_seconds(self, node: PlanNode) -> float:
        own = 0.0
        if node.op not in ("scan", "compose") and node.estimate is not None:
            own = node.estimate.cpu_seconds
        return own + sum(
            self._interior_cpu_seconds(child) for child in node.children
        )

    def estimated_lane_seconds(self) -> dict:
        """Per-lane estimated total seconds, keyed by plan node id."""
        return {
            lane.node_id: lane.estimate.total_seconds
            for lane in self.lanes
            if lane.estimate is not None
        }

    # ------------------------------------------------------------------
    def with_execution(
        self, streaming: bool, chunk_bytes: Optional[int]
    ) -> "PhysicalPlan":
        """This plan with its execution attributes set (shared tree)."""
        if self.streaming == streaming and self.chunk_bytes == chunk_bytes:
            return self
        return PhysicalPlan(
            collection=self.collection,
            root=self.root,
            lanes=self.lanes,
            composition=self.composition,
            notes=self.notes,
            streaming=streaming,
            chunk_bytes=chunk_bytes,
        )

    def with_lane_indexes(self, use_indexes: bool) -> "PhysicalPlan":
        """This plan with every lane forced to ``use_indexes``.

        The per-query override of ``Partix.execute(use_indexes=...)``:
        lowering's access-path choice (and the rendered tree) stay as
        planned, but each dispatched sub-query carries an explicit index
        setting that overrides the executing site's own configuration —
        ``False`` yields a paper-faithful full scan even at sites whose
        engines default to index pruning, ``True`` forces the probe
        everywhere. The node tree is shared; only lanes are rebuilt.
        """
        if all(
            lane.subquery.use_indexes == use_indexes for lane in self.lanes
        ):
            return self
        lanes = [
            Lane(
                index=lane.index,
                node_id=lane.node_id,
                subquery=replace(lane.subquery, use_indexes=use_indexes),
                estimate=lane.estimate,
                candidates=lane.candidates,
            )
            for lane in self.lanes
        ]
        return PhysicalPlan(
            collection=self.collection,
            root=self.root,
            lanes=lanes,
            composition=self.composition,
            notes=self.notes,
            streaming=self.streaming,
            chunk_bytes=self.chunk_bytes,
        )

    def with_lane_degree(self, degree: Optional[int]) -> "PhysicalPlan":
        """This plan with every lane forced to ``parallel_degree``.

        The per-query override of ``Partix.execute(shard_degree=...)``:
        ``degree >= 2`` asks every executing site to shard its sub-query
        across that many workers (sites without a pool, or queries the
        shard gate rejects, silently stay serial — answers are
        byte-identical either way); ``degree <= 1`` clears the lanes to
        None, forcing serial evaluation everywhere. The node tree is
        shared; only lanes are rebuilt.
        """
        value = degree if degree is not None and degree > 1 else None
        if all(lane.subquery.parallel_degree == value for lane in self.lanes):
            return self
        lanes = [
            Lane(
                index=lane.index,
                node_id=lane.node_id,
                subquery=replace(lane.subquery, parallel_degree=value),
                estimate=lane.estimate,
                candidates=lane.candidates,
            )
            for lane in self.lanes
        ]
        return PhysicalPlan(
            collection=self.collection,
            root=self.root,
            lanes=lanes,
            composition=self.composition,
            notes=self.notes,
            streaming=self.streaming,
            chunk_bytes=self.chunk_bytes,
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The indented EXPLAIN tree with per-node cost estimates."""
        from repro.plan.explain import render_plan

        return render_plan(self)

    def to_dict(self) -> dict:
        from repro.plan.explain import plan_to_dict

        return plan_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PhysicalPlan":
        from repro.plan.explain import plan_from_dict

        return plan_from_dict(payload)
