"""EXPLAIN rendering and dict round-tripping of physical plans.

The render is deterministic (the fuzz harness asserts planning twice
renders identically, and the ``plan-golden`` CI job diffs it against
checked-in snapshots), so formatting keeps to plain ``%g``-style float
formatting and raw byte counts — no locale, no rounding surprises.
"""

from __future__ import annotations

from typing import Optional

from repro.plan.cost import CostEstimate
from repro.plan.physical import Lane, PhysicalPlan, PlanNode
from repro.plan.spec import CompositionSpec, SubQuery


def _seconds(value: float) -> str:
    return f"{value:.6g}s"


def _estimate_text(op: str, estimate: Optional[CostEstimate]) -> str:
    if estimate is None:
        return ""
    parts = [f"docs={estimate.documents}", f"result={estimate.result_bytes}B"]
    parts.append(f"cpu={_seconds(estimate.cpu_seconds)}")
    if estimate.network_seconds:
        parts.append(f"net={_seconds(estimate.network_seconds)}")
    parts.append(f"total={_seconds(estimate.total_seconds)}")
    return "  est[" + " ".join(parts) + "]"


def _node_label(node: PlanNode) -> str:
    detail = node.detail
    if node.op in ("scan", "index-scan"):
        label = (
            f"{node.op} {detail.get('fragment')}"
            f" @ {detail.get('site')}/{detail.get('collection')}"
        )
        if detail.get("purpose") == "fetch":
            label += " purpose=fetch"
        if detail.get("predicate"):
            label += f" pred={detail.get('predicate')}"
        candidates = detail.get("candidates", 1)
        if candidates > 1:
            label += f" candidates={candidates}"
        degree = detail.get("parallel_degree", 1)
        if degree > 1:
            label += f" degree={degree}"
        return label
    if node.op in ("partial-aggregate", "merge-aggregate"):
        return f"{node.op}({detail.get('aggregate')})"
    if node.op == "id-join":
        label = "id-join"
        if detail.get("root_label"):
            label += f" root={detail.get('root_label')}"
        return label
    if node.op == "compose":
        return f"compose [{detail.get('kind')}]"
    return node.op


def render_plan(plan: PhysicalPlan) -> str:
    """Render ``plan`` as an indented tree with per-node estimates."""
    streaming = "on" if plan.streaming else "off"
    header = (
        f"PhysicalPlan collection={plan.collection}"
        f" composition={plan.composition.kind}"
        f" lanes={len(plan.lanes)} streaming={streaming}"
        f" est-parallel={_seconds(plan.estimated_parallel_seconds)}"
    )
    lines = [header]

    def walk(node: PlanNode, prefix: str, is_last: bool, is_root: bool):
        if is_root:
            connector, child_prefix = "", ""
        else:
            connector = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        lines.append(
            connector + _node_label(node) + _estimate_text(node.op, node.estimate)
        )
        for position, child in enumerate(node.children):
            walk(
                child,
                child_prefix,
                position == len(node.children) - 1,
                False,
            )

    walk(plan.root, "", True, True)
    for note in plan.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Dict round-tripping (mirrors repro.partix.serialization's idiom)
# ----------------------------------------------------------------------
def _node_to_dict(node: PlanNode) -> dict:
    return {
        "op": node.op,
        "node_id": node.node_id,
        "detail": dict(node.detail),
        "estimate": node.estimate.to_dict() if node.estimate else None,
        "children": [_node_to_dict(child) for child in node.children],
    }


def _node_from_dict(payload: dict) -> PlanNode:
    estimate = payload.get("estimate")
    return PlanNode(
        op=payload["op"],
        node_id=payload["node_id"],
        detail=dict(payload.get("detail", {})),
        estimate=CostEstimate.from_dict(estimate) if estimate else None,
        children=[
            _node_from_dict(child) for child in payload.get("children", [])
        ],
    )


def plan_to_dict(plan: PhysicalPlan) -> dict:
    return {
        "collection": plan.collection,
        "composition": plan.composition.to_dict(),
        "notes": list(plan.notes),
        "streaming": plan.streaming,
        "chunk_bytes": plan.chunk_bytes,
        "lanes": [
            {
                "index": lane.index,
                "node_id": lane.node_id,
                "subquery": lane.subquery.to_dict(),
                "estimate": lane.estimate.to_dict() if lane.estimate else None,
                "candidates": lane.candidates,
            }
            for lane in plan.lanes
        ],
        "root": _node_to_dict(plan.root),
    }


def plan_from_dict(payload: dict) -> PhysicalPlan:
    lanes = []
    for entry in payload.get("lanes", []):
        estimate = entry.get("estimate")
        lanes.append(
            Lane(
                index=entry["index"],
                node_id=entry["node_id"],
                subquery=SubQuery.from_dict(entry["subquery"]),
                estimate=CostEstimate.from_dict(estimate) if estimate else None,
                candidates=entry.get("candidates", 1),
            )
        )
    return PhysicalPlan(
        collection=payload["collection"],
        root=_node_from_dict(payload["root"]),
        lanes=lanes,
        composition=CompositionSpec.from_dict(payload["composition"]),
        notes=list(payload.get("notes", [])),
        streaming=payload.get("streaming", False),
        chunk_bytes=payload.get("chunk_bytes"),
    )
