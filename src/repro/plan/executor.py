"""Execution modes and the single plan-driven executor.

:class:`ExecutionMode` parses the public mode names once — there is no
string special-casing downstream; ``"tcp-stream"`` is just the mode
whose parsed form has ``transport="tcp", streaming=True``.

:class:`PlanExecutor` is the one execution path every mode runs through:
it dispatches the physical plan's lanes through a
:class:`~repro.cluster.dispatch.ParallelDispatcher` over whatever
:class:`~repro.cluster.dispatch.Transport` the mode selects (a
lock-serialized in-process transport reproduces the paper's sequential
"simulated" round), threads the plan-node identities into the measured
executions, and composes the answer — monolithically or through the
incremental chunk sink when the plan says ``streaming``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.cluster.dispatch import ParallelDispatcher, Transport
from repro.cluster.site import ParallelRound
from repro.plan.physical import PhysicalPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partix.composer import ComposedResult, ResultComposer


@dataclass(frozen=True)
class ExecutionMode:
    """One parsed execution mode: a transport choice plus flags."""

    name: str
    transport: str  # "in-process" | "tcp"
    streaming: bool
    concurrent: bool

    _REGISTRY = None  # populated below

    @classmethod
    def parse(cls, name: str, streaming: bool = False) -> "ExecutionMode":
        """Parse a public mode name, optionally forcing streaming on.

        Raises ``ValueError`` listing the valid modes on anything else.
        """
        try:
            mode = cls._REGISTRY[name]
        except (KeyError, TypeError):
            valid = ", ".join(repr(key) for key in cls._REGISTRY)
            raise ValueError(
                f"execution_mode must be one of {valid}; got {name!r}"
            ) from None
        if streaming and not mode.streaming:
            mode = replace(mode, streaming=True)
        return mode

    @classmethod
    def names(cls) -> tuple:
        return tuple(cls._REGISTRY)


ExecutionMode._REGISTRY = {
    "simulated": ExecutionMode("simulated", "in-process", False, False),
    "threads": ExecutionMode("threads", "in-process", False, True),
    "tcp": ExecutionMode("tcp", "tcp", False, True),
    "tcp-stream": ExecutionMode("tcp-stream", "tcp", True, True),
}


@dataclass
class ExecutedPlan:
    """What one plan execution produced, pre-accounting."""

    round: ParallelRound
    composed: "ComposedResult"
    notes: list = field(default_factory=list)


class PlanExecutor:
    """Runs a physical plan's lanes and composes the answer."""

    def __init__(self, composer: "ResultComposer"):
        self.composer = composer

    def run(
        self,
        plan: PhysicalPlan,
        transport: Transport,
        dispatcher: ParallelDispatcher,
        default_collection: Optional[str] = None,
        subquery_timeout: Optional[float] = None,
    ) -> ExecutedPlan:
        subqueries = plan.subqueries
        sink = None
        if plan.streaming:
            if plan.chunk_bytes is not None:
                sink = self.composer.incremental(
                    plan.composition,
                    subqueries,
                    spill_threshold=plan.chunk_bytes,
                )
            else:
                sink = self.composer.incremental(plan.composition, subqueries)
        # Optional kwargs are only passed when set so dispatcher
        # subclasses with older dispatch() signatures keep working.
        extra: dict = {}
        if sink is not None:
            extra["chunk_sink"] = sink
        if subquery_timeout is not None:
            extra["subquery_timeout"] = subquery_timeout
        outcome = dispatcher.dispatch(
            transport,
            subqueries,
            default_collection=default_collection,
            **extra,
        )
        round_ = outcome.round
        for lane, execution in zip(plan.lanes, outcome.executions_by_index):
            if execution is not None:
                execution.plan_node = lane.node_id
                execution.estimated_seconds = (
                    lane.estimate.total_seconds
                    if lane.estimate is not None
                    else None
                )
        if sink is None:
            partials = [
                (subqueries[index], execution.result.result_text)
                for index, execution in enumerate(outcome.executions_by_index)
                if execution is not None
            ]
            composed = self.composer.compose(plan.composition, partials)
        else:
            composed = sink.finish()
            round_.streamed = True
            round_.peak_buffered_bytes = sink.peak_buffered_bytes
            round_.first_chunk_seconds = sink.time_to_first_chunk
        return ExecutedPlan(
            round=round_, composed=composed, notes=list(outcome.notes)
        )
