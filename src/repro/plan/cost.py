"""The cost model feeding lowering and EXPLAIN.

Estimates are built from two ingredients:

* **catalog fragment statistics** — documents and bytes per
  ``(collection, fragment, site)``, recorded by the data publisher when
  a fragment is materialized (``DistributionCatalog.statistics``). A
  catalog without statistics (hand-annotated plans, tests) falls back to
  fixed defaults, so planning never requires executing anything.
* **the network model** — the same
  :class:`~repro.cluster.network.NetworkModel` the middleware reports
  transmission estimates with, charging dispatch (query text out) and
  gather (result bytes back) per lane.

The CPU constants are calibration knobs, not measurements: the
per-document constant matches the bench scenarios' simulated
per-document overhead, and ``python -m repro.bench --figure modes
--json …`` records estimated-vs-measured per-lane seconds so the
calibration error stays visible across changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.network import NetworkModel

#: Fallbacks when the catalog has no statistics for a fragment replica.
DEFAULT_DOCUMENTS = 8
DEFAULT_FRAGMENT_BYTES = 16_384

#: Estimated size of a shipped scalar partial (count/sum/… pushdown).
SCALAR_RESULT_BYTES = 24

#: CPU calibration constants (seconds). The per-document constant equals
#: the bench scenarios' PAPER_DOC_OVERHEAD; the per-byte constants are
#: rough in-process parse/serialize rates.
SECONDS_PER_DOCUMENT = 0.0025
SECONDS_PER_BYTE = 2e-8
CONCAT_SECONDS_PER_BYTE = 1e-9
MERGE_SECONDS_PER_PARTIAL = 1e-5
JOIN_SECONDS_PER_BYTE = 1e-7

#: Fixed cost of probing a site's indexes for one sub-query (lookups +
#: binary-table predicate verification of the candidates). Index access
#: then materializes only the estimated matching documents, so the
#: break-even against a full scan sits at a few documents per fragment
#: at typical predicate selectivity.
INDEX_LOOKUP_SECONDS = 0.004

#: Calibrated per-shard startup cost of intra-site parallelism: task
#: pickling (binary node tables + string pool), worker dispatch and
#: result transfer. Charged once per shard when lowering prices a
#: sharded scan against the serial one, so small fragments stay serial.
SHARD_STARTUP_SECONDS = 0.012

#: Never split below this many documents per shard — a shard has to
#: amortize its startup over real materialization work, and the default
#: fragment statistics (8 documents) must keep lowering serial.
MIN_SHARD_DOCUMENTS = 4


@dataclass(frozen=True)
class CostEstimate:
    """Per-node cost estimate of a physical plan node."""

    documents: int = 0
    result_bytes: int = 0
    cpu_seconds: float = 0.0
    network_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.cpu_seconds + self.network_seconds

    def to_dict(self) -> dict:
        return {
            "documents": self.documents,
            "result_bytes": self.result_bytes,
            "cpu_seconds": self.cpu_seconds,
            "network_seconds": self.network_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostEstimate":
        return cls(
            documents=payload.get("documents", 0),
            result_bytes=payload.get("result_bytes", 0),
            cpu_seconds=payload.get("cpu_seconds", 0.0),
            network_seconds=payload.get("network_seconds", 0.0),
        )


class CostModel:
    """Estimates node costs from catalog statistics + the network model.

    ``catalog`` is duck-typed: anything with a
    ``statistics(collection, fragment, site)`` method (returning an
    object with ``documents``/``bytes`` or None) works; ``None`` or a
    statistics-less catalog degrades to the fixed defaults.
    """

    def __init__(
        self,
        catalog=None,
        network: Optional[NetworkModel] = None,
        seconds_per_document: float = SECONDS_PER_DOCUMENT,
        seconds_per_byte: float = SECONDS_PER_BYTE,
        shard_workers: int = 0,
    ):
        self.catalog = catalog
        self.network = network if network is not None else NetworkModel()
        self.seconds_per_document = seconds_per_document
        self.seconds_per_byte = seconds_per_byte
        #: Per-site shard worker pool size (0 = intra-site parallelism
        #: off): the ceiling for :meth:`shard_degree`. The middleware
        #: sets it from its cluster's engine configuration.
        self.shard_workers = max(0, int(shard_workers))

    # ------------------------------------------------------------------
    def fragment_statistics(self, collection: str, fragment: str, site: str):
        lookup = getattr(self.catalog, "statistics", None)
        if lookup is None:
            return None
        return lookup(collection, fragment, site)

    def scan_estimate(
        self,
        collection: str,
        fragment: str,
        site: str,
        query: str,
        purpose: str = "answer",
        selectivity: float = 1.0,
        pushdown: Optional[str] = None,
        access: str = "scan",  # "scan" | "index"
    ) -> CostEstimate:
        """Cost of running one sub-query at one fragment replica.

        ``access="scan"`` materializes every document of the fragment;
        ``access="index"`` pays :data:`INDEX_LOOKUP_SECONDS` up front and
        then materializes only the estimated matching documents (the
        selectivity fraction, at least one) — the trade lowering prices
        per replica to choose the cheaper path.
        """
        stats = self.fragment_statistics(collection, fragment, site)
        documents = stats.documents if stats is not None else DEFAULT_DOCUMENTS
        fragment_bytes = stats.bytes if stats is not None else DEFAULT_FRAGMENT_BYTES
        if purpose == "fetch":
            result_bytes = fragment_bytes
        elif pushdown is not None:
            result_bytes = SCALAR_RESULT_BYTES
        else:
            result_bytes = max(
                SCALAR_RESULT_BYTES, int(fragment_bytes * selectivity)
            )
        query_bytes = len(query.encode("utf-8"))
        if access == "index":
            touched = max(1, int(documents * selectivity))
            touched_bytes = max(1, int(fragment_bytes * selectivity))
            cpu = (
                INDEX_LOOKUP_SECONDS
                + touched * self.seconds_per_document
                + touched_bytes * self.seconds_per_byte
            )
            documents = touched
        else:
            cpu = (
                documents * self.seconds_per_document
                + fragment_bytes * self.seconds_per_byte
            )
        net = self.network.transfer_seconds(query_bytes) + (
            self.network.transfer_seconds(result_bytes)
        )
        return CostEstimate(
            documents=documents,
            result_bytes=result_bytes,
            cpu_seconds=cpu,
            network_seconds=net,
        )

    def shard_degree(
        self,
        collection: str,
        fragment: str,
        site: str,
        selectivity: float = 1.0,
        access: str = "scan",
    ) -> int:
        """Pick the intra-site parallel degree for one fragment scan.

        Prices the serial scan's CPU against splitting it over ``d``
        worker shards: each shard pays :data:`SHARD_STARTUP_SECONDS`
        and the CPU divides by ``d``. The degree is capped by the
        configured worker pool and by :data:`MIN_SHARD_DOCUMENTS` per
        shard, so tiny fragments (including the statistics-less
        default) always come out serial. Returns 1 for "stay serial".
        """
        workers = self.shard_workers
        if workers <= 1:
            return 1
        stats = self.fragment_statistics(collection, fragment, site)
        documents = stats.documents if stats is not None else DEFAULT_DOCUMENTS
        fragment_bytes = stats.bytes if stats is not None else DEFAULT_FRAGMENT_BYTES
        if access == "index":
            documents = max(1, int(documents * selectivity))
            fragment_bytes = max(1, int(fragment_bytes * selectivity))
        max_degree = min(workers, documents // MIN_SHARD_DOCUMENTS)
        if max_degree < 2:
            return 1
        serial_cpu = (
            documents * self.seconds_per_document
            + fragment_bytes * self.seconds_per_byte
        )
        best_degree, best_cost = 1, serial_cpu
        for degree in range(2, max_degree + 1):
            cost = serial_cpu / degree + SHARD_STARTUP_SECONDS
            if cost < best_cost:
                best_degree, best_cost = degree, cost
        return best_degree

    # ------------------------------------------------------------------
    def union_estimate(self, children: list) -> CostEstimate:
        result_bytes = sum(child.result_bytes for child in children)
        return CostEstimate(
            documents=sum(child.documents for child in children),
            result_bytes=result_bytes,
            cpu_seconds=result_bytes * CONCAT_SECONDS_PER_BYTE,
        )

    def merge_estimate(self, children: list) -> CostEstimate:
        return CostEstimate(
            documents=sum(child.documents for child in children),
            result_bytes=SCALAR_RESULT_BYTES,
            cpu_seconds=len(children) * MERGE_SECONDS_PER_PARTIAL,
        )

    def id_join_estimate(self, children: list) -> CostEstimate:
        input_bytes = sum(child.result_bytes for child in children)
        documents = sum(child.documents for child in children)
        # Parse the fetched forests, join by origin, re-run the query.
        cpu = (
            input_bytes * JOIN_SECONDS_PER_BYTE
            + documents * self.seconds_per_document
        )
        return CostEstimate(
            documents=documents,
            result_bytes=input_bytes,
            cpu_seconds=cpu,
        )
