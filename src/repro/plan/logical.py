"""The logical plan IR the query decomposer emits.

A logical plan says *what* has to happen — which fragments are scanned,
whether partial aggregates are pushed down, how partials recombine —
without committing to *where* each scan runs. Site placement is a
lowering decision: every :class:`FragmentScan` carries one
:class:`ScanCandidate` per replica of its fragment (catalog order,
primary first), each with the fully rewritten sub-query text for that
replica's stored collection; :func:`repro.plan.lower.lower` picks one
candidate per scan with the cost model.

Tree shapes (always rooted in :class:`Compose`):

* concat      — ``Compose(Union(FragmentScan…))``
* aggregate   — ``Compose(MergeAggregate(PartialAggregate(FragmentScan)…))``
* reconstruct — ``Compose(IdJoin(FragmentScan(purpose="fetch")…))``

An all-fragments-pruned query keeps its shape with zero scans — the
composer then produces the empty result / aggregate identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple
from typing import Union as TUnion

from repro.plan.spec import CompositionSpec


@dataclass(frozen=True)
class ScanCandidate:
    """One replica a scan could run at, with its rewritten sub-query."""

    site: str
    stored_collection: str
    query: str


@dataclass(frozen=True)
class FragmentScan:
    """Scan one fragment: run the localized sub-query at some replica."""

    fragment: str
    candidates: Tuple[ScanCandidate, ...]
    purpose: str = "answer"  # "answer" | "fetch"
    #: Crude estimate of the fraction of the fragment's bytes the scan
    #: returns (see ``QueryAnalysis.selectivity_hint``); the cost model
    #: turns it into an estimated result size.
    selectivity: float = 1.0
    #: Rendered form of the pruning predicate the scan's sub-query
    #: carries (EXPLAIN annotation; None when the query has none).
    predicate: Optional[str] = None


@dataclass(frozen=True)
class IndexScan(FragmentScan):
    """A fragment scan *eligible* for index-assisted access.

    The decomposer emits this subclass instead of :class:`FragmentScan`
    when indexes are enabled and the query carries a pruning predicate.
    It marks eligibility, not commitment: lowering prices both access
    paths per replica with the cost model and may still choose a full
    scan (a tiny fragment is cheaper to scan than to probe) — so a plan
    can legitimately mix ``index-scan`` and ``scan`` lanes over the same
    predicate. With ``use_indexes=False`` the decomposer never emits it
    and every lane stays a paper-faithful full scan.
    """


@dataclass(frozen=True)
class PartialAggregate:
    """A per-fragment partial aggregate (the pushdown, made explicit)."""

    op: str  # count | sum | min | max | avg | exists | empty
    child: FragmentScan


@dataclass(frozen=True)
class Union:
    """Bag-union of fragment streams (catalog fragment order)."""

    children: Tuple[FragmentScan, ...]


@dataclass(frozen=True)
class MergeAggregate:
    """Fold the partial aggregates into the final scalar."""

    op: str
    children: Tuple[PartialAggregate, ...]


@dataclass(frozen=True)
class IdJoin:
    """Reconstruct source documents from fetched fragments, re-query."""

    original_query: str
    source_collection: Optional[str]
    root_label: Optional[str]
    children: Tuple[FragmentScan, ...]


@dataclass(frozen=True)
class Compose:
    """Plan root: emit the composed answer of its single input."""

    child: TUnion[Union, MergeAggregate, IdJoin]


@dataclass
class LogicalPlan:
    """The decomposer's full output, pre-lowering."""

    collection: str
    root: Compose
    composition: CompositionSpec
    notes: list = field(default_factory=list)

    def scans(self) -> list:
        """The plan's :class:`FragmentScan` leaves in plan order."""
        child = self.root.child
        if isinstance(child, MergeAggregate):
            return [partial.child for partial in child.children]
        return list(child.children)
