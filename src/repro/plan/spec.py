"""The physical plan's leaf vocabulary: sub-queries and composition.

These two dataclasses predate the plan IR (they were born in
``repro.partix.decomposer``) and remain the contract between the plan
layer, the dispatcher and the result composer: a :class:`SubQuery` is
what a transport lane executes, a :class:`CompositionSpec` is what the
composer folds partial results with. They live here so the plan package
is self-contained; ``repro.partix.decomposer`` re-exports them for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SubQuery:
    """One sub-query targeted at one fragment's site."""

    fragment: str
    site: str
    collection: str
    query: str
    purpose: str = "answer"  # "answer" | "fetch"

    def to_dict(self) -> dict:
        return {
            "fragment": self.fragment,
            "site": self.site,
            "collection": self.collection,
            "query": self.query,
            "purpose": self.purpose,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SubQuery":
        return cls(
            fragment=payload["fragment"],
            site=payload["site"],
            collection=payload["collection"],
            query=payload["query"],
            purpose=payload.get("purpose", "answer"),
        )


@dataclass(frozen=True)
class CompositionSpec:
    """How partial results combine into the final answer."""

    kind: str  # "concat" | "aggregate" | "reconstruct"
    aggregate: Optional[str] = None
    original_query: Optional[str] = None
    source_collection: Optional[str] = None
    root_label: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "aggregate": self.aggregate,
            "original_query": self.original_query,
            "source_collection": self.source_collection,
            "root_label": self.root_label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompositionSpec":
        return cls(
            kind=payload["kind"],
            aggregate=payload.get("aggregate"),
            original_query=payload.get("original_query"),
            source_collection=payload.get("source_collection"),
            root_label=payload.get("root_label"),
        )
