"""The physical plan's leaf vocabulary: sub-queries and composition.

These two dataclasses predate the plan IR (they were born in
``repro.partix.decomposer``) and remain the contract between the plan
layer, the dispatcher and the result composer: a :class:`SubQuery` is
what a transport lane executes, a :class:`CompositionSpec` is what the
composer folds partial results with. They live here so the plan package
is self-contained; ``repro.partix.decomposer`` re-exports them for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class SubQueryTarget:
    """One concrete place a sub-query can run: a replica's site plus the
    sub-query text rewritten for that replica's stored collection."""

    site: str
    collection: str
    query: str

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "collection": self.collection,
            "query": self.query,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SubQueryTarget":
        return cls(
            site=payload["site"],
            collection=payload["collection"],
            query=payload["query"],
        )


@dataclass(frozen=True)
class SubQuery:
    """One sub-query targeted at one fragment's site.

    ``site``/``collection``/``query`` name the *primary* target lowering
    chose; ``replicas`` lists the alternative targets (other replicas of
    the same fragment, catalog order) the dispatcher may fail over to
    when the primary target's site stops answering.

    ``use_indexes`` is the lane's access-path decision: ``True`` on an
    ``index-scan`` lane (the executing site must probe its indexes for
    this query even if its default is full scan), ``None`` to leave the
    site's own configuration in charge (the paper-faithful default).

    ``parallel_degree`` is the lane's intra-site parallelism decision:
    ≥ 2 asks the executing site to evaluate the sub-query sharded
    across that many worker processes (lowering prices this from the
    fragment's statistics; it stays None — serial — for small
    fragments and for sites without a shard pool). Like
    ``use_indexes``, it is a request the site may decline — answers are
    byte-identical either way.
    """

    fragment: str
    site: str
    collection: str
    query: str
    purpose: str = "answer"  # "answer" | "fetch"
    replicas: Tuple[SubQueryTarget, ...] = field(default=(), compare=True)
    use_indexes: Optional[bool] = None
    parallel_degree: Optional[int] = None

    def targets(self) -> Tuple[SubQueryTarget, ...]:
        """Every place this sub-query can run, chosen target first."""
        primary = SubQueryTarget(
            site=self.site, collection=self.collection, query=self.query
        )
        return (primary,) + tuple(
            target for target in self.replicas if target.site != self.site
        )

    def retarget(self, target: SubQueryTarget) -> "SubQuery":
        """This sub-query re-aimed at ``target`` (fragment, purpose and
        the full replica list are preserved)."""
        if (
            target.site == self.site
            and target.collection == self.collection
            and target.query == self.query
        ):
            return self
        return replace(
            self,
            site=target.site,
            collection=target.collection,
            query=target.query,
        )

    def to_dict(self) -> dict:
        payload = {
            "fragment": self.fragment,
            "site": self.site,
            "collection": self.collection,
            "query": self.query,
            "purpose": self.purpose,
        }
        if self.replicas:
            payload["replicas"] = [
                target.to_dict() for target in self.replicas
            ]
        if self.use_indexes is not None:
            payload["use_indexes"] = self.use_indexes
        if self.parallel_degree is not None:
            payload["parallel_degree"] = self.parallel_degree
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SubQuery":
        return cls(
            fragment=payload["fragment"],
            site=payload["site"],
            collection=payload["collection"],
            query=payload["query"],
            purpose=payload.get("purpose", "answer"),
            replicas=tuple(
                SubQueryTarget.from_dict(target)
                for target in payload.get("replicas", ())
            ),
            use_indexes=payload.get("use_indexes"),
            parallel_degree=payload.get("parallel_degree"),
        )


@dataclass(frozen=True)
class CompositionSpec:
    """How partial results combine into the final answer."""

    kind: str  # "concat" | "aggregate" | "reconstruct"
    aggregate: Optional[str] = None
    original_query: Optional[str] = None
    source_collection: Optional[str] = None
    root_label: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "aggregate": self.aggregate,
            "original_query": self.original_query,
            "source_collection": self.source_collection,
            "root_label": self.root_label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompositionSpec":
        return cls(
            kind=payload["kind"],
            aggregate=payload.get("aggregate"),
            original_query=payload.get("original_query"),
            source_collection=payload.get("source_collection"),
            root_label=payload.get("root_label"),
        )
