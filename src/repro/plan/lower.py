"""Lowering: logical plan → physical plan.

Lowering makes the two decisions the logical plan left open:

* **site/replica selection** — each :class:`FragmentScan` offers one
  candidate per replica; lowering greedily assigns the scan to the
  candidate minimizing the site's *projected busy time* (current lane
  budget + this scan's cost estimate). With uniform statistics this
  degenerates to the classic least-loaded-by-count spread (ties break by
  assigned-lane count, then catalog order, primary first); with skewed
  statistics a large fragment no longer lands on an already-busy site
  just because counts matched. When a shared
  :class:`~repro.cluster.health.SiteHealth` tracker is supplied,
  candidates at *ejected* sites are skipped (noted on the plan) unless
  every replica of the fragment is ejected — new plans stop routing
  scans to a site the dispatcher has declared dead. The candidates the
  scheduler did *not* choose ride along on the emitted
  :class:`~repro.plan.spec.SubQuery` as failover ``replicas`` so the
  dispatcher can rotate to them at retry time.
* **cost annotation** — every physical node carries a
  :class:`~repro.plan.cost.CostEstimate`, so EXPLAIN can render the tree
  with per-node costs and measured per-lane timings can be compared
  against the estimates.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Optional

from repro.plan.cost import SHARD_STARTUP_SECONDS, CostModel
from repro.plan.logical import (
    Compose,
    FragmentScan,
    IdJoin,
    IndexScan,
    LogicalPlan,
    MergeAggregate,
    PartialAggregate,
    ScanCandidate,
    Union,
)
from repro.plan.physical import Lane, PhysicalPlan, PlanNode
from repro.plan.spec import CompositionSpec, SubQuery, SubQueryTarget


class _LaneScheduler:
    """Greedy cost-based assignment of scans to replica sites."""

    def __init__(self, model: CostModel, collection: str, site_health=None):
        self.model = model
        self.collection = collection
        self.site_health = site_health
        self.busy: dict = {}
        self.counts: dict = {}
        #: Ejected sites whose candidates were skipped (for plan notes).
        self.avoided_sites: set = set()

    def _eligible(self, scan: FragmentScan):
        """The scan's candidates minus ejected sites — unless *every*
        replica is ejected, in which case all stay eligible (a plan that
        targets a possibly-dead site still beats one with no target;
        the dispatcher's rotation and failure policy take it from
        there)."""
        if self.site_health is None:
            return list(enumerate(scan.candidates))
        eligible = []
        skipped = []
        for position, candidate in enumerate(scan.candidates):
            if self.site_health.is_ejected(candidate.site):
                skipped.append(candidate.site)
            else:
                eligible.append((position, candidate))
        if not eligible:
            return list(enumerate(scan.candidates))
        self.avoided_sites.update(skipped)
        return eligible

    def assign(self, scan: FragmentScan, pushdown: Optional[str]):
        """Pick (candidate, estimate, access) for ``scan``.

        An :class:`IndexScan` leaf is priced under both access paths at
        every eligible replica — the index path competes on equal terms
        and wins only where the lookup cost amortizes over skipped
        documents, so one plan can mix ``index`` and ``scan`` lanes.
        Access ties break toward ``scan`` (tuple order below), keeping
        plans deterministic.
        """
        accesses = ("scan", "index") if isinstance(scan, IndexScan) else ("scan",)
        best = None
        for position, candidate in self._eligible(scan):
            for access in accesses:
                estimate = self.model.scan_estimate(
                    self.collection,
                    scan.fragment,
                    candidate.site,
                    candidate.query,
                    purpose=scan.purpose,
                    selectivity=scan.selectivity,
                    pushdown=pushdown,
                    access=access,
                )
                projected = (
                    self.busy.get(candidate.site, 0.0) + estimate.total_seconds
                )
                key = (
                    projected,
                    self.counts.get(candidate.site, 0),
                    position,
                    accesses.index(access),
                )
                if best is None or key < best[0]:
                    best = (key, candidate, estimate, access)
        _, candidate, estimate, access = best
        self.busy[candidate.site] = (
            self.busy.get(candidate.site, 0.0) + estimate.total_seconds
        )
        self.counts[candidate.site] = self.counts.get(candidate.site, 0) + 1
        return candidate, estimate, access


def lower(
    logical: LogicalPlan,
    cost_model: Optional[CostModel] = None,
    streaming: bool = False,
    chunk_bytes: Optional[int] = None,
    site_health=None,
) -> PhysicalPlan:
    """Lower a logical plan to an executable physical plan.

    ``site_health``, when given, is the shared
    :class:`~repro.cluster.health.SiteHealth` tracker: candidates at
    ejected sites are avoided (see :class:`_LaneScheduler`).
    """
    model = cost_model if cost_model is not None else CostModel()
    scheduler = _LaneScheduler(model, logical.collection, site_health)
    lanes: list = []

    def scan_node(scan: FragmentScan, pushdown: Optional[str]) -> PlanNode:
        candidate, estimate, access = scheduler.assign(scan, pushdown)
        degree = model.shard_degree(
            logical.collection,
            scan.fragment,
            candidate.site,
            selectivity=scan.selectivity,
            access=access,
        )
        if degree > 1:
            # Re-price the lane under sharding: CPU divides across the
            # worker shards, each paying its calibrated startup cost.
            estimate = dc_replace(
                estimate,
                cpu_seconds=estimate.cpu_seconds / degree
                + SHARD_STARTUP_SECONDS,
            )
        index = len(lanes)
        node_id = f"scan{index}"
        subquery = SubQuery(
            fragment=scan.fragment,
            site=candidate.site,
            collection=candidate.stored_collection,
            query=candidate.query,
            purpose=scan.purpose,
            replicas=tuple(
                SubQueryTarget(
                    site=other.site,
                    collection=other.stored_collection,
                    query=other.query,
                )
                for other in scan.candidates
                if other.site != candidate.site
            ),
            # Only an index lane overrides the site's own setting; a scan
            # lane leaves None so a site configured with indexes on keeps
            # behaving as configured.
            use_indexes=True if access == "index" else None,
            # Likewise only a sharded lane carries a degree; None leaves
            # the site serial.
            parallel_degree=degree if degree > 1 else None,
        )
        lanes.append(
            Lane(
                index=index,
                node_id=node_id,
                subquery=subquery,
                estimate=estimate,
                candidates=len(scan.candidates),
            )
        )
        detail = {
            "fragment": scan.fragment,
            "site": candidate.site,
            "collection": candidate.stored_collection,
            "purpose": scan.purpose,
            "selectivity": scan.selectivity,
            "candidates": len(scan.candidates),
        }
        if scan.predicate is not None:
            detail["predicate"] = scan.predicate
        if degree > 1:
            detail["parallel_degree"] = degree
        return PlanNode(
            op="index-scan" if access == "index" else "scan",
            node_id=node_id,
            detail=detail,
            estimate=estimate,
        )

    child = logical.root.child
    if isinstance(child, MergeAggregate):
        partial_nodes = []
        for position, partial in enumerate(child.children):
            scan = scan_node(partial.child, pushdown=partial.op)
            partial_nodes.append(
                PlanNode(
                    op="partial-aggregate",
                    node_id=f"partial{position}",
                    detail={"aggregate": partial.op},
                    estimate=scan.estimate,
                    children=[scan],
                )
            )
        inner = PlanNode(
            op="merge-aggregate",
            node_id="merge",
            detail={"aggregate": child.op},
            estimate=model.merge_estimate(
                [node.estimate for node in partial_nodes]
            ),
            children=partial_nodes,
        )
    elif isinstance(child, IdJoin):
        scan_nodes = [scan_node(scan, pushdown=None) for scan in child.children]
        inner = PlanNode(
            op="id-join",
            node_id="id-join",
            detail={
                "source_collection": child.source_collection,
                "root_label": child.root_label,
            },
            estimate=model.id_join_estimate(
                [node.estimate for node in scan_nodes]
            ),
            children=scan_nodes,
        )
    elif isinstance(child, Union):
        scan_nodes = [scan_node(scan, pushdown=None) for scan in child.children]
        inner = PlanNode(
            op="union",
            node_id="union",
            detail={},
            estimate=model.union_estimate(
                [node.estimate for node in scan_nodes]
            ),
            children=scan_nodes,
        )
    else:  # pragma: no cover - the decomposer only emits the three shapes
        raise TypeError(f"cannot lower plan child {type(child).__name__}")

    root = PlanNode(
        op="compose",
        node_id="compose",
        detail={
            "kind": logical.composition.kind,
            "aggregate": logical.composition.aggregate,
        },
        estimate=inner.estimate,
        children=[inner],
    )
    notes = list(logical.notes)
    if scheduler.avoided_sites:
        avoided = ", ".join(sorted(scheduler.avoided_sites))
        notes.append(f"lowering: avoided ejected site(s) {avoided}")
    return PhysicalPlan(
        collection=logical.collection,
        root=root,
        lanes=lanes,
        composition=logical.composition,
        notes=notes,
        streaming=streaming,
        chunk_bytes=chunk_bytes,
    )


def lower_annotated(
    collection: str,
    subqueries: list,
    composition: CompositionSpec,
    cost_model: Optional[CostModel] = None,
    notes: Optional[list] = None,
) -> PhysicalPlan:
    """Lower a hand-annotated sub-query list (the paper's prototype mode).

    Each sub-query already names its site, so every scan has exactly one
    candidate; lowering only contributes the tree shape and estimates.
    """
    scans = tuple(
        (IndexScan if subquery.use_indexes else FragmentScan)(
            fragment=subquery.fragment,
            candidates=(
                ScanCandidate(
                    site=subquery.site,
                    stored_collection=subquery.collection,
                    query=subquery.query,
                ),
            ),
            purpose=subquery.purpose,
        )
        for subquery in subqueries
    )
    if composition.kind == "aggregate":
        child = MergeAggregate(
            composition.aggregate,
            tuple(
                PartialAggregate(composition.aggregate, scan) for scan in scans
            ),
        )
    elif composition.kind == "reconstruct":
        child = IdJoin(
            composition.original_query,
            composition.source_collection,
            composition.root_label,
            scans,
        )
    else:
        child = Union(scans)
    logical = LogicalPlan(
        collection=collection,
        root=Compose(child),
        composition=composition,
        notes=list(notes) if notes else [],
    )
    return lower(logical, cost_model=cost_model)
