"""Parser for textual path expressions.

Grammar (paper §3.1)::

    path  := step+
    step  := ("/" | "//") test
    test  := name position? | "*" position? | "@" name
    position := "[" integer "]"

Examples: ``/Store/Items/Item``, ``//Description``, ``/Item/*/Name``,
``/Item/PictureList/Picture[1]``, ``/Item/@id``.
"""

from __future__ import annotations

import re

from repro.errors import PathSyntaxError
from repro.paths.ast import Axis, PathExpr, Step

_STEP_RE = re.compile(
    r"(?P<axis>//|/)"
    r"(?P<test>@?[A-Za-z_][\w.\-:]*|\*)"
    r"(?:\[(?P<pos>\d+)\])?"
)


def parse_path(text: str) -> PathExpr:
    """Parse ``text`` into a :class:`PathExpr`.

    Raises :class:`PathSyntaxError` for anything outside the grammar.
    """
    stripped = text.strip()
    if not stripped:
        raise PathSyntaxError("empty path expression")
    if not stripped.startswith("/"):
        raise PathSyntaxError(f"path must be absolute (start with '/'): {text!r}")
    steps: list[Step] = []
    pos = 0
    while pos < len(stripped):
        match = _STEP_RE.match(stripped, pos)
        if match is None:
            raise PathSyntaxError(f"malformed path {text!r} at offset {pos}")
        axis = Axis.DESCENDANT if match.group("axis") == "//" else Axis.CHILD
        test = match.group("test")
        position = int(match.group("pos")) if match.group("pos") else None
        if test.startswith("@"):
            if position is not None:
                raise PathSyntaxError("attributes cannot take positions")
            step = Step(axis=axis, name=test[1:], is_attribute=True)
        else:
            step = Step(axis=axis, name=test, position=position)
        steps.append(step)
        pos = match.end()
    try:
        return PathExpr(tuple(steps))
    except ValueError as exc:
        raise PathSyntaxError(str(exc)) from exc
