"""Evaluation of path expressions over data trees.

Evaluating ``P`` in a document "selects all nodes with label ek (or ak)
whose steps from the root satisfy P" (§3.1). Evaluation proceeds
step-by-step from a virtual document node above the root element, so that
``/Store`` selects the root itself and ``//Description`` selects matching
nodes anywhere in the tree (including the root).

Results are returned in document order without duplicates.
"""

from __future__ import annotations

from typing import Iterable

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.paths.ast import Axis, PathExpr, Step
from repro.paths.parser import parse_path


def evaluate_path(path: PathExpr | str, context: XMLDocument | XMLNode) -> list[XMLNode]:
    """Select the nodes of ``context`` matching ``path``.

    ``context`` is a document or a bare element treated as a document root.
    """
    if isinstance(path, str):
        path = parse_path(path)
    root = context.root if isinstance(context, XMLDocument) else context
    current: list[XMLNode] = [root]
    virtual_first = True
    for step in path.steps:
        current = _apply_step(step, current, virtual_first)
        virtual_first = False
        if not current:
            return []
    return _document_order_unique(current, root)


def _apply_step(step: Step, context: list[XMLNode], virtual_first: bool) -> list[XMLNode]:
    selected: list[XMLNode] = []
    if virtual_first:
        # The context holds the root element; treat it as the child (or a
        # descendant) of the virtual document node.
        for node in context:
            if step.axis is Axis.CHILD:
                candidates: Iterable[XMLNode] = [node]
            else:
                candidates = node.descendants_or_self()
            selected.extend(
                c for c in candidates if _test_matches(step, c)
            )
    else:
        for node in context:
            if step.axis is Axis.CHILD:
                candidates = node.children
            else:
                candidates = node.descendants()
            selected.extend(
                c for c in candidates if _test_matches(step, c)
            )
    if step.position is not None:
        selected = [n for n in selected if n.sibling_index() == step.position]
    return selected


def _test_matches(step: Step, node: XMLNode) -> bool:
    if step.is_attribute:
        return node.kind is NodeKind.ATTRIBUTE and node.label == step.name
    if node.kind is not NodeKind.ELEMENT:
        return False
    return step.is_wildcard or node.label == step.name


def _document_order_unique(nodes: list[XMLNode], root: XMLNode) -> list[XMLNode]:
    if len(nodes) <= 1:
        return nodes
    seen: set[int] = set()
    unique = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    order = {id(node): i for i, node in enumerate(root.descendants_or_self())}
    unique.sort(key=lambda n: order.get(id(n), -1))
    return unique


def path_exists(path: PathExpr | str, context: XMLDocument | XMLNode) -> bool:
    """Existential test: does ``path`` select at least one node?"""
    return bool(evaluate_path(path, context))


# ----------------------------------------------------------------------
# Evaluation over the binary encoding (no DOM involved)
# ----------------------------------------------------------------------
def evaluate_path_binary(path: PathExpr | str, binary) -> list[int]:
    """Select the preorder positions of ``binary`` matching ``path``.

    ``binary`` is a :class:`~repro.datamodel.binary.BinaryXMLDocument`
    (duck-typed to keep this package free of engine imports). Semantics
    mirror :func:`evaluate_path` exactly — virtual document node above
    the root, child/descendant axes, attribute and wildcard tests,
    positional qualifiers — but structural moves are label-prefix and
    node-range operations on the table: the descendant axis scans the
    contiguous slice ``binary.descendant_range(i)`` instead of walking a
    tree. Preorder position *is* document order, so results come back
    ordered and duplicate-free by construction of the final sort.
    """
    if isinstance(path, str):
        path = parse_path(path)
    current: list[int] = [0] if len(binary) else []
    virtual_first = True
    for step in path.steps:
        current = _apply_step_binary(step, current, binary, virtual_first)
        virtual_first = False
        if not current:
            return []
    return sorted(set(current))


def _apply_step_binary(
    step: Step, context: list[int], binary, virtual_first: bool
) -> list[int]:
    selected: list[int] = []
    # Resolve the step's name against the pool once: a name the pool has
    # never interned cannot label any node of any document it serves.
    name_id = None
    if not step.is_wildcard:
        name_id = binary.pool.lookup(step.name)
        if name_id is None:
            return []
    for node in context:
        if virtual_first:
            # The context holds the root; treat it as the child (or a
            # descendant) of the virtual document node.
            if step.axis is Axis.CHILD:
                candidates: Iterable[int] = (node,)
            else:
                candidates = range(node, node + binary.sizes[node])
        else:
            if step.axis is Axis.CHILD:
                candidates = binary.children(node)
            else:
                candidates = binary.descendant_range(node)
        selected.extend(
            c for c in candidates if _test_matches_binary(step, c, binary, name_id)
        )
    if step.position is not None:
        selected = [
            n for n in selected if binary.sibling_ordinal(n) == step.position
        ]
    return selected


def _test_matches_binary(step: Step, node: int, binary, name_id) -> bool:
    from repro.datamodel.binary import KIND_ATTRIBUTE, KIND_ELEMENT

    kind = binary.kinds[node]
    if step.is_attribute:
        return kind == KIND_ATTRIBUTE and binary.names[node] == name_id
    if kind != KIND_ELEMENT:
        return False
    return step.is_wildcard or binary.names[node] == name_id


def binary_path_exists(path: PathExpr | str, binary) -> bool:
    """Existential test over the binary encoding."""
    return bool(evaluate_path_binary(path, binary))


def is_terminal(path: PathExpr | str, context: XMLDocument | XMLNode) -> bool:
    """Dynamic terminality test (§3.1): every selected node has simple content.

    A path is *terminal* when the nodes it selects have domain in ``D`` —
    attributes, or elements whose only content is text (or nothing).
    Returns False when the path selects nothing.
    """
    if isinstance(path, str):
        path = parse_path(path)
    nodes = evaluate_path(path, context)
    if not nodes:
        return False
    for node in nodes:
        if node.kind is NodeKind.ATTRIBUTE:
            continue
        if any(c.kind is NodeKind.ELEMENT for c in node.children):
            return False
    return True
