"""Evaluation of path expressions over data trees.

Evaluating ``P`` in a document "selects all nodes with label ek (or ak)
whose steps from the root satisfy P" (§3.1). Evaluation proceeds
step-by-step from a virtual document node above the root element, so that
``/Store`` selects the root itself and ``//Description`` selects matching
nodes anywhere in the tree (including the root).

Results are returned in document order without duplicates.
"""

from __future__ import annotations

from typing import Iterable

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.paths.ast import Axis, PathExpr, Step
from repro.paths.parser import parse_path


def evaluate_path(path: PathExpr | str, context: XMLDocument | XMLNode) -> list[XMLNode]:
    """Select the nodes of ``context`` matching ``path``.

    ``context`` is a document or a bare element treated as a document root.
    """
    if isinstance(path, str):
        path = parse_path(path)
    root = context.root if isinstance(context, XMLDocument) else context
    current: list[XMLNode] = [root]
    virtual_first = True
    for step in path.steps:
        current = _apply_step(step, current, virtual_first)
        virtual_first = False
        if not current:
            return []
    return _document_order_unique(current, root)


def _apply_step(step: Step, context: list[XMLNode], virtual_first: bool) -> list[XMLNode]:
    selected: list[XMLNode] = []
    if virtual_first:
        # The context holds the root element; treat it as the child (or a
        # descendant) of the virtual document node.
        for node in context:
            if step.axis is Axis.CHILD:
                candidates: Iterable[XMLNode] = [node]
            else:
                candidates = node.descendants_or_self()
            selected.extend(
                c for c in candidates if _test_matches(step, c)
            )
    else:
        for node in context:
            if step.axis is Axis.CHILD:
                candidates = node.children
            else:
                candidates = node.descendants()
            selected.extend(
                c for c in candidates if _test_matches(step, c)
            )
    if step.position is not None:
        selected = [n for n in selected if n.sibling_index() == step.position]
    return selected


def _test_matches(step: Step, node: XMLNode) -> bool:
    if step.is_attribute:
        return node.kind is NodeKind.ATTRIBUTE and node.label == step.name
    if node.kind is not NodeKind.ELEMENT:
        return False
    return step.is_wildcard or node.label == step.name


def _document_order_unique(nodes: list[XMLNode], root: XMLNode) -> list[XMLNode]:
    if len(nodes) <= 1:
        return nodes
    seen: set[int] = set()
    unique = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    order = {id(node): i for i, node in enumerate(root.descendants_or_self())}
    unique.sort(key=lambda n: order.get(id(n), -1))
    return unique


def path_exists(path: PathExpr | str, context: XMLDocument | XMLNode) -> bool:
    """Existential test: does ``path`` select at least one node?"""
    return bool(evaluate_path(path, context))


def is_terminal(path: PathExpr | str, context: XMLDocument | XMLNode) -> bool:
    """Dynamic terminality test (§3.1): every selected node has simple content.

    A path is *terminal* when the nodes it selects have domain in ``D`` —
    attributes, or elements whose only content is text (or nothing).
    Returns False when the path selects nothing.
    """
    if isinstance(path, str):
        path = parse_path(path)
    nodes = evaluate_path(path, context)
    if not nodes:
        return False
    for node in nodes:
        if node.kind is NodeKind.ATTRIBUTE:
            continue
        if any(c.kind is NodeKind.ELEMENT for c in node.children):
            return False
    return True
