"""AST for path expressions.

The paper (§3.1) defines a path expression as
``P := /e1/.../{ek | @ak}`` where each ``ex`` is an element name, the last
step may be an attribute ``@ak``, a step may be ``*`` (any element) or be
preceded by ``//`` (any sequence of descendants), and a step may carry a
positional qualifier ``e[i]`` selecting the i-th occurrence.

A :class:`PathExpr` is a sequence of :class:`Step` objects. Each step has
an axis (child or descendant), a node test (a name, ``*`` or an attribute
name) and an optional 1-based position.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Axis(enum.Enum):
    CHILD = "/"
    DESCENDANT = "//"


@dataclass(frozen=True)
class Step:
    """One step of a path expression."""

    axis: Axis
    name: str  # element name, "*", or attribute name when is_attribute
    is_attribute: bool = False
    position: Optional[int] = None  # 1-based, the "e[i]" qualifier

    def __post_init__(self) -> None:
        if self.is_attribute and self.name == "*":
            raise ValueError("attribute wildcard steps are not supported")
        if self.position is not None and self.position < 1:
            raise ValueError("positions are 1-based")

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*"

    def matches_label(self, label: Optional[str], is_attribute: bool) -> bool:
        """Does this step's node test accept a node with this label/kind?"""
        if self.is_attribute != is_attribute:
            return False
        return self.is_wildcard or self.name == label

    def __str__(self) -> str:
        text = self.axis.value
        text += ("@" + self.name) if self.is_attribute else self.name
        if self.position is not None:
            text += f"[{self.position}]"
        return text


@dataclass(frozen=True)
class PathExpr:
    """An absolute path expression (a tuple of steps)."""

    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("path expressions need at least one step")
        for step in self.steps[:-1]:
            if step.is_attribute:
                raise ValueError("only the last step may be an attribute")

    # ------------------------------------------------------------------
    @property
    def last(self) -> Step:
        return self.steps[-1]

    @property
    def selects_attribute(self) -> bool:
        return self.last.is_attribute

    @property
    def has_descendant_axis(self) -> bool:
        return any(s.axis is Axis.DESCENDANT for s in self.steps)

    @property
    def has_wildcard(self) -> bool:
        return any(s.is_wildcard for s in self.steps)

    @property
    def is_simple(self) -> bool:
        """True for plain child-axis, non-wildcard, position-free paths.

        Simple paths admit exact static analysis (schema cardinality,
        prefix containment); the fragmentation layer prefers them.
        """
        return not self.has_descendant_axis and not self.has_wildcard and not any(
            s.position is not None for s in self.steps
        )

    def label_steps(self) -> list[str]:
        """Labels of a simple path (raises for non-simple paths)."""
        if not self.is_simple:
            raise ValueError(f"path {self} is not simple")
        return [
            ("@" + s.name) if s.is_attribute else s.name for s in self.steps
        ]

    # ------------------------------------------------------------------
    # Structural relations used by fragmentation
    # ------------------------------------------------------------------
    def is_prefix_of(self, other: "PathExpr") -> bool:
        """Exact prefix test for simple paths (Definition 3's "contained in").

        ``/a/b`` is a prefix of ``/a/b/c``. Non-simple paths are compared
        conservatively: a descendant axis or wildcard anywhere makes the
        test fall back to :meth:`may_contain`.
        """
        if self.is_simple and other.is_simple:
            if len(self.steps) > len(other.steps):
                return False
            return all(
                mine.name == theirs.name and mine.is_attribute == theirs.is_attribute
                for mine, theirs in zip(self.steps, other.steps)
            )
        return self.may_contain(other)

    def may_contain(self, other: "PathExpr") -> bool:
        """Conservative test: could ``other`` select nodes inside this path's
        selected subtrees? Used when wildcards or ``//`` defeat the exact
        prefix test. Errs on the side of True.
        """
        i = 0
        for step in self.steps:
            if step.axis is Axis.DESCENDANT or step.is_wildcard:
                return True  # cannot refute containment
            if i >= len(other.steps):
                return False
            other_step = other.steps[i]
            if other_step.axis is Axis.DESCENDANT or other_step.is_wildcard:
                return True
            if other_step.name != step.name:
                return False
            i += 1
        return True

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)
