"""Simple predicates over XML data trees.

The paper's predicate language (§3.1)::

    p := P θ value | φv(P) θ value | φb(P) | Q

where ``P`` is a terminal path expression, ``θ ∈ {=, <, >, ≠, ≤, ≥}``,
``φv`` is a function returning values in ``D`` (e.g. ``string-length``,
``number``, ``count``), ``φb`` is a boolean function (e.g. ``contains``,
``empty``, ``starts-with``), and ``Q`` is an arbitrary path used as an
existential test. Horizontal fragments are defined by *conjunctions* ``μ``
of simple predicates (Definition 2); we additionally provide ``not`` and
``or`` connectives because complements of predicates are how real
fragmentation schemas achieve completeness (e.g. Figure 2's
``σ/Item/Section≠"CD"``).

Comparison semantics are existential, as in XPath: ``P θ v`` holds when at
least one node selected by ``P`` has a (typed) value standing in relation
``θ`` to ``v``. Values compare numerically when both sides parse as
numbers, lexicographically otherwise.

Besides evaluation, this module provides the *symbolic* analysis PartiX
needs: complement detection and conjunction-unsatisfiability
(:func:`definitely_disjoint`), used both to verify fragmentation
disjointness (§3.3) and to prune fragments during query localization.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import XMLNode
from repro.errors import PredicateError
from repro.paths.ast import PathExpr
from repro.paths.evaluator import evaluate_path, evaluate_path_binary
from repro.paths.parser import parse_path

Context = Union[XMLDocument, XMLNode]

_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,  # type: ignore[operator]
    "<=": lambda a, b: a <= b,  # type: ignore[operator]
    ">": lambda a, b: a > b,  # type: ignore[operator]
    ">=": lambda a, b: a >= b,  # type: ignore[operator]
}

_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


def _coerce_pair(left: str, right: Union[str, int, float]) -> tuple[object, object]:
    """Coerce both sides to numbers when possible, else compare as strings."""
    if isinstance(right, (int, float)):
        try:
            return float(left), float(right)
        except (TypeError, ValueError):
            return left, str(right)
    try:
        return float(left), float(right)
    except (TypeError, ValueError):
        return left, right


def _compare(left: str, op: str, right: Union[str, int, float]) -> bool:
    try:
        fn = _OPS[op]
    except KeyError:
        raise PredicateError(f"unknown comparison operator {op!r}") from None
    a, b = _coerce_pair(left, right)
    try:
        return fn(a, b)
    except TypeError:
        return fn(str(a), str(b))


class Predicate(abc.ABC):
    """Base class of the predicate language."""

    @abc.abstractmethod
    def evaluate(self, context: Context) -> bool:
        """Truth value of this predicate over a document (or subtree)."""

    @abc.abstractmethod
    def __str__(self) -> str:
        ...

    def negate(self) -> "Predicate":
        """The logical complement of this predicate."""
        return Not(self)

    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


def _as_path(path: Union[PathExpr, str]) -> PathExpr:
    return parse_path(path) if isinstance(path, str) else path


@dataclass(frozen=True, eq=False)
class Comparison(Predicate):
    """``P θ value`` — existential comparison on a terminal path."""

    path: PathExpr
    op: str
    value: Union[str, int, float]

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, context: Context) -> bool:
        nodes = evaluate_path(self.path, context)
        return any(_compare(n.text_value(), self.op, self.value) for n in nodes)

    def negate(self) -> "Predicate":
        # The negation of an existential comparison over a *single-valued*
        # path is the complementary comparison; for multi-valued paths the
        # caller must keep the generic Not. We return the generic form and
        # let the symbolic layer exploit single-valuedness.
        return Not(self)

    def __str__(self) -> str:
        op = "≠" if self.op == "!=" else self.op
        return f"{self.path}{op}{self.value!r}"


_VALUE_FUNCTIONS: dict[str, Callable[[list[XMLNode]], Optional[float]]] = {
    "count": lambda nodes: float(len(nodes)),
    "string-length": lambda nodes: float(len(nodes[0].text_value())) if nodes else None,
    "number": lambda nodes: _to_number(nodes[0].text_value()) if nodes else None,
    "sum": lambda nodes: sum(
        filter(None, (_to_number(n.text_value()) for n in nodes)), 0.0
    ),
}


def _to_number(text: str) -> Optional[float]:
    try:
        return float(text)
    except (TypeError, ValueError):
        return None


@dataclass(frozen=True, eq=False)
class FunctionComparison(Predicate):
    """``φv(P) θ value`` — compare the result of a value function.

    Supported ``φv``: ``count``, ``string-length``, ``number``, ``sum``.
    """

    function: str
    path: PathExpr
    op: str
    value: Union[int, float]

    def __post_init__(self) -> None:
        if self.function not in _VALUE_FUNCTIONS:
            raise PredicateError(f"unknown value function {self.function!r}")
        if self.op not in _OPS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, context: Context) -> bool:
        nodes = evaluate_path(self.path, context)
        result = _VALUE_FUNCTIONS[self.function](nodes)
        if result is None:
            return False
        return _OPS[self.op](result, float(self.value))

    def __str__(self) -> str:
        return f"{self.function}({self.path}){self.op}{self.value}"


@dataclass(frozen=True, eq=False)
class Contains(Predicate):
    """``contains(P, needle)`` — substring text search (φb).

    This is the predicate class behind the paper's text-search queries
    (``contains(//Description, "good")``, Figure 2(b)).
    """

    path: PathExpr
    needle: str

    def evaluate(self, context: Context) -> bool:
        nodes = evaluate_path(self.path, context)
        return any(self.needle in n.text_value() for n in nodes)

    def __str__(self) -> str:
        return f"contains({self.path},{self.needle!r})"


@dataclass(frozen=True, eq=False)
class StartsWith(Predicate):
    """``starts-with(P, prefix)`` (φb)."""

    path: PathExpr
    prefix: str

    def evaluate(self, context: Context) -> bool:
        nodes = evaluate_path(self.path, context)
        return any(n.text_value().startswith(self.prefix) for n in nodes)

    def __str__(self) -> str:
        return f"starts-with({self.path},{self.prefix!r})"


@dataclass(frozen=True, eq=False)
class Exists(Predicate):
    """``Q`` — existential test: the path selects at least one node.

    Figure 2(c) uses this shape: ``σ/Item/PictureList``.
    """

    path: PathExpr

    def evaluate(self, context: Context) -> bool:
        return bool(evaluate_path(self.path, context))

    def negate(self) -> "Predicate":
        return Empty(self.path)

    def __str__(self) -> str:
        return f"exists({self.path})"


@dataclass(frozen=True, eq=False)
class Empty(Predicate):
    """``empty(P)`` (φb) — the path selects no node (Figure 2(c))."""

    path: PathExpr

    def evaluate(self, context: Context) -> bool:
        return not evaluate_path(self.path, context)

    def negate(self) -> "Predicate":
        return Exists(self.path)

    def __str__(self) -> str:
        return f"empty({self.path})"


@dataclass(frozen=True, eq=False)
class Not(Predicate):
    """Logical negation."""

    inner: Predicate

    def evaluate(self, context: Context) -> bool:
        return not self.inner.evaluate(context)

    def negate(self) -> "Predicate":
        return self.inner

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True, eq=False)
class And(Predicate):
    """Conjunction ``μ`` of simple predicates (Definition 2)."""

    parts: tuple[Predicate, ...]

    def evaluate(self, context: Context) -> bool:
        return all(part.evaluate(context) for part in self.parts)

    def __str__(self) -> str:
        return " ∧ ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True, eq=False)
class Or(Predicate):
    """Disjunction (used by query predicates and completeness checking)."""

    parts: tuple[Predicate, ...]

    def evaluate(self, context: Context) -> bool:
        return any(part.evaluate(context) for part in self.parts)

    def __str__(self) -> str:
        return " ∨ ".join(f"({part})" for part in self.parts)


class TruePredicate(Predicate):
    """The always-true predicate (selects everything)."""

    def evaluate(self, context: Context) -> bool:
        return True

    def __str__(self) -> str:
        return "true()"


# ----------------------------------------------------------------------
# Evaluation over the binary encoding
# ----------------------------------------------------------------------
def evaluate_on_binary(predicate: Predicate, binary) -> Optional[bool]:
    """Exact truth value of ``predicate`` over a binary-encoded document.

    ``binary`` is a :class:`~repro.datamodel.binary.BinaryXMLDocument`.
    Mirrors :meth:`Predicate.evaluate` atom for atom — same path
    semantics (:func:`~repro.paths.evaluator.evaluate_path_binary`), same
    string-value and numeric-coercion rules — but runs on the node table
    with label-prefix structural moves, so a document can be accepted or
    rejected without materializing its DOM.

    Returns ``None`` for a predicate shape it cannot decide (future
    predicate classes); callers must then fall back to DOM evaluation.
    ``None`` propagates through connectives unless short-circuited by a
    decided branch.
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, And):
        undecided = False
        for part in predicate.parts:
            verdict = evaluate_on_binary(part, binary)
            if verdict is False:
                return False
            if verdict is None:
                undecided = True
        return None if undecided else True
    if isinstance(predicate, Or):
        undecided = False
        for part in predicate.parts:
            verdict = evaluate_on_binary(part, binary)
            if verdict is True:
                return True
            if verdict is None:
                undecided = True
        return None if undecided else False
    if isinstance(predicate, Not):
        verdict = evaluate_on_binary(predicate.inner, binary)
        return None if verdict is None else (not verdict)
    if isinstance(predicate, Comparison):
        return any(
            _compare(binary.text_value(i), predicate.op, predicate.value)
            for i in evaluate_path_binary(predicate.path, binary)
        )
    if isinstance(predicate, FunctionComparison):
        values = [
            binary.text_value(i)
            for i in evaluate_path_binary(predicate.path, binary)
        ]
        result = _apply_value_function(predicate.function, values)
        if result is None:
            return False
        return _OPS[predicate.op](result, float(predicate.value))
    if isinstance(predicate, Contains):
        return any(
            predicate.needle in binary.text_value(i)
            for i in evaluate_path_binary(predicate.path, binary)
        )
    if isinstance(predicate, StartsWith):
        return any(
            binary.text_value(i).startswith(predicate.prefix)
            for i in evaluate_path_binary(predicate.path, binary)
        )
    if isinstance(predicate, Exists):
        return bool(evaluate_path_binary(predicate.path, binary))
    if isinstance(predicate, Empty):
        return not evaluate_path_binary(predicate.path, binary)
    return None


def _apply_value_function(function: str, values: list[str]) -> Optional[float]:
    """``φv`` over pre-extracted string values (binary-side twin of
    ``_VALUE_FUNCTIONS``, which wants DOM nodes)."""
    if function == "count":
        return float(len(values))
    if function == "string-length":
        return float(len(values[0])) if values else None
    if function == "number":
        return _to_number(values[0]) if values else None
    if function == "sum":
        return sum(filter(None, (_to_number(v) for v in values)), 0.0)
    raise PredicateError(f"unknown value function {function!r}")


# ----------------------------------------------------------------------
# Convenience constructors (string paths accepted)
# ----------------------------------------------------------------------
def cmp(path: Union[PathExpr, str], op: str, value: Union[str, int, float]) -> Comparison:
    """Build ``P θ value``."""
    return Comparison(_as_path(path), op, value)


def eq(path: Union[PathExpr, str], value: Union[str, int, float]) -> Comparison:
    return cmp(path, "=", value)


def ne(path: Union[PathExpr, str], value: Union[str, int, float]) -> Comparison:
    return cmp(path, "!=", value)


def contains(path: Union[PathExpr, str], needle: str) -> Contains:
    return Contains(_as_path(path), needle)


def starts_with(path: Union[PathExpr, str], prefix: str) -> StartsWith:
    return StartsWith(_as_path(path), prefix)


def exists(path: Union[PathExpr, str]) -> Exists:
    return Exists(_as_path(path))


def empty(path: Union[PathExpr, str]) -> Empty:
    return Empty(_as_path(path))


def func_cmp(
    function: str,
    path: Union[PathExpr, str],
    op: str,
    value: Union[int, float],
) -> FunctionComparison:
    """Build ``φv(P) θ value``."""
    return FunctionComparison(function, _as_path(path), op, value)


# ----------------------------------------------------------------------
# Symbolic analysis
# ----------------------------------------------------------------------
def complements(p: Predicate, q: Predicate) -> bool:
    """Syntactic complement test: is ``p ≡ ¬q``?

    Recognizes ``Not(x)``/``x`` pairs, ``=``/``≠`` on the same path and
    value, order complements (``<`` vs ``≥`` etc.), and
    ``exists``/``empty`` on the same path.
    """
    if isinstance(p, Not) and str(p.inner) == str(q):
        return True
    if isinstance(q, Not) and str(q.inner) == str(p):
        return True
    if isinstance(p, Comparison) and isinstance(q, Comparison):
        if str(p.path) != str(q.path) or p.value != q.value:
            return False
        return _NEGATED_OP[p.op] == q.op
    if isinstance(p, Exists) and isinstance(q, Empty):
        return str(p.path) == str(q.path)
    if isinstance(p, Empty) and isinstance(q, Exists):
        return str(p.path) == str(q.path)
    return False


def _atom_interval(op: str, value: float) -> tuple[float, float, bool, bool]:
    """Interval (lo, hi, lo_open, hi_open) of a numeric comparison atom."""
    inf = float("inf")
    if op == "=":
        return (value, value, False, False)
    if op == "<":
        return (-inf, value, True, True)
    if op == "<=":
        return (-inf, value, True, False)
    if op == ">":
        return (value, inf, True, True)
    if op == ">=":
        return (value, inf, False, True)
    raise AssertionError(op)


def _comparisons_disjoint(p: Comparison, q: Comparison) -> bool:
    """Unsatisfiability of ``p ∧ q`` over a single value on the same path."""
    both_numeric = True
    try:
        pv = float(p.value)  # type: ignore[arg-type]
        qv = float(q.value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        both_numeric = False
    if not both_numeric:
        # String reasoning: only equalities are decidable.
        if p.op == "=" and q.op == "=":
            return p.value != q.value
        if p.op == "=" and q.op == "!=":
            return p.value == q.value
        if p.op == "!=" and q.op == "=":
            return p.value == q.value
        return False
    if "!=" in (p.op, q.op):
        if p.op == "!=" and q.op == "=":
            return pv == qv
        if q.op == "!=" and p.op == "=":
            return pv == qv
        return False  # two ≠, or ≠ with an inequality, always satisfiable
    lo1, hi1, lo1_open, hi1_open = _atom_interval(p.op, pv)
    lo2, hi2, lo2_open, hi2_open = _atom_interval(q.op, qv)
    lo = max(lo1, lo2)
    hi = min(hi1, hi2)
    if lo < hi:
        return False
    if lo > hi:
        return True
    # lo == hi: the single point is in the intersection iff closed on the
    # touching side in both intervals.
    lo_open = lo1_open if lo1 > lo2 else lo2_open if lo2 > lo1 else (lo1_open or lo2_open)
    hi_open = hi1_open if hi1 < hi2 else hi2_open if hi2 < hi1 else (hi1_open or hi2_open)
    return lo_open or hi_open


def definitely_disjoint(
    p: Predicate, q: Predicate, single_valued_paths: bool = True
) -> bool:
    """Sound (never wrongly True) test that ``p ∧ q`` is unsatisfiable.

    ``single_valued_paths`` asserts that the terminal paths mentioned by
    the predicates select at most one node per document (the usual case for
    fragmentation attributes like ``/Item/Section``; the caller derives the
    guarantee from schema cardinalities). Without it, comparisons have
    existential semantics and two different equalities can both hold, so
    almost nothing is refutable.

    Conjunctions distribute: ``And(a, b)`` is disjoint from ``q`` when any
    conjunct is.
    """
    if isinstance(p, And):
        return any(
            definitely_disjoint(part, q, single_valued_paths) for part in p.parts
        )
    if isinstance(q, And):
        return any(
            definitely_disjoint(p, part, single_valued_paths) for part in q.parts
        )
    if isinstance(p, Or):
        return all(
            definitely_disjoint(part, q, single_valued_paths) for part in p.parts
        )
    if isinstance(q, Or):
        return all(
            definitely_disjoint(p, part, single_valued_paths) for part in q.parts
        )
    if complements(p, q):
        return True
    if isinstance(p, Comparison) and isinstance(q, Comparison):
        if str(p.path) != str(q.path) or not single_valued_paths:
            return False
        return _comparisons_disjoint(p, q)
    if isinstance(p, Not) and isinstance(p.inner, Comparison) and isinstance(q, Comparison):
        # not(P θ v) over a single-valued path equals P ¬θ v.
        if single_valued_paths:
            inner = p.inner
            flipped = Comparison(inner.path, _NEGATED_OP[inner.op], inner.value)
            return definitely_disjoint(flipped, q, single_valued_paths)
        return False
    if isinstance(q, Not):
        return definitely_disjoint(q, p, single_valued_paths) if not isinstance(p, Not) else False
    if isinstance(p, Exists) and isinstance(q, Empty):
        return str(p.path) == str(q.path)
    if isinstance(p, Empty) and isinstance(q, Exists):
        return str(p.path) == str(q.path)
    if isinstance(p, Contains) and isinstance(q, Not) and isinstance(q.inner, Contains):
        return str(p) == str(q.inner)
    return False


def covers_all(predicates: list[Predicate]) -> bool:
    """Syntactic completeness: does the disjunction cover every document?

    Recognizes the common complete designs: a complement pair among the
    predicates, an equality family ``{P=v1, ..., P=vk, P∉{v1..vk}}``
    expressed with a conjunction of ``≠`` atoms, or an explicit
    :class:`TruePredicate`. Returns False when coverage cannot be shown
    syntactically (an empirical check remains available in
    ``repro.partix.correctness``).
    """
    for p in predicates:
        if isinstance(p, TruePredicate):
            return True
    for i, p in enumerate(predicates):
        for q in predicates[i + 1 :]:
            if complements(p, q):
                return True
    # Equality family: fragments P=v1 ... P=vk plus a residual fragment
    # whose predicate entails P≠vi for every i.
    eq_values: dict[str, set[object]] = {}
    for p in predicates:
        if isinstance(p, Comparison) and p.op == "=":
            eq_values.setdefault(str(p.path), set()).add(p.value)
    for path_str, values in eq_values.items():
        for p in predicates:
            atoms = list(p.parts) if isinstance(p, And) else [p]
            ne_values = {
                a.value
                for a in atoms
                if isinstance(a, Comparison) and a.op == "!=" and str(a.path) == path_str
            }
            if ne_values and ne_values <= values and len(atoms) == len(ne_values):
                return True
    return False
