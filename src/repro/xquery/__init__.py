"""XQuery subset: lexer, parser, evaluator, functions and static analysis."""

from repro.xquery.analysis import QueryAnalysis, analyze_query, steps_to_path
from repro.xquery.evaluator import (
    DocumentProvider,
    DynamicContext,
    EmptyProvider,
    Evaluator,
    evaluate_query,
)
from repro.xquery.parser import parse_query
from repro.xquery.values import (
    atomize,
    effective_boolean,
    general_compare,
    string_value,
    to_number,
)

__all__ = [
    "DocumentProvider",
    "DynamicContext",
    "EmptyProvider",
    "Evaluator",
    "QueryAnalysis",
    "analyze_query",
    "atomize",
    "effective_boolean",
    "evaluate_query",
    "general_compare",
    "parse_query",
    "steps_to_path",
    "string_value",
    "to_number",
]
