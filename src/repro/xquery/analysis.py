"""Static analysis of XQuery ASTs for distributed processing.

PartiX decomposes a query by confronting what the query *touches* with how
the collection is fragmented (§3: "when a query arrives, PartiX analyzes
the fragmentation schema to properly split it into sub-queries"). This
module extracts from an AST:

* the collections the query reads (``collection()`` calls);
* the absolute paths it navigates (entry paths of ``for`` variables plus
  relative continuations), used to match vertical fragments;
* a best-effort *selection predicate* in the simple-predicate language,
  used to prune horizontal fragments whose definition contradicts it;
* the top-level aggregation shape (``count``/``sum``/``min``/``max``/
  ``avg``), which tells the composer how to merge partial results.

The analysis is conservative: whatever it cannot understand it reports as
"unknown", and the decomposer then ships the query to every fragment —
correct, merely less efficient. (The paper's prototype did not rewrite
automatically at all; see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.paths.ast import Axis, PathExpr, Step
from repro.paths.predicates import (
    And,
    Comparison,
    Contains,
    Empty,
    Exists,
    Not,
    Or,
    Predicate,
    StartsWith,
)
from repro.xquery.ast_nodes import (
    AttributeConstructor,
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    FilterExpr,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    PathApply,
    Quantified,
    RangeExpr,
    SequenceExpr,
    TextConstructor,
    UnaryOp,
    VarRef,
)
from repro.xquery.parser import parse_query

AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})

#: Boolean quantifiers that decompose like aggregates: each fragment
#: ships one scalar (``true``/``false``) and the composer folds them with
#: any/all — the same O(1)-bytes-per-fragment pushdown as ``count``.
BOOLEAN_AGGREGATE_FUNCTIONS = frozenset({"exists", "empty"})

#: Everything :func:`_top_level_aggregate` recognizes for pushdown.
DECOMPOSABLE_AGGREGATES = AGGREGATE_FUNCTIONS | BOOLEAN_AGGREGATE_FUNCTIONS


@dataclass
class QueryAnalysis:
    """What the analyzer learned about one query."""

    collections: set[Optional[str]] = field(default_factory=set)
    documents: set[str] = field(default_factory=set)
    touched_paths: list[PathExpr] = field(default_factory=list)
    paths_exact: bool = True
    binding_paths: list[PathExpr] = field(default_factory=list)
    bindings_exact: bool = True
    predicate: Optional[Predicate] = None
    predicate_exact: bool = False
    aggregate: Optional[str] = None
    uses_text_search: bool = False

    def touched_path_strings(self) -> list[str]:
        return [str(p) for p in self.touched_paths]

    def selectivity_hint(self) -> float:
        """Crude fraction of a fragment's bytes the query's result keeps.

        Consumed by the planner's cost model
        (:class:`repro.plan.cost.CostModel`) to size estimated partial
        results. Deliberately coarse — three buckets, no statistics:
        aggregates ship a scalar (0.0), a selection predicate filters
        (0.25), everything else projects most of what it scans (0.75).
        """
        if self.aggregate is not None:
            return 0.0
        if self.predicate is not None:
            return 0.25
        return 0.75


def analyze_query(query: Union[str, Expr]) -> QueryAnalysis:
    """Analyze a query given as text or AST."""
    expr = parse_query(query) if isinstance(query, str) else query
    analysis = QueryAnalysis()
    analysis.aggregate = _top_level_aggregate(expr)
    walk_target = expr
    if analysis.aggregate == "count":
        # count() only needs cardinality: a counted FLWOR returning the
        # bare iteration variable touches nothing through that return.
        walk_target = _neutralize_counted_returns(expr)
    analyzer = _Analyzer(analysis)
    analyzer.walk(walk_target, {})
    predicate, exact = analyzer.selection_predicate(expr)
    analysis.predicate = predicate
    analysis.predicate_exact = exact
    return analysis


def _neutralize_counted_returns(expr: Expr) -> Expr:
    """Replace ``count(for ... return $v)``'s return with a literal.

    Only applied for path/binding analysis — never for execution — so the
    decomposer localizes such counts to the fragments the *filters* touch.
    """
    if isinstance(expr, FunctionCall) and expr.name == "count" and len(expr.args) == 1:
        inner = expr.args[0]
        if isinstance(inner, FLWOR) and isinstance(inner.return_expr, VarRef):
            neutral = FLWOR(
                inner.clauses, inner.where, inner.order_by, Literal(1)
            )
            return FunctionCall("count", (neutral,))
    if isinstance(expr, ElementConstructor) and len(expr.content) == 1:
        return ElementConstructor(
            expr.name, (_neutralize_counted_returns(expr.content[0]),)
        )
    if isinstance(expr, FLWOR) and all(
        isinstance(c, LetClause) for c in expr.clauses
    ):
        return FLWOR(
            expr.clauses,
            expr.where,
            expr.order_by,
            _neutralize_counted_returns(expr.return_expr),
        )
    return expr


def _top_level_aggregate(expr: Expr) -> Optional[str]:
    """Aggregate function applied at the outermost level, if any.

    Recognizes ``count(...)``, ``element r { count(...) }`` and
    ``let ... return count(...)`` shapes. ``avg`` is reported but the
    composer re-derives it from distributed sum/count. ``exists``/
    ``empty`` count as aggregates too: their partials are one boolean
    per fragment, folded by the composer with any/all.
    """
    if isinstance(expr, FunctionCall) and expr.name in DECOMPOSABLE_AGGREGATES:
        return expr.name
    if isinstance(expr, ElementConstructor) and len(expr.content) == 1:
        return _top_level_aggregate(expr.content[0])
    if isinstance(expr, FLWOR) and all(
        isinstance(c, LetClause) for c in expr.clauses
    ):
        return _top_level_aggregate(expr.return_expr)
    return None


def steps_to_path(
    steps: tuple[AxisStep, ...],
    prefix: Optional[PathExpr] = None,
    ignore_predicates: bool = True,
) -> Optional[PathExpr]:
    """Convert XQuery axis steps to a :class:`PathExpr` when possible.

    Step predicates only *filter* the selected node set, so for location
    analysis they are dropped by default (``ignore_predicates``); their
    inner conditions are analyzed separately. A trailing ``text()`` test
    (value access) is dropped; a non-trailing one cannot be expressed and
    makes the conversion give up (returns None).
    """
    converted: list[Step] = list(prefix.steps) if prefix is not None else []
    for index, step in enumerate(steps):
        if step.is_text:
            if index == len(steps) - 1:
                break  # trailing text() reads the value of the prior step
            return None
        if step.predicates and not ignore_predicates:
            return None
        axis = Axis.DESCENDANT if step.axis == "descendant-or-self" else Axis.CHILD
        converted.append(
            Step(axis=axis, name=step.name, is_attribute=step.is_attribute)
        )
    if not converted:
        return None
    try:
        return PathExpr(tuple(converted))
    except ValueError:
        return None


class _Analyzer:
    """Single-pass walker recording collections, documents and paths."""

    def __init__(self, analysis: QueryAnalysis):
        self.analysis = analysis
        self._let_vars: set[str] = set()

    # ------------------------------------------------------------------
    def walk(self, expr: Expr, var_paths: dict[str, Optional[PathExpr]]) -> None:
        """Recursively record inputs and touched paths.

        ``var_paths`` maps in-scope variables to the absolute path their
        items were selected by (None when unknown).
        """
        if isinstance(expr, FunctionCall):
            self._record_input(expr)
            if expr.name in ("contains", "starts-with", "ends-with"):
                self.analysis.uses_text_search = True
            for arg in expr.args:
                self.walk(arg, var_paths)
            return
        if isinstance(expr, PathApply):
            path = self.resolve_path(expr, var_paths)
            if path is not None:
                self.analysis.touched_paths.append(path)
            else:
                self.analysis.paths_exact = False
            # Var/context primaries are consumed by path resolution; other
            # primaries (collection calls, nested expressions) are walked.
            if expr.primary is not None and not isinstance(
                expr.primary, (VarRef, ContextItem)
            ):
                self.walk(expr.primary, var_paths)
            for step in expr.steps:
                for predicate in step.predicates:
                    self.walk(predicate, var_paths)
            return
        if isinstance(expr, VarRef):
            # A variable used *bare* (not as a path primary) exposes its
            # whole binding: record the binding path as touched.
            binding = var_paths.get(expr.name)
            if binding is not None:
                self.analysis.touched_paths.append(binding)
            elif expr.name not in self._let_vars:
                self.analysis.paths_exact = False
            return
        if isinstance(expr, FLWOR):
            scope = dict(var_paths)
            for clause in expr.clauses:
                if isinstance(clause, ForClause):
                    self._walk_binding_seq(clause.seq, scope)
                    scope[clause.var] = self._binding_path(clause.seq, scope)
                    if scope[clause.var] is not None:
                        self.analysis.binding_paths.append(scope[clause.var])
                    else:
                        self.analysis.bindings_exact = False
                    if clause.position_var:
                        self._let_vars.add(clause.position_var)
                else:
                    self._walk_binding_seq(clause.expr, scope)
                    scope[clause.var] = self._binding_path(clause.expr, scope)
                    if scope[clause.var] is None:
                        self._let_vars.add(clause.var)
            if expr.where is not None:
                self.walk(expr.where, scope)
            for spec in expr.order_by:
                self.walk(spec.key, scope)
            self.walk(expr.return_expr, scope)
            return
        if isinstance(expr, Quantified):
            scope = dict(var_paths)
            self._walk_binding_seq(expr.seq, scope)
            scope[expr.var] = self._binding_path(expr.seq, scope)
            self.walk(expr.condition, scope)
            return
        for child in _children(expr):
            self.walk(child, var_paths)

    def _walk_binding_seq(
        self, seq: Expr, var_paths: dict[str, Optional[PathExpr]]
    ) -> None:
        """Walk a for/let binding sequence without recording its own path.

        The binding path only *navigates to* the items; what the query
        touches is determined by how the variable is used. Inputs
        (collection calls) and step predicates are still recorded.
        """
        if isinstance(seq, PathApply):
            if seq.primary is not None:
                self.walk(seq.primary, var_paths)
            for step in seq.steps:
                for predicate in step.predicates:
                    self.walk(predicate, var_paths)
            if self.resolve_path(seq, var_paths) is None:
                self.analysis.paths_exact = False
            return
        self.walk(seq, var_paths)

    def _record_input(self, call: FunctionCall) -> None:
        if call.name == "collection":
            if call.args and isinstance(call.args[0], Literal):
                self.analysis.collections.add(str(call.args[0].value))
            else:
                self.analysis.collections.add(None)
        elif call.name == "doc":
            if call.args and isinstance(call.args[0], Literal):
                self.analysis.documents.add(str(call.args[0].value))

    def _binding_path(
        self, seq: Expr, var_paths: dict[str, Optional[PathExpr]]
    ) -> Optional[PathExpr]:
        if isinstance(seq, PathApply):
            return self.resolve_path(seq, var_paths)
        return None

    def resolve_path(
        self, expr: PathApply, var_paths: dict[str, Optional[PathExpr]]
    ) -> Optional[PathExpr]:
        """Absolute path selected by ``expr``, when statically derivable."""
        if expr.primary is None:
            return steps_to_path(expr.steps)
        if isinstance(expr.primary, ContextItem):
            # Context-relative: only resolvable when the caller knows the
            # context path (registered under the pseudo-variable name).
            base = var_paths.get("__context__")
            if base is None:
                return None
            return steps_to_path(expr.steps, prefix=base)
        if isinstance(expr.primary, FunctionCall) and expr.primary.name in (
            "collection",
            "doc",
        ):
            return steps_to_path(expr.steps)
        if isinstance(expr.primary, VarRef):
            base = var_paths.get(expr.primary.name)
            if base is None:
                return None
            return steps_to_path(expr.steps, prefix=base)
        if isinstance(expr.primary, PathApply):
            base = self.resolve_path(expr.primary, var_paths)
            if base is None:
                return None
            return steps_to_path(expr.steps, prefix=base)
        return None

    # ------------------------------------------------------------------
    # Selection-predicate extraction
    # ------------------------------------------------------------------
    def selection_predicate(self, expr: Expr) -> tuple[Optional[Predicate], bool]:
        """Best-effort conversion of the query's filters into a Predicate.

        Returns ``(predicate, exact)``: ``predicate`` is None when nothing
        was extracted; ``exact`` is True when *all* filters were captured
        (so the decomposer may rely on it for pruning without re-checking).
        """
        collector = _PredicateCollector(self)
        collector.collect(expr, {})
        if not collector.parts:
            return None, collector.exact
        if len(collector.parts) == 1:
            return collector.parts[0], collector.exact
        return And(tuple(collector.parts)), collector.exact

    def convert_condition(
        self, expr: Expr, var_paths: dict[str, Optional[PathExpr]]
    ) -> Optional[Predicate]:
        """Convert a boolean expression into a simple Predicate, or None."""
        if isinstance(expr, BinaryOp):
            if expr.op == "and":
                left = self.convert_condition(expr.left, var_paths)
                right = self.convert_condition(expr.right, var_paths)
                if left is not None and right is not None:
                    return And((left, right))
                return None
            if expr.op == "or":
                left = self.convert_condition(expr.left, var_paths)
                right = self.convert_condition(expr.right, var_paths)
                if left is not None and right is not None:
                    return Or((left, right))
                return None
            if expr.op in ("=", "!=", "<", "<=", ">", ">="):
                return self._convert_comparison(expr, var_paths)
            return None
        if isinstance(expr, FunctionCall):
            return self._convert_boolean_function(expr, var_paths)
        if isinstance(expr, PathApply):
            path = self.resolve_path(expr, var_paths)
            return Exists(path) if path is not None else None
        return None

    def _convert_comparison(
        self, expr: BinaryOp, var_paths: dict[str, Optional[PathExpr]]
    ) -> Optional[Predicate]:
        sides = [(expr.left, expr.right, expr.op), (expr.right, expr.left, _flip(expr.op))]
        for path_side, value_side, op in sides:
            if isinstance(path_side, PathApply) and isinstance(value_side, Literal):
                path = self.resolve_path(path_side, var_paths)
                if path is not None:
                    return Comparison(path, op, value_side.value)
        return None

    def _convert_boolean_function(
        self, expr: FunctionCall, var_paths: dict[str, Optional[PathExpr]]
    ) -> Optional[Predicate]:
        if expr.name == "not" and len(expr.args) == 1:
            inner = self.convert_condition(expr.args[0], var_paths)
            return Not(inner) if inner is not None else None
        if expr.name in ("contains", "starts-with") and len(expr.args) == 2:
            path_arg, needle_arg = expr.args
            if isinstance(path_arg, PathApply) and isinstance(needle_arg, Literal):
                path = self.resolve_path(path_arg, var_paths)
                if path is None:
                    return None
                needle = str(needle_arg.value)
                if expr.name == "contains":
                    return Contains(path, needle)
                return StartsWith(path, needle)
            return None
        if expr.name in ("empty", "exists") and len(expr.args) == 1:
            arg = expr.args[0]
            if isinstance(arg, PathApply):
                path = self.resolve_path(arg, var_paths)
                if path is None:
                    return None
                return Empty(path) if expr.name == "empty" else Exists(path)
        return None


class _PredicateCollector:
    """Collects where-clause and step-predicate filters along for-chains."""

    def __init__(self, analyzer: _Analyzer):
        self.analyzer = analyzer
        self.parts: list[Predicate] = []
        self.exact = True

    def collect(self, expr: Expr, var_paths: dict[str, Optional[PathExpr]]) -> None:
        if isinstance(expr, FLWOR):
            scope = dict(var_paths)
            for clause in expr.clauses:
                if isinstance(clause, ForClause):
                    self._collect_step_predicates(clause.seq, scope)
                    scope[clause.var] = self.analyzer._binding_path(clause.seq, scope)
                else:
                    scope[clause.var] = self.analyzer._binding_path(clause.expr, scope)
            if expr.where is not None:
                converted = self.analyzer.convert_condition(expr.where, scope)
                if converted is not None:
                    self.parts.append(converted)
                else:
                    self.exact = False
            self.collect(expr.return_expr, scope)
            return
        if isinstance(expr, (ElementConstructor, SequenceExpr)):
            children = expr.content if isinstance(expr, ElementConstructor) else expr.items
            for child in children:
                self.collect(child, var_paths)
            return
        if isinstance(expr, FunctionCall):
            for arg in expr.args:
                self.collect(arg, var_paths)
            return
        if isinstance(expr, PathApply):
            self._collect_step_predicates(expr, var_paths)

    def _collect_step_predicates(
        self, expr: Expr, var_paths: dict[str, Optional[PathExpr]]
    ) -> None:
        if not isinstance(expr, PathApply):
            return
        # Predicates inside steps (e.g. /Item[Section="CD"]) apply with the
        # step's node as context; resolve them against the path up to and
        # including that step.
        prefix_steps: list[AxisStep] = []
        for step in expr.steps:
            prefix_steps.append(
                AxisStep(step.axis, step.name, step.is_attribute, step.is_text)
            )
            if not step.predicates:
                continue
            context_path = self.analyzer.resolve_path(
                PathApply(expr.primary, tuple(prefix_steps), expr.absolute),
                var_paths,
            )
            for predicate in step.predicates:
                converted = self._convert_relative(predicate, context_path)
                if converted is not None:
                    self.parts.append(converted)
                else:
                    self.exact = False

    def _convert_relative(
        self, predicate: Expr, context_path: Optional[PathExpr]
    ) -> Optional[Predicate]:
        if context_path is None:
            return None
        # Inside a step predicate, bare relative paths hang off the context
        # node; reuse convert_condition with a pseudo-variable.
        pseudo = {"__context__": context_path}
        rewritten = _rewrite_context(predicate)
        return self.analyzer.convert_condition(rewritten, pseudo)


def _rewrite_context(expr: Expr) -> Expr:
    """Replace ContextItem primaries with a pseudo-variable for resolution."""
    if isinstance(expr, PathApply):
        primary = expr.primary
        if primary is None or isinstance(primary, ContextItem):
            primary = VarRef("__context__")
        else:
            primary = _rewrite_context(primary)
        return PathApply(primary, expr.steps, expr.absolute)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _rewrite_context(expr.left), _rewrite_context(expr.right))
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(_rewrite_context(a) for a in expr.args))
    return expr


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _children(expr: Expr) -> list[Expr]:
    """Direct sub-expressions for generic traversal."""
    if isinstance(expr, SequenceExpr):
        return list(expr.items)
    if isinstance(expr, RangeExpr):
        return [expr.start, expr.end]
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, IfExpr):
        return [expr.condition, expr.then_branch, expr.else_branch]
    if isinstance(expr, FilterExpr):
        return [expr.primary, *expr.predicates]
    if isinstance(expr, (ElementConstructor, AttributeConstructor, TextConstructor)):
        return list(expr.content)
    return []
