"""Built-in function library of the XQuery subset.

Each function takes the dynamic context and the (already evaluated)
argument sequences and returns a result sequence. The library covers the
functions the paper's query sets use — aggregation (``count``/``sum``/
``avg``/``min``/``max``), text search (``contains``/``starts-with``), and
the usual accessors — plus input functions ``collection``/``doc`` resolved
through the context's document provider.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.datamodel.tree import XMLNode
from repro.errors import XQueryEvaluationError, XQueryTypeError
from repro.xquery.values import (
    atomic_to_string,
    atomize,
    effective_boolean,
    string_value,
    to_number,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xquery.evaluator import DynamicContext

FunctionImpl = Callable[["DynamicContext", list[list]], list]

_REGISTRY: dict[str, FunctionImpl] = {}


def register(name: str) -> Callable[[FunctionImpl], FunctionImpl]:
    def decorator(fn: FunctionImpl) -> FunctionImpl:
        _REGISTRY[name] = fn
        return fn

    return decorator


def lookup(name: str) -> FunctionImpl:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise XQueryEvaluationError(f"unknown function {name}()") from None


def known_functions() -> list[str]:
    return sorted(_REGISTRY)


def _require_args(name: str, args: list[list], minimum: int, maximum: int) -> None:
    if not (minimum <= len(args) <= maximum):
        raise XQueryTypeError(
            f"{name}() takes {minimum}..{maximum} arguments, got {len(args)}"
        )


# ----------------------------------------------------------------------
# Input functions
# ----------------------------------------------------------------------
@register("collection")
def _collection(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("collection", args, 0, 1)
    name = string_value(args[0]) if args else None
    return list(ctx.provider.collection_roots(name))


@register("doc")
def _doc(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("doc", args, 1, 1)
    root = ctx.provider.document_root(string_value(args[0]))
    return [root] if root is not None else []


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@register("count")
def _count(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("count", args, 1, 1)
    return [len(args[0])]


@register("sum")
def _sum(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("sum", args, 1, 2)
    values = [to_number(v) for v in atomize(args[0])]
    if any(math.isnan(v) for v in values):
        raise XQueryTypeError("sum() over non-numeric values")
    return [float(sum(values))]


@register("avg")
def _avg(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("avg", args, 1, 1)
    if not args[0]:
        return []
    values = [to_number(v) for v in atomize(args[0])]
    if any(math.isnan(v) for v in values):
        raise XQueryTypeError("avg() over non-numeric values")
    return [float(sum(values)) / len(values)]


def _min_max(args: list[list], pick) -> list:
    if not args[0]:
        return []
    values = atomize(args[0])
    numbers = [to_number(v) for v in values]
    if all(not math.isnan(n) for n in numbers):
        return [pick(numbers)]
    return [pick(atomic_to_string(v) for v in values)]


@register("min")
def _min(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("min", args, 1, 1)
    return _min_max(args, min)


@register("max")
def _max(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("max", args, 1, 1)
    return _min_max(args, max)


# ----------------------------------------------------------------------
# Boolean
# ----------------------------------------------------------------------
@register("not")
def _not(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("not", args, 1, 1)
    return [not effective_boolean(args[0])]


@register("empty")
def _empty(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("empty", args, 1, 1)
    return [not args[0]]


@register("exists")
def _exists(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("exists", args, 1, 1)
    return [bool(args[0])]


@register("true")
def _true(ctx: "DynamicContext", args: list[list]) -> list:
    return [True]


@register("false")
def _false(ctx: "DynamicContext", args: list[list]) -> list:
    return [False]


@register("boolean")
def _boolean(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("boolean", args, 1, 1)
    return [effective_boolean(args[0])]


# ----------------------------------------------------------------------
# Strings
# ----------------------------------------------------------------------
@register("string")
def _string(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("string", args, 0, 1)
    if not args:
        item = ctx.context_item
        return [item.text_value() if isinstance(item, XMLNode) else atomic_to_string(item)]
    return [string_value(args[0])]


@register("contains")
def _contains(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("contains", args, 2, 2)
    haystacks = atomize(args[0]) or [""]
    needle = string_value(args[1])
    # Existential over the first argument: eXist's contains() over a node
    # sequence holds when any node's value contains the needle, which is
    # what the paper's text-search queries rely on.
    return [any(needle in atomic_to_string(h) for h in haystacks)]


@register("starts-with")
def _starts_with(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("starts-with", args, 2, 2)
    haystacks = atomize(args[0]) or [""]
    prefix = string_value(args[1])
    return [any(atomic_to_string(h).startswith(prefix) for h in haystacks)]


@register("ends-with")
def _ends_with(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("ends-with", args, 2, 2)
    haystacks = atomize(args[0]) or [""]
    suffix = string_value(args[1])
    return [any(atomic_to_string(h).endswith(suffix) for h in haystacks)]


@register("string-length")
def _string_length(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("string-length", args, 1, 1)
    return [len(string_value(args[0]))]


@register("concat")
def _concat(ctx: "DynamicContext", args: list[list]) -> list:
    if len(args) < 2:
        raise XQueryTypeError("concat() takes at least 2 arguments")
    return ["".join(string_value(a) for a in args)]


@register("substring")
def _substring(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("substring", args, 2, 3)
    text = string_value(args[0])
    start = int(to_number(atomize(args[1])[0])) if args[1] else 1
    begin = max(start - 1, 0)
    if len(args) == 3 and args[2]:
        length = int(to_number(atomize(args[2])[0]))
        return [text[begin : begin + max(length, 0)]]
    return [text[begin:]]


@register("string-join")
def _string_join(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("string-join", args, 1, 2)
    separator = string_value(args[1]) if len(args) == 2 else ""
    return [separator.join(atomic_to_string(v) for v in atomize(args[0]))]


@register("substring-before")
def _substring_before(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("substring-before", args, 2, 2)
    text = string_value(args[0])
    needle = string_value(args[1])
    index = text.find(needle) if needle else -1
    return [text[:index] if index >= 0 else ""]


@register("substring-after")
def _substring_after(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("substring-after", args, 2, 2)
    text = string_value(args[0])
    needle = string_value(args[1])
    index = text.find(needle) if needle else -1
    return [text[index + len(needle) :] if index >= 0 else ""]


@register("translate")
def _translate(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("translate", args, 3, 3)
    text = string_value(args[0])
    source = string_value(args[1])
    target = string_value(args[2])
    table = {}
    for position, char in enumerate(source):
        table[ord(char)] = target[position] if position < len(target) else None
    return [text.translate(table)]


@register("matches")
def _matches(ctx: "DynamicContext", args: list[list]) -> list:
    import re

    _require_args("matches", args, 2, 2)
    return [re.search(string_value(args[1]), string_value(args[0])) is not None]


@register("replace")
def _replace(ctx: "DynamicContext", args: list[list]) -> list:
    import re

    _require_args("replace", args, 3, 3)
    return [
        re.sub(string_value(args[1]), string_value(args[2]), string_value(args[0]))
    ]


@register("tokenize")
def _tokenize(ctx: "DynamicContext", args: list[list]) -> list:
    import re

    _require_args("tokenize", args, 2, 2)
    text = string_value(args[0])
    if not text:
        return []
    return [token for token in re.split(string_value(args[1]), text)]


@register("normalize-space")
def _normalize_space(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("normalize-space", args, 1, 1)
    return [" ".join(string_value(args[0]).split())]


@register("upper-case")
def _upper_case(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("upper-case", args, 1, 1)
    return [string_value(args[0]).upper()]


@register("lower-case")
def _lower_case(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("lower-case", args, 1, 1)
    return [string_value(args[0]).lower()]


# ----------------------------------------------------------------------
# Numbers
# ----------------------------------------------------------------------
@register("number")
def _number(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("number", args, 0, 1)
    if not args:
        item = ctx.context_item
        return [to_number(item.text_value() if isinstance(item, XMLNode) else item)]
    if not args[0]:
        return [float("nan")]
    return [to_number(atomize(args[0])[0])]


@register("abs")
def _abs(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("abs", args, 1, 1)
    if not args[0]:
        return []
    return [abs(to_number(atomize(args[0])[0]))]


@register("round")
def _round(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("round", args, 1, 1)
    if not args[0]:
        return []
    value = to_number(atomize(args[0])[0])
    return [float(math.floor(value + 0.5))]


@register("floor")
def _floor(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("floor", args, 1, 1)
    if not args[0]:
        return []
    return [float(math.floor(to_number(atomize(args[0])[0])))]


@register("ceiling")
def _ceiling(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("ceiling", args, 1, 1)
    if not args[0]:
        return []
    return [float(math.ceil(to_number(atomize(args[0])[0])))]


# ----------------------------------------------------------------------
# Sequences / nodes
# ----------------------------------------------------------------------
@register("distinct-values")
def _distinct_values(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("distinct-values", args, 1, 1)
    seen = set()
    result = []
    for value in atomize(args[0]):
        key = atomic_to_string(value)
        if key not in seen:
            seen.add(key)
            result.append(value)
    return result


@register("data")
def _data(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("data", args, 1, 1)
    return atomize(args[0])


@register("name")
def _name(ctx: "DynamicContext", args: list[list]) -> list:
    _require_args("name", args, 0, 1)
    if args:
        if not args[0]:
            return [""]
        item = args[0][0]
    else:
        item = ctx.context_item
    if isinstance(item, XMLNode):
        return [item.label or ""]
    raise XQueryTypeError("name() requires a node")


@register("position")
def _position(ctx: "DynamicContext", args: list[list]) -> list:
    return [ctx.position]


@register("last")
def _last(ctx: "DynamicContext", args: list[list]) -> list:
    return [ctx.size]
