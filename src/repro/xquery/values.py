"""Value model of the XQuery subset: items, sequences, atomization.

A *sequence* is a Python list whose items are either :class:`XMLNode`
instances or atomic values (``str``, ``int``, ``float``, ``bool``).
This module centralizes the XPath-style coercions: atomization, effective
boolean value, numeric promotion, and general comparison.
"""

from __future__ import annotations

import math
from typing import Union

from repro.datamodel.tree import XMLNode
from repro.errors import XQueryTypeError

Item = Union[XMLNode, str, int, float, bool]
Sequence_ = list  # alias for documentation purposes

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def atomize_item(item: Item) -> Union[str, int, float, bool]:
    """Atomize one item: nodes become their (untyped) string value."""
    if isinstance(item, XMLNode):
        return item.text_value()
    return item


def atomize(sequence: list) -> list:
    """Atomize a whole sequence."""
    return [atomize_item(item) for item in sequence]


def effective_boolean(sequence: list) -> bool:
    """XPath effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, XMLNode):
        return True
    if len(sequence) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence"
        )
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return first != 0 and not (isinstance(first, float) and math.isnan(first))
    if isinstance(first, str):
        return len(first) > 0
    raise XQueryTypeError(f"no effective boolean value for {type(first).__name__}")


def to_number(value: Union[str, int, float, bool]) -> float:
    """Numeric value of an atomic (NaN for non-numeric strings)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(value.strip())
    except (ValueError, AttributeError):
        return float("nan")


def is_numeric_like(value: Union[str, int, float, bool]) -> bool:
    """Can the atomic participate in a numeric comparison?"""
    return not math.isnan(to_number(value))


def compare_atomics(left, right, op: str) -> bool:
    """Single-pair comparison with numeric promotion when possible."""
    fn = _OPS[op]
    if isinstance(left, bool) or isinstance(right, bool):
        return fn(bool(effective_boolean([left])), bool(effective_boolean([right])))
    if is_numeric_like(left) and is_numeric_like(right):
        return fn(to_number(left), to_number(right))
    return fn(str(left), str(right))


def general_compare(left_seq: list, right_seq: list, op: str) -> bool:
    """XPath general comparison: existential over both atomized sequences."""
    lefts = atomize(left_seq)
    rights = atomize(right_seq)
    return any(
        compare_atomics(a, b, op) for a in lefts for b in rights
    )


def string_value(sequence: list) -> str:
    """String value of a sequence (first item, or empty string)."""
    if not sequence:
        return ""
    return _atomic_to_string(atomize_item(sequence[0]))


def _atomic_to_string(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def atomic_to_string(value) -> str:
    """Canonical string form of one atomic value."""
    return _atomic_to_string(value)
