"""Lexer for the XQuery subset.

Produces a flat token stream for the recursive-descent parser. The token
language covers what the paper's query sets need: FLWOR keywords, path
operators (``/``, ``//``, ``@``, ``*``), comparison and arithmetic
operators, literals, variables, function calls and computed constructors.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import XQuerySyntaxError

KEYWORDS = {
    "for",
    "let",
    "where",
    "order",
    "stable",
    "by",
    "return",
    "in",
    "at",
    "if",
    "then",
    "else",
    "and",
    "or",
    "some",
    "every",
    "satisfies",
    "ascending",
    "descending",
    "empty",
    "greatest",
    "least",
    "element",
    "attribute",
    "text",
    "div",
    "mod",
    "to",
    "union",
    "intersect",
    "except",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    NAME = "name"
    VARIABLE = "variable"
    STRING = "string"
    NUMBER = "number"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value == symbol


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\(:.*?:\))                       # whitespace / comments
  | (?P<number>\d+(\.\d+)?|\.\d+)
  | (?P<string>"(?:[^"]|"")*"|'(?:[^']|'')*')
  | (?P<variable>\$[A-Za-z_][\w\-]*)
  | (?P<name>[A-Za-z_][\w\-.]*(?::[A-Za-z_][\w\-.]*)?)
  | (?P<symbol>//|::|:=|<=|>=|!=|\|\||[-+*/=<>(){}\[\],;@.|?])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`XQuerySyntaxError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise XQuerySyntaxError(
                f"unexpected character {text[pos]!r}", position=pos
            )
        if match.group("ws"):
            pos = match.end()
            continue
        if match.group("number"):
            tokens.append(Token(TokenType.NUMBER, match.group("number"), pos))
        elif match.group("string"):
            raw = match.group("string")
            quote = raw[0]
            body = raw[1:-1].replace(quote * 2, quote)
            tokens.append(Token(TokenType.STRING, body, pos))
        elif match.group("variable"):
            tokens.append(Token(TokenType.VARIABLE, match.group("variable")[1:], pos))
        elif match.group("name"):
            name = match.group("name")
            kind = TokenType.KEYWORD if name in KEYWORDS else TokenType.NAME
            tokens.append(Token(kind, name, pos))
        else:
            tokens.append(Token(TokenType.SYMBOL, match.group("symbol"), pos))
        pos = match.end()
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
