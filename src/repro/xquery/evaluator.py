"""Evaluator for the XQuery subset.

The evaluator walks the AST against a :class:`DynamicContext`, which
carries variable bindings, the context item (``.`` / position / size) and
a :class:`DocumentProvider` that resolves ``collection()``/``doc()`` calls.
Sequences are Python lists of nodes and atomics (see
:mod:`repro.xquery.values`).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Optional, Protocol, Union

from repro.datamodel.tree import NodeKind, XMLNode
from repro.errors import XQueryEvaluationError, XQueryTypeError
from repro.xquery import functions as fnlib
from repro.xquery.ast_nodes import (
    AttributeConstructor,
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    FilterExpr,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    PathApply,
    Quantified,
    RangeExpr,
    SequenceExpr,
    TextConstructor,
    UnaryOp,
    VarRef,
)
from repro.xquery.parser import parse_query
from repro.xquery.values import (
    atomic_to_string,
    atomize,
    effective_boolean,
    general_compare,
    is_numeric_like,
    to_number,
)


class DocumentProvider(Protocol):
    """Resolves the input functions of the query."""

    def collection_roots(self, name: Optional[str]) -> list[XMLNode]:
        """Root elements of the named collection (default when None)."""
        ...  # pragma: no cover - protocol

    def document_root(self, name: str) -> Optional[XMLNode]:
        """Root element of the named document, or None."""
        ...  # pragma: no cover - protocol


class EmptyProvider:
    """A provider with no documents (queries over literals only)."""

    def collection_roots(self, name: Optional[str]) -> list[XMLNode]:
        raise XQueryEvaluationError(
            f"no document provider: cannot resolve collection({name!r})"
        )

    def document_root(self, name: str) -> Optional[XMLNode]:
        raise XQueryEvaluationError(
            f"no document provider: cannot resolve doc({name!r})"
        )


@dataclass(frozen=True)
class DynamicContext:
    """Dynamic evaluation context."""

    provider: DocumentProvider = field(default_factory=EmptyProvider)
    variables: dict[str, list] = field(default_factory=dict)
    context_item: Optional[Union[XMLNode, str, int, float, bool]] = None
    position: int = 1
    size: int = 1

    def with_var(self, name: str, value: list) -> "DynamicContext":
        variables = dict(self.variables)
        variables[name] = value
        return replace(self, variables=variables)

    def with_focus(self, item, position: int, size: int) -> "DynamicContext":
        return replace(self, context_item=item, position=position, size=size)


def evaluate_query(
    query: Union[str, Expr],
    provider: Optional[DocumentProvider] = None,
    variables: Optional[dict[str, list]] = None,
    context_item=None,
) -> list:
    """Parse (when given text) and evaluate a query; returns a sequence."""
    expr = parse_query(query) if isinstance(query, str) else query
    ctx = DynamicContext(
        provider=provider if provider is not None else EmptyProvider(),
        variables=dict(variables or {}),
        context_item=context_item,
    )
    return Evaluator().evaluate(expr, ctx)


class Evaluator:
    """AST-walking evaluator."""

    def evaluate(self, expr: Expr, ctx: DynamicContext) -> list:
        method = getattr(self, "_eval_" + type(expr).__name__, None)
        if method is None:
            raise XQueryEvaluationError(
                f"no evaluation rule for {type(expr).__name__}"
            )
        return method(expr, ctx)

    # ------------------------------------------------------------------
    # Primaries
    # ------------------------------------------------------------------
    def _eval_Literal(self, expr: Literal, ctx: DynamicContext) -> list:
        return [expr.value]

    def _eval_VarRef(self, expr: VarRef, ctx: DynamicContext) -> list:
        try:
            return list(ctx.variables[expr.name])
        except KeyError:
            raise XQueryEvaluationError(f"unbound variable ${expr.name}") from None

    def _eval_ContextItem(self, expr: ContextItem, ctx: DynamicContext) -> list:
        if ctx.context_item is None:
            raise XQueryEvaluationError("context item is undefined")
        return [ctx.context_item]

    def _eval_SequenceExpr(self, expr: SequenceExpr, ctx: DynamicContext) -> list:
        result: list = []
        for item in expr.items:
            result.extend(self.evaluate(item, ctx))
        return result

    def _eval_RangeExpr(self, expr: RangeExpr, ctx: DynamicContext) -> list:
        start_seq = self.evaluate(expr.start, ctx)
        end_seq = self.evaluate(expr.end, ctx)
        if not start_seq or not end_seq:
            return []
        start = int(to_number(atomize(start_seq)[0]))
        end = int(to_number(atomize(end_seq)[0]))
        return list(range(start, end + 1))

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _eval_BinaryOp(self, expr: BinaryOp, ctx: DynamicContext) -> list:
        op = expr.op
        if op == "and":
            left = effective_boolean(self.evaluate(expr.left, ctx))
            if not left:
                return [False]
            return [effective_boolean(self.evaluate(expr.right, ctx))]
        if op == "or":
            left = effective_boolean(self.evaluate(expr.left, ctx))
            if left:
                return [True]
            return [effective_boolean(self.evaluate(expr.right, ctx))]
        left_seq = self.evaluate(expr.left, ctx)
        right_seq = self.evaluate(expr.right, ctx)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return [general_compare(left_seq, right_seq, op)]
        if op in ("union", "intersect", "except"):
            return _node_set_op(op, left_seq, right_seq)
        if op in ("+", "-", "*", "div", "mod"):
            if not left_seq or not right_seq:
                return []
            a = to_number(atomize(left_seq)[0])
            b = to_number(atomize(right_seq)[0])
            try:
                if op == "+":
                    return [a + b]
                if op == "-":
                    return [a - b]
                if op == "*":
                    return [a * b]
                if op == "div":
                    return [a / b]
                return [a % b]
            except ZeroDivisionError:
                raise XQueryEvaluationError("division by zero") from None
        raise XQueryEvaluationError(f"unknown operator {op!r}")

    def _eval_UnaryOp(self, expr: UnaryOp, ctx: DynamicContext) -> list:
        seq = self.evaluate(expr.operand, ctx)
        if not seq:
            return []
        value = to_number(atomize(seq)[0])
        return [-value if expr.op == "-" else value]

    # ------------------------------------------------------------------
    # Functions and conditionals
    # ------------------------------------------------------------------
    def _eval_FunctionCall(self, expr: FunctionCall, ctx: DynamicContext) -> list:
        impl = fnlib.lookup(expr.name)
        args = [self.evaluate(arg, ctx) for arg in expr.args]
        return impl(ctx, args)

    def _eval_IfExpr(self, expr: IfExpr, ctx: DynamicContext) -> list:
        if effective_boolean(self.evaluate(expr.condition, ctx)):
            return self.evaluate(expr.then_branch, ctx)
        return self.evaluate(expr.else_branch, ctx)

    def _eval_Quantified(self, expr: Quantified, ctx: DynamicContext) -> list:
        seq = self.evaluate(expr.seq, ctx)
        results = (
            effective_boolean(
                self.evaluate(expr.condition, ctx.with_var(expr.var, [item]))
            )
            for item in seq
        )
        if expr.kind == "some":
            return [any(results)]
        return [all(results)]

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _eval_PathApply(self, expr: PathApply, ctx: DynamicContext) -> list:
        if expr.primary is None:
            # Absolute path: anchor at the root of the context item's tree.
            if ctx.context_item is None or not isinstance(ctx.context_item, XMLNode):
                raise XQueryEvaluationError(
                    "absolute path with no context document"
                )
            sequence: list = [ctx.context_item.root()]
            virtual_first = True
        else:
            sequence = self.evaluate(expr.primary, ctx)
            # collection()/doc() return root *elements*; the first step
            # after them addresses the (virtual) document node's child, so
            # it must match the roots themselves — eXist semantics for
            # collection("c")/Item.
            virtual_first = isinstance(expr.primary, FunctionCall) and (
                expr.primary.name in ("collection", "doc")
            )
        for index, step in enumerate(expr.steps):
            first = virtual_first and index == 0
            sequence = self._apply_step(step, sequence, ctx, first)
            if not sequence:
                return []
        return sequence

    def _apply_step(
        self,
        step: AxisStep,
        sequence: list,
        ctx: DynamicContext,
        virtual_first: bool,
    ) -> list:
        results: list[XMLNode] = []
        seen: set[int] = set()
        for item in sequence:
            if not isinstance(item, XMLNode):
                raise XQueryTypeError(
                    f"path step /{step.name} applied to an atomic value"
                )
            candidates = self._axis_candidates(step, item, virtual_first)
            matched = [n for n in candidates if self._test(step, n)]
            if step.predicates:
                matched = self._filter(matched, step.predicates, ctx)
            for node in matched:
                if id(node) not in seen:
                    seen.add(id(node))
                    results.append(node)
        return results

    def _axis_candidates(
        self, step: AxisStep, node: XMLNode, virtual_first: bool
    ) -> list[XMLNode]:
        if virtual_first:
            # Leading '/' of an absolute path: the node itself plays the
            # document-node's child; '//' reaches the whole tree.
            if step.axis == "child":
                return [node]
            return list(node.descendants_or_self())
        if step.axis == "child":
            return list(node.children)
        return list(node.descendants())

    def _test(self, step: AxisStep, node: XMLNode) -> bool:
        if step.is_text:
            return node.kind is NodeKind.TEXT
        if step.is_attribute:
            return node.kind is NodeKind.ATTRIBUTE and node.label == step.name
        if node.kind is not NodeKind.ELEMENT:
            return False
        return step.name == "*" or node.label == step.name

    def _filter(
        self, sequence: list, predicates: tuple[Expr, ...], ctx: DynamicContext
    ) -> list:
        for predicate in predicates:
            size = len(sequence)
            kept = []
            for position, item in enumerate(sequence, start=1):
                inner = ctx.with_focus(item, position, size)
                value = self.evaluate(predicate, inner)
                if len(value) == 1 and isinstance(value[0], (int, float)) and not isinstance(value[0], bool):
                    if to_number(value[0]) == position:
                        kept.append(item)
                elif effective_boolean(value):
                    kept.append(item)
            sequence = kept
        return sequence

    def _eval_FilterExpr(self, expr: FilterExpr, ctx: DynamicContext) -> list:
        sequence = self.evaluate(expr.primary, ctx)
        return self._filter(sequence, expr.predicates, ctx)

    # ------------------------------------------------------------------
    # FLWOR
    # ------------------------------------------------------------------
    def _eval_FLWOR(self, expr: FLWOR, ctx: DynamicContext) -> list:
        tuples = [ctx]
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                new_tuples = []
                for tup in tuples:
                    seq = self.evaluate(clause.seq, tup)
                    for position, item in enumerate(seq, start=1):
                        bound = tup.with_var(clause.var, [item])
                        if clause.position_var is not None:
                            bound = bound.with_var(clause.position_var, [position])
                        new_tuples.append(bound)
                tuples = new_tuples
            else:
                assert isinstance(clause, LetClause)
                tuples = [
                    tup.with_var(clause.var, self.evaluate(clause.expr, tup))
                    for tup in tuples
                ]
        if expr.where is not None:
            tuples = [
                tup
                for tup in tuples
                if effective_boolean(self.evaluate(expr.where, tup))
            ]
        if expr.order_by:
            tuples = self._order_tuples(tuples, expr)
        results: list = []
        for tup in tuples:
            results.extend(self.evaluate(expr.return_expr, tup))
        return results

    def _order_tuples(self, tuples: list[DynamicContext], expr: FLWOR) -> list:
        def sort_key_for(spec_index: int):
            spec = expr.order_by[spec_index]

            def key(tup: DynamicContext):
                seq = atomize(self.evaluate(spec.key, tup))
                if not seq:
                    return (0, 0.0, "")
                value = seq[0]
                if is_numeric_like(value):
                    return (1, to_number(value), "")
                return (2, 0.0, atomic_to_string(value))

            return key

        # Stable multi-key sort: apply specs right-to-left.
        ordered = list(tuples)
        for index in range(len(expr.order_by) - 1, -1, -1):
            ordered.sort(
                key=sort_key_for(index), reverse=expr.order_by[index].descending
            )
        return ordered

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def _eval_ElementConstructor(
        self, expr: ElementConstructor, ctx: DynamicContext
    ) -> list:
        element = XMLNode.element(expr.name)
        pending_text: list[str] = []

        def flush() -> None:
            if pending_text:
                element.append(XMLNode.text(" ".join(pending_text)))
                pending_text.clear()

        for content_expr in expr.content:
            for item in self.evaluate(content_expr, ctx):
                if isinstance(item, XMLNode):
                    flush()
                    copy = item.clone(deep=True)
                    if copy.kind is NodeKind.ATTRIBUTE and element.children:
                        # Attributes must precede content; tolerate by
                        # inserting before non-attribute children.
                        copy.parent = element
                        element.children.insert(len(element.attributes()), copy)
                    else:
                        element.append(copy)
                else:
                    pending_text.append(atomic_to_string(item))
        flush()
        return [element]

    def _eval_AttributeConstructor(
        self, expr: AttributeConstructor, ctx: DynamicContext
    ) -> list:
        parts = []
        for content_expr in expr.content:
            for item in self.evaluate(content_expr, ctx):
                if isinstance(item, XMLNode):
                    parts.append(item.text_value())
                else:
                    parts.append(atomic_to_string(item))
        return [XMLNode.attribute(expr.name, " ".join(parts))]

    def _eval_TextConstructor(self, expr: TextConstructor, ctx: DynamicContext) -> list:
        parts = []
        for content_expr in expr.content:
            for item in self.evaluate(content_expr, ctx):
                parts.append(
                    item.text_value()
                    if isinstance(item, XMLNode)
                    else atomic_to_string(item)
                )
        return [XMLNode.text(" ".join(parts))]


def _node_set_op(op: str, left: list, right: list) -> list:
    for item in left + right:
        if not isinstance(item, XMLNode):
            raise XQueryTypeError(f"{op} operands must be node sequences")
    right_ids = {id(node) for node in right}
    seen: set[int] = set()
    result = []
    if op == "union":
        candidates = left + right
    elif op == "intersect":
        candidates = [node for node in left if id(node) in right_ids]
    else:  # except
        candidates = [node for node in left if id(node) not in right_ids]
    for node in candidates:
        if id(node) not in seen:
            seen.add(id(node))
            result.append(node)
    return result
