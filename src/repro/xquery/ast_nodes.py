"""AST for the XQuery subset.

Nodes are plain frozen dataclasses; the evaluator dispatches on type. The
subset implements what the paper's three query sets exercise:

* FLWOR expressions (``for``/``let``/``where``/``order by``/``return``)
* path expressions with child/descendant axes, wildcards, attributes and
  bracketed predicates (boolean or positional)
* general comparisons, arithmetic, boolean connectives
* quantified expressions (``some``/``every``)
* conditional expressions
* function calls (library in :mod:`repro.xquery.functions`)
* computed element/attribute/text constructors
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A string or numeric literal."""

    value: Union[str, float, int]


@dataclass(frozen=True)
class VarRef(Expr):
    """``$name``."""

    name: str


@dataclass(frozen=True)
class ContextItem(Expr):
    """``.`` — the current context item."""


@dataclass(frozen=True)
class SequenceExpr(Expr):
    """Comma sequence ``(e1, e2, ...)``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class RangeExpr(Expr):
    """``a to b`` — integer range sequence."""

    start: Expr
    end: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic (``+ - * div mod``), comparison (``= != < <= > >=``),
    logic (``and or``), or set union (``|``/``union``)."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary ``-`` / ``+``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    """``name(arg, ...)``."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class AxisStep(Expr):
    """One path step: axis + node test + bracketed predicates.

    ``axis`` is ``"child"`` or ``"descendant-or-self"``; the node test is
    an element name, ``"*"``, an attribute (``is_attribute``) or the
    ``text()`` node test (``is_text``).
    """

    axis: str
    name: str
    is_attribute: bool = False
    is_text: bool = False
    predicates: tuple[Expr, ...] = field(default=())


@dataclass(frozen=True)
class PathApply(Expr):
    """``primary/step/step...`` — steps applied to a primary expression.

    ``primary`` is None for absolute paths (``/a/b`` — resolved against
    the context document) and an expression otherwise
    (``$x/a``, ``collection("c")//d``).
    """

    primary: Optional[Expr]
    steps: tuple[AxisStep, ...]
    absolute: bool = False


@dataclass(frozen=True)
class FilterExpr(Expr):
    """``primary[predicate]`` on a non-step expression."""

    primary: Expr
    predicates: tuple[Expr, ...]


@dataclass(frozen=True)
class ForClause:
    var: str
    seq: Expr
    position_var: Optional[str] = None


@dataclass(frozen=True)
class LetClause:
    var: str
    expr: Expr


@dataclass(frozen=True)
class OrderSpec:
    key: Expr
    descending: bool = False


@dataclass(frozen=True)
class FLWOR(Expr):
    """A FLWOR expression."""

    clauses: tuple[Union[ForClause, LetClause], ...]
    where: Optional[Expr]
    order_by: tuple[OrderSpec, ...]
    return_expr: Expr


@dataclass(frozen=True)
class IfExpr(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True)
class Quantified(Expr):
    """``some/every $v in seq satisfies cond``."""

    kind: str  # "some" | "every"
    var: str
    seq: Expr
    condition: Expr


@dataclass(frozen=True)
class ElementConstructor(Expr):
    """``element name { content }`` — computed element constructor."""

    name: str
    content: tuple[Expr, ...]


@dataclass(frozen=True)
class AttributeConstructor(Expr):
    """``attribute name { content }``."""

    name: str
    content: tuple[Expr, ...]


@dataclass(frozen=True)
class TextConstructor(Expr):
    """``text { content }``."""

    content: tuple[Expr, ...]
