"""Recursive-descent parser for the XQuery subset.

Precedence (loosest to tightest): comma sequence, FLWOR/if/quantified,
``or``, ``and``, comparison, ``to`` range, additive, multiplicative,
union (``|``), unary, path, postfix predicates, primary.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XQuerySyntaxError
from repro.xquery.ast_nodes import (
    AttributeConstructor,
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    FilterExpr,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    OrderSpec,
    PathApply,
    Quantified,
    RangeExpr,
    SequenceExpr,
    TextConstructor,
    UnaryOp,
    VarRef,
)
from repro.xquery.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ADDITIVE_OPS = {"+", "-"}
_MULTIPLICATIVE_OPS = {"*", "div", "mod"}


def parse_query(text: str) -> Expr:
    """Parse an XQuery string into an AST."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            self._fail(f"expected {symbol!r}")

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self._fail(f"expected keyword {word!r}")

    def expect_name(self) -> str:
        token = self.current
        if token.type in (TokenType.NAME, TokenType.KEYWORD):
            self.advance()
            return token.value
        self._fail("expected a name")
        raise AssertionError  # unreachable

    def expect_variable(self) -> str:
        token = self.current
        if token.type is not TokenType.VARIABLE:
            self._fail("expected a variable ($name)")
        self.advance()
        return token.value

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            self._fail(f"unexpected trailing token {self.current.value!r}")

    def _fail(self, message: str) -> None:
        raise XQuerySyntaxError(message, position=self.current.position)

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        """Comma-separated sequence expression."""
        first = self.parse_expr_single()
        if not self.current.is_symbol(","):
            return first
        items = [first]
        while self.accept_symbol(","):
            items.append(self.parse_expr_single())
        return SequenceExpr(tuple(items))

    def parse_expr_single(self) -> Expr:
        token = self.current
        if token.is_keyword("for") or token.is_keyword("let"):
            return self._parse_flwor()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("some") or token.is_keyword("every"):
            return self._parse_quantified()
        return self._parse_or()

    # FLWOR --------------------------------------------------------------
    def _parse_flwor(self) -> Expr:
        clauses: list[ForClause | LetClause] = []
        while True:
            if self.accept_keyword("for"):
                clauses.extend(self._parse_for_bindings())
            elif self.accept_keyword("let"):
                clauses.extend(self._parse_let_bindings())
            else:
                break
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr_single()
        order_by: tuple[OrderSpec, ...] = ()
        if self.current.is_keyword("order") or self.current.is_keyword("stable"):
            self.accept_keyword("stable")
            self.expect_keyword("order")
            self.expect_keyword("by")
            order_by = self._parse_order_specs()
        self.expect_keyword("return")
        return_expr = self.parse_expr_single()
        if not clauses:
            self._fail("FLWOR requires at least one for/let clause")
        return FLWOR(tuple(clauses), where, order_by, return_expr)

    def _parse_for_bindings(self) -> list[ForClause]:
        bindings = []
        while True:
            var = self.expect_variable()
            position_var = None
            if self.accept_keyword("at"):
                position_var = self.expect_variable()
            self.expect_keyword("in")
            seq = self.parse_expr_single()
            bindings.append(ForClause(var, seq, position_var))
            if not self.accept_symbol(","):
                return bindings

    def _parse_let_bindings(self) -> list[LetClause]:
        bindings = []
        while True:
            var = self.expect_variable()
            self.expect_symbol(":=")
            expr = self.parse_expr_single()
            bindings.append(LetClause(var, expr))
            if not self.accept_symbol(","):
                return bindings

    def _parse_order_specs(self) -> tuple[OrderSpec, ...]:
        specs = []
        while True:
            key = self.parse_expr_single()
            descending = False
            if self.accept_keyword("descending"):
                descending = True
            else:
                self.accept_keyword("ascending")
            if self.accept_keyword("empty"):
                if not (self.accept_keyword("greatest") or self.accept_keyword("least")):
                    self._fail("expected 'greatest' or 'least'")
            specs.append(OrderSpec(key, descending))
            if not self.accept_symbol(","):
                return tuple(specs)

    # Conditionals / quantifiers ------------------------------------------
    def _parse_if(self) -> Expr:
        self.expect_keyword("if")
        self.expect_symbol("(")
        condition = self.parse_expr()
        self.expect_symbol(")")
        self.expect_keyword("then")
        then_branch = self.parse_expr_single()
        self.expect_keyword("else")
        else_branch = self.parse_expr_single()
        return IfExpr(condition, then_branch, else_branch)

    def _parse_quantified(self) -> Expr:
        kind = self.advance().value  # some | every
        var = self.expect_variable()
        self.expect_keyword("in")
        seq = self.parse_expr_single()
        self.expect_keyword("satisfies")
        condition = self.parse_expr_single()
        return Quantified(kind, var, seq, condition)

    # Operator precedence --------------------------------------------------
    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self.accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_range()
        token = self.current
        if token.type is TokenType.SYMBOL and token.value in _COMPARISON_OPS:
            op = self.advance().value
            return BinaryOp(op, left, self._parse_range())
        return left

    def _parse_range(self) -> Expr:
        left = self._parse_additive()
        if self.accept_keyword("to"):
            return RangeExpr(left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while (
            self.current.type is TokenType.SYMBOL
            and self.current.value in _ADDITIVE_OPS
        ):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_union()
        while True:
            token = self.current
            if token.is_symbol("*") or token.is_keyword("div") or token.is_keyword("mod"):
                op = self.advance().value
                left = BinaryOp(op, left, self._parse_union())
            else:
                return left

    def _parse_union(self) -> Expr:
        left = self._parse_intersect_except()
        while self.current.is_symbol("|") or self.current.is_keyword("union"):
            self.advance()
            left = BinaryOp("union", left, self._parse_intersect_except())
        return left

    def _parse_intersect_except(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self.accept_keyword("intersect"):
                left = BinaryOp("intersect", left, self._parse_unary())
            elif self.accept_keyword("except"):
                left = BinaryOp("except", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self.current.is_symbol("-") or self.current.is_symbol("+"):
            op = self.advance().value
            return UnaryOp(op, self._parse_unary())
        return self._parse_path()

    # Paths ----------------------------------------------------------------
    def _parse_path(self) -> Expr:
        token = self.current
        if token.is_symbol("/") or token.is_symbol("//"):
            # Absolute path over the context document.
            steps = self._parse_steps(leading=True)
            return PathApply(None, steps, absolute=True)
        primary = self._parse_postfix()
        if self.current.is_symbol("/") or self.current.is_symbol("//"):
            steps = self._parse_steps(leading=True)
            return PathApply(primary, steps)
        return primary

    def _parse_steps(self, leading: bool) -> tuple[AxisStep, ...]:
        steps: list[AxisStep] = []
        while True:
            if self.accept_symbol("//"):
                axis = "descendant-or-self"
            elif self.accept_symbol("/"):
                axis = "child"
            else:
                return tuple(steps)
            steps.append(self._parse_step(axis))

    def _parse_step(self, axis: str) -> AxisStep:
        token = self.current
        if self.accept_symbol("@"):
            name = self.expect_name()
            predicates = self._parse_predicates()
            return AxisStep(axis, name, is_attribute=True, predicates=predicates)
        if self.accept_symbol("*"):
            predicates = self._parse_predicates()
            return AxisStep(axis, "*", predicates=predicates)
        if token.is_keyword("text") and self.peek().is_symbol("("):
            self.advance()
            self.expect_symbol("(")
            self.expect_symbol(")")
            predicates = self._parse_predicates()
            return AxisStep(axis, "text()", is_text=True, predicates=predicates)
        if token.type in (TokenType.NAME, TokenType.KEYWORD):
            name = self.advance().value
            predicates = self._parse_predicates()
            return AxisStep(axis, name, predicates=predicates)
        self._fail("expected a path step")
        raise AssertionError  # unreachable

    def _parse_predicates(self) -> tuple[Expr, ...]:
        predicates = []
        while self.accept_symbol("["):
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
        return tuple(predicates)

    # Primary --------------------------------------------------------------
    def _parse_postfix(self) -> Expr:
        primary = self._parse_primary()
        predicates = self._parse_predicates()
        if predicates:
            return FilterExpr(primary, predicates)
        return primary

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value)
            return Literal(int(value) if value.is_integer() and "." not in token.value else value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.VARIABLE:
            self.advance()
            return VarRef(token.value)
        if token.is_symbol("."):
            self.advance()
            return ContextItem()
        if token.is_symbol("("):
            self.advance()
            if self.accept_symbol(")"):
                return SequenceExpr(())
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.is_keyword("element") and self.peek().type in (
            TokenType.NAME,
            TokenType.KEYWORD,
        ):
            self.advance()
            name = self.expect_name()
            content = self._parse_enclosed_content()
            return ElementConstructor(name, content)
        if token.is_keyword("attribute") and self.peek().type in (
            TokenType.NAME,
            TokenType.KEYWORD,
        ):
            self.advance()
            name = self.expect_name()
            content = self._parse_enclosed_content()
            return AttributeConstructor(name, content)
        if token.is_keyword("text") and self.peek().is_symbol("{"):
            self.advance()
            content = self._parse_enclosed_content()
            return TextConstructor(content)
        is_callable_keyword = token.type is TokenType.KEYWORD and token.value not in (
            "if",
            "element",
            "attribute",
            "text",
            "some",
            "every",
            "for",
            "let",
        )
        if (
            token.type is TokenType.NAME or is_callable_keyword
        ) and self.peek().is_symbol("("):
            name = self.advance().value
            if name.startswith("fn:"):
                name = name[3:]
            self.expect_symbol("(")
            args: list[Expr] = []
            if not self.current.is_symbol(")"):
                args.append(self.parse_expr_single())
                while self.accept_symbol(","):
                    args.append(self.parse_expr_single())
            self.expect_symbol(")")
            return FunctionCall(name, tuple(args))
        if token.type in (TokenType.NAME, TokenType.KEYWORD):
            # A bare name is a relative child step from the context item.
            name = self.advance().value
            predicates = self._parse_predicates()
            step = AxisStep("child", name, predicates=predicates)
            return PathApply(ContextItem(), (step,))
        self._fail(f"unexpected token {token.value!r}")
        raise AssertionError  # unreachable

    def _parse_enclosed_content(self) -> tuple[Expr, ...]:
        self.expect_symbol("{")
        if self.accept_symbol("}"):
            return ()
        content = [self.parse_expr_single()]
        while self.accept_symbol(","):
            content.append(self.parse_expr_single())
        self.expect_symbol("}")
        return tuple(content)
