"""AST-to-text serialization for the XQuery subset.

The PartiX decomposer rewrites query ASTs (collection renaming, path
prefix stripping, aggregate splitting) and ships the result to drivers as
*text* — the only interface a remote DBMS offers. ``parse(unparse(ast))``
is the identity on our AST (a property test asserts it).
"""

from __future__ import annotations

from repro.errors import XQueryEvaluationError
from repro.xquery.ast_nodes import (
    AttributeConstructor,
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    FilterExpr,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    PathApply,
    Quantified,
    RangeExpr,
    SequenceExpr,
    TextConstructor,
    UnaryOp,
    VarRef,
)

_KEYWORD_OPS = {"div", "mod", "union", "intersect", "except", "and", "or", "to"}


def unparse(expr: Expr) -> str:
    """Render an AST back to parseable query text."""
    return _unparse(expr)


def _unparse(expr: Expr) -> str:
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            escaped = expr.value.replace('"', '""')
            return f'"{escaped}"'
        if isinstance(expr.value, float) and expr.value.is_integer():
            return str(expr.value)
        return str(expr.value)
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, ContextItem):
        return "."
    if isinstance(expr, SequenceExpr):
        return "(" + ", ".join(_unparse(item) for item in expr.items) + ")"
    if isinstance(expr, RangeExpr):
        return f"({_unparse(expr.start)} to {_unparse(expr.end)})"
    if isinstance(expr, BinaryOp):
        op = expr.op if expr.op not in _KEYWORD_OPS else f" {expr.op} "
        if op == expr.op:
            op = f" {op} "
        return f"({_unparse(expr.left)}{op}{_unparse(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op}{_unparse(expr.operand)})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(_unparse(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, PathApply):
        steps = "".join(_unparse_step(step) for step in expr.steps)
        if expr.primary is None:
            return steps
        return f"{_unparse(expr.primary)}{steps}"
    if isinstance(expr, FilterExpr):
        predicates = "".join(f"[{_unparse(p)}]" for p in expr.predicates)
        return f"{_unparse(expr.primary)}{predicates}"
    if isinstance(expr, FLWOR):
        return _unparse_flwor(expr)
    if isinstance(expr, IfExpr):
        return (
            f"if ({_unparse(expr.condition)}) then {_unparse(expr.then_branch)}"
            f" else {_unparse(expr.else_branch)}"
        )
    if isinstance(expr, Quantified):
        return (
            f"{expr.kind} ${expr.var} in {_unparse(expr.seq)} satisfies"
            f" {_unparse(expr.condition)}"
        )
    if isinstance(expr, ElementConstructor):
        content = ", ".join(_unparse(c) for c in expr.content)
        return f"element {expr.name} {{ {content} }}"
    if isinstance(expr, AttributeConstructor):
        content = ", ".join(_unparse(c) for c in expr.content)
        return f"attribute {expr.name} {{ {content} }}"
    if isinstance(expr, TextConstructor):
        content = ", ".join(_unparse(c) for c in expr.content)
        return f"text {{ {content} }}"
    raise XQueryEvaluationError(f"cannot unparse {type(expr).__name__}")


def _unparse_step(step: AxisStep) -> str:
    axis = "//" if step.axis == "descendant-or-self" else "/"
    if step.is_text:
        test = "text()"
    elif step.is_attribute:
        test = "@" + step.name
    else:
        test = step.name
    predicates = "".join(f"[{_unparse(p)}]" for p in step.predicates)
    return f"{axis}{test}{predicates}"


def _unparse_flwor(expr: FLWOR) -> str:
    parts = []
    for clause in expr.clauses:
        if isinstance(clause, ForClause):
            at = f" at ${clause.position_var}" if clause.position_var else ""
            parts.append(f"for ${clause.var}{at} in {_unparse(clause.seq)}")
        else:
            assert isinstance(clause, LetClause)
            parts.append(f"let ${clause.var} := {_unparse(clause.expr)}")
    if expr.where is not None:
        parts.append(f"where {_unparse(expr.where)}")
    if expr.order_by:
        specs = ", ".join(
            _unparse(spec.key) + (" descending" if spec.descending else "")
            for spec in expr.order_by
        )
        parts.append(f"order by {specs}")
    parts.append(f"return {_unparse(expr.return_expr)}")
    return " ".join(parts)
