"""``python -m repro.serve`` — run one PartiX site server.

A thin entry point over :func:`repro.net.server.main`::

    python -m repro.serve --site site0 --port 7310
    python -m repro.serve --site site0 --port 0          # pick a free port
    python -m repro.serve --site site0 --storage-dir /var/lib/partix/site0

The server announces ``site NAME listening on HOST:PORT`` on stdout,
answers the frame protocol of :mod:`repro.net.protocol`, and drains
gracefully on SIGTERM/SIGINT or a SHUTDOWN frame.
"""

from __future__ import annotations

from repro.net.server import main

if __name__ == "__main__":
    raise SystemExit(main())
