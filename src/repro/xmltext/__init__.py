"""XML text layer: hand-written parser and serializer."""

from repro.xmltext.parser import XMLParser, parse_fragment, parse_xml
from repro.xmltext.serializer import serialize, serialize_pretty, serialized_size

__all__ = [
    "XMLParser",
    "parse_fragment",
    "parse_xml",
    "serialize",
    "serialize_pretty",
    "serialized_size",
]
