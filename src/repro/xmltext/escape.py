"""Character escaping for XML text and attribute values."""

from __future__ import annotations

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;", "'": "&apos;"}

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


# Hot path: these run for every text node and attribute a site
# serializes — with streaming, every byte that crosses the wire.
# ``str.replace`` chains are C-level memchr scans (the approach
# ``html.escape`` takes) and beat both per-character joins and
# dict-table ``str.translate`` by an order of magnitude; the substring
# pre-checks return the original object untouched in the common
# no-specials case. ``&`` must be replaced first.


def escape_text(value: str) -> str:
    """Escape a string for use as element content."""
    if "&" not in value and "<" not in value and ">" not in value:
        return value
    return (
        value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def escape_attribute(value: str) -> str:
    """Escape a string for use inside a double-quoted attribute value."""
    if (
        "&" not in value
        and "<" not in value
        and ">" not in value
        and '"' not in value
        and "'" not in value
    ):
        return value
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
        .replace("'", "&apos;")
    )


def resolve_entity(name: str) -> str | None:
    """Resolve a predefined or character entity reference.

    ``name`` is the text between ``&`` and ``;``. Returns the replacement
    character(s), or None for unknown named entities.
    """
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            return None
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            return None
    return _NAMED_ENTITIES.get(name)
