"""Character escaping for XML text and attribute values."""

from __future__ import annotations

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;", "'": "&apos;"}

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(value: str) -> str:
    """Escape a string for use as element content."""
    if not any(c in value for c in "&<>"):
        return value
    return "".join(_TEXT_ESCAPES.get(c, c) for c in value)


def escape_attribute(value: str) -> str:
    """Escape a string for use inside a double-quoted attribute value."""
    if not any(c in value for c in "&<>\"'"):
        return value
    return "".join(_ATTR_ESCAPES.get(c, c) for c in value)


def resolve_entity(name: str) -> str | None:
    """Resolve a predefined or character entity reference.

    ``name`` is the text between ``&`` and ``;``. Returns the replacement
    character(s), or None for unknown named entities.
    """
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            return None
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            return None
    return _NAMED_ENTITIES.get(name)
