"""Serialization of data trees back to XML text.

Two styles are provided:

* :func:`serialize` — compact, no insignificant whitespace. This is the
  canonical storage format of the engine: ``parse(serialize(t))`` is
  tree-equal to ``t`` (a property test asserts this round-trip).
* :func:`serialize_pretty` — indented, for human consumption in examples
  and reports.
"""

from __future__ import annotations

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.xmltext.escape import escape_attribute, escape_text


def serialize(node: XMLNode | XMLDocument) -> str:
    """Compact serialization of a node or document subtree."""
    if isinstance(node, XMLDocument):
        node = node.root
    parts: list[str] = []
    _write_compact(node, parts)
    return "".join(parts)


def _write_compact(node: XMLNode, out: list[str]) -> None:
    if node.kind is NodeKind.TEXT:
        out.append(escape_text(node.value or ""))
        return
    if node.kind is NodeKind.ATTRIBUTE:
        # Attributes are serialized by their owning element.
        raise ValueError("cannot serialize a detached attribute node")
    out.append("<")
    out.append(node.label or "")
    for attr in node.attributes():
        out.append(f' {attr.label}="{escape_attribute(attr.value or "")}"')
    content = [c for c in node.children if c.kind is not NodeKind.ATTRIBUTE]
    if not content:
        out.append("/>")
        return
    out.append(">")
    for child in content:
        _write_compact(child, out)
    out.append(f"</{node.label}>")


def serialize_pretty(node: XMLNode | XMLDocument, indent: str = "  ") -> str:
    """Indented serialization (one element per line, text inline)."""
    if isinstance(node, XMLDocument):
        node = node.root
    parts: list[str] = []
    _write_pretty(node, parts, indent, 0)
    return "".join(parts)


def _write_pretty(node: XMLNode, out: list[str], indent: str, depth: int) -> None:
    pad = indent * depth
    if node.kind is NodeKind.TEXT:
        out.append(pad + escape_text(node.value or "") + "\n")
        return
    out.append(pad + "<" + (node.label or ""))
    for attr in node.attributes():
        out.append(f' {attr.label}="{escape_attribute(attr.value or "")}"')
    content = [c for c in node.children if c.kind is not NodeKind.ATTRIBUTE]
    if not content:
        out.append("/>\n")
        return
    if len(content) == 1 and content[0].kind is NodeKind.TEXT:
        out.append(">")
        out.append(escape_text(content[0].value or ""))
        out.append(f"</{node.label}>\n")
        return
    out.append(">\n")
    for child in content:
        _write_pretty(child, out, indent, depth + 1)
    out.append(f"{pad}</{node.label}>\n")


def serialized_size(node: XMLNode | XMLDocument) -> int:
    """Byte size of the compact UTF-8 serialization."""
    return len(serialize(node).encode("utf-8"))
