"""A hand-written, non-validating XML parser.

Parses XML text into :class:`~repro.datamodel.tree.XMLNode` trees. The
parser supports the subset of XML the data model of the paper needs:
elements, attributes, character data, CDATA sections, comments, processing
instructions (skipped), the XML declaration, and predefined / numeric
entity references. Namespaces are treated opaquely (colons are legal name
characters). Mixed content is normalized: whitespace-only text between
elements is dropped; genuine text mixed with elements raises, matching the
"no mixed content" assumption of §3.1.

This parser is deliberately written *in Python without shortcuts* because
parse cost is the substrate of the reproduction: the engine stores
documents serialized and pays this parser's cost per document touched,
which is precisely the effect (per-document parse overhead in eXist) that
makes fragmented repositories superlinearly faster in the paper.
"""

from __future__ import annotations

from repro.datamodel.document import XMLDocument
from repro.datamodel.tree import NodeKind, XMLNode
from repro.errors import XMLSyntaxError
from repro.xmltext.escape import resolve_entity

import re

# XML names: ASCII letters/underscore/colon plus the non-ASCII letter
# ranges (a practical approximation of the XML 1.0 NameStartChar set).
_NAME_RE = re.compile(r"[A-Za-z_:À-￿][\w.:\-·À-￿]*")
_WS_RE = re.compile(r"[ \t\r\n]*")


class _Cursor:
    """Position tracker over the raw text with line/column accounting."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self) -> tuple[int, int]:
        """1-based (line, column) of the current position."""
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        last_newline = consumed.rfind("\n")
        column = self.pos - last_newline
        return line, column


class XMLParser:
    """Parses one XML document per :meth:`parse` call."""

    def __init__(self, text: str):
        self._c = _Cursor(text)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> XMLNode:
        """Parse the full input and return the root element."""
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self._c.pos != self._c.length:
            self._fail("content after document root")
        return root

    # ------------------------------------------------------------------
    # Prolog / misc
    # ------------------------------------------------------------------
    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        if self._peek_str("<?xml"):
            self._consume_until("?>")
        self._skip_misc()

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self._peek_str("<!--"):
                self._c.pos += 4
                self._consume_until("-->")
            elif self._peek_str("<?"):
                self._c.pos += 2
                self._consume_until("?>")
            elif self._peek_str("<!DOCTYPE"):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        # Consume "<!DOCTYPE ... >" allowing one level of [...] internal subset.
        depth = 0
        c = self._c
        while c.pos < c.length:
            ch = c.text[c.pos]
            c.pos += 1
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                return
        self._fail("unterminated DOCTYPE")

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------
    def _parse_element(self) -> XMLNode:
        if not self._peek_str("<"):
            self._fail("expected element start tag")
        self._c.pos += 1
        name = self._parse_name()
        node = XMLNode.element(name)
        self._parse_attributes(node)
        self._skip_whitespace()
        if self._peek_str("/>"):
            self._c.pos += 2
            return node
        if not self._peek_str(">"):
            self._fail(f"malformed start tag for element {name!r}")
        self._c.pos += 1
        self._parse_content(node)
        # _parse_content stops right after "</"
        end_name = self._parse_name()
        if end_name != name:
            self._fail(f"mismatched end tag: expected </{name}>, got </{end_name}>")
        self._skip_whitespace()
        if not self._peek_str(">"):
            self._fail(f"malformed end tag for element {name!r}")
        self._c.pos += 1
        return node

    def _parse_attributes(self, node: XMLNode) -> None:
        seen: set[str] = set()
        while True:
            self._skip_whitespace()
            ch = self._peek_char()
            if ch is None:
                self._fail("unterminated start tag")
            if ch in (">", "/"):
                return
            name = self._parse_name()
            if name in seen:
                self._fail(f"duplicate attribute {name!r}")
            seen.add(name)
            self._skip_whitespace()
            if not self._peek_str("="):
                self._fail(f"attribute {name!r} missing '='")
            self._c.pos += 1
            self._skip_whitespace()
            value = self._parse_quoted_value()
            node.append(XMLNode.attribute(name, value))

    def _parse_quoted_value(self) -> str:
        quote = self._peek_char()
        if quote not in ('"', "'"):
            self._fail("attribute value must be quoted")
        self._c.pos += 1
        parts: list[str] = []
        c = self._c
        while c.pos < c.length:
            ch = c.text[c.pos]
            if ch == quote:
                c.pos += 1
                return "".join(parts)
            if ch == "<":
                self._fail("'<' not allowed in attribute value")
            if ch == "&":
                parts.append(self._parse_entity())
            else:
                parts.append(ch)
                c.pos += 1
        self._fail("unterminated attribute value")
        raise AssertionError  # unreachable

    def _parse_content(self, node: XMLNode) -> None:
        """Parse element content until (and consuming) the closing '</'."""
        text_parts: list[str] = []
        has_elements = False
        c = self._c

        def flush_text() -> None:
            nonlocal has_elements
            text = "".join(text_parts)
            text_parts.clear()
            if not text:
                return
            if text.strip() == "":
                return  # ignorable whitespace between elements
            if has_elements or node._content_kind is NodeKind.ELEMENT:
                self._fail(
                    f"mixed content under element {node.label!r} is not supported"
                )
            node.append(XMLNode.text(text))

        while c.pos < c.length:
            ch = c.text[c.pos]
            if ch == "<":
                if self._peek_str("</"):
                    flush_text()
                    c.pos += 2
                    return
                if self._peek_str("<!--"):
                    c.pos += 4
                    self._consume_until("-->")
                    continue
                if self._peek_str("<![CDATA["):
                    c.pos += 9
                    text_parts.append(self._consume_until("]]>"))
                    continue
                if self._peek_str("<?"):
                    c.pos += 2
                    self._consume_until("?>")
                    continue
                flush_text()
                if node.children and node.children[-1].kind is NodeKind.TEXT:
                    self._fail(
                        f"mixed content under element {node.label!r} is not supported"
                    )
                child = self._parse_element()
                has_elements = True
                node.append(child)
            elif ch == "&":
                text_parts.append(self._parse_entity())
            else:
                # Fast path: grab a run of plain characters at once.
                next_special = _find_next_special(c.text, c.pos)
                text_parts.append(c.text[c.pos:next_special])
                c.pos = next_special
        self._fail(f"unterminated element {node.label!r}")

    def _parse_entity(self) -> str:
        c = self._c
        end = c.text.find(";", c.pos + 1)
        if end == -1 or end - c.pos > 12:
            self._fail("malformed entity reference")
        name = c.text[c.pos + 1 : end]
        replacement = resolve_entity(name)
        if replacement is None:
            self._fail(f"unknown entity &{name};")
        c.pos = end + 1
        assert replacement is not None
        return replacement

    # ------------------------------------------------------------------
    # Low-level scanning
    # ------------------------------------------------------------------
    def _parse_name(self) -> str:
        c = self._c
        match = _NAME_RE.match(c.text, c.pos)
        if match is None:
            self._fail("expected a name")
        assert match is not None
        c.pos = match.end()
        return match.group(0)

    def _skip_whitespace(self) -> None:
        c = self._c
        match = _WS_RE.match(c.text, c.pos)
        if match is not None:
            c.pos = match.end()

    def _peek_char(self) -> str | None:
        c = self._c
        return c.text[c.pos] if c.pos < c.length else None

    def _peek_str(self, s: str) -> bool:
        return self._c.text.startswith(s, self._c.pos)

    def _consume_until(self, terminator: str) -> str:
        c = self._c
        end = c.text.find(terminator, c.pos)
        if end == -1:
            self._fail(f"expected {terminator!r}")
        consumed = c.text[c.pos : end]
        c.pos = end + len(terminator)
        return consumed

    def _fail(self, message: str) -> None:
        line, column = self._c.location()
        raise XMLSyntaxError(message, line=line, column=column)


def _find_next_special(text: str, pos: int) -> int:
    """Index of the next '<' or '&' at/after pos (or end of text)."""
    lt = text.find("<", pos)
    amp = text.find("&", pos)
    if lt == -1 and amp == -1:
        return len(text)
    if lt == -1:
        return amp
    if amp == -1:
        return lt
    return min(lt, amp)


def parse_xml(text: str, name: str | None = None) -> XMLDocument:
    """Parse ``text`` into a new :class:`XMLDocument` (fresh node ids)."""
    root = XMLParser(text).parse()
    return XMLDocument(root, name=name)


def parse_fragment(text: str) -> XMLNode:
    """Parse ``text`` into a bare element tree (no document, unassigned ids)."""
    return XMLParser(text).parse()


def parse_forest(text: str) -> list[XMLNode]:
    """Parse a concatenation of serialized elements into a list of trees.

    Drivers ship multi-document results as newline-joined serializations;
    this reads element after element until the input is exhausted.
    """
    roots: list[XMLNode] = []
    remaining = text.strip()
    while remaining:
        parser = XMLParser(remaining)
        parser._skip_prolog()
        root = parser._parse_element()
        roots.append(root)
        remaining = remaining[parser._c.pos :].strip()
    return roots
