"""Spawn a local cluster of real site-server processes.

:class:`TcpSiteCluster` turns a set of site names into one OS process
per site, each running a :class:`~repro.net.server.SiteServer` with its
own private engine — separate Python heaps, real sockets in between.
Children bind to port 0 on localhost and report the chosen port back
over a ``multiprocessing`` pipe, so no port coordination is needed.

:func:`mirror_site` republishes a local site's stored collections to its
remote twin *through the driver path*: the bytes that travel are exactly
the serialized fragment documents the publisher produced (annotations
included), so the remote engines hold byte-identical repositories.

Shutdown is graceful first (SHUTDOWN frame → drain → exit), with
``terminate()`` as the fallback for unresponsive or killed processes.
"""

from __future__ import annotations

import multiprocessing
import signal
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import TransportError
from repro.net.client import RemoteSiteDriver, SiteClient, TcpTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.site import Cluster, Site


def _serve_site(name: str, engine_config: dict, conn) -> None:
    """Child-process entry point: build an engine, serve, drain, exit."""
    from repro.engine.database import XMLEngine
    from repro.net.server import SiteServer
    from repro.partix.driver import MiniXDriver

    try:
        engine = XMLEngine(name, **engine_config)
        server = SiteServer(MiniXDriver(engine), site=name)
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        conn.send(("error", name, f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    signal.signal(signal.SIGTERM, lambda *_: server.request_shutdown())
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    conn.send(("ready", name, server.port))
    conn.close()
    server.serve_forever()


@dataclass
class SpawnedSite:
    """One running site-server process and the client speaking to it."""

    name: str
    process: multiprocessing.process.BaseProcess
    client: SiteClient

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


def engine_config_of(site: "Site") -> dict:
    """The engine settings a remote twin of ``site`` should run with."""
    driver = site.driver
    engine = getattr(driver, "engine", None)
    if engine is None:
        return {}
    return {
        "use_indexes": engine.planner.use_indexes,
        "per_document_overhead": engine.per_document_overhead,
        "cache_parsed": engine.cache_parsed,
        "shard_workers": engine.shard_workers,
    }


def mirror_site(site: "Site", client: SiteClient) -> tuple[int, int]:
    """Republish a local site's collections to its remote twin.

    Returns ``(collections, documents)`` mirrored. The stored bytes are
    shipped verbatim — the remote engine re-parses and re-indexes them
    on ingestion, exactly as it would for a direct publication.
    """
    engine = getattr(site.driver, "engine", None)
    if engine is None:
        raise TransportError(
            f"cannot mirror site {site.name!r}: its driver has no local"
            " engine to read collections from"
        )
    documents = 0
    names = engine.collection_names()
    for collection_name in names:
        client.create_collection(collection_name)
        collection = engine.store.collection(collection_name)
        for doc_name in collection.names():
            stored = collection.get(doc_name)
            client.store_document(
                collection_name,
                stored.data.decode("utf-8"),
                name=stored.name,
                origin=stored.origin,
            )
            documents += 1
    return len(names), documents


class TcpSiteCluster:
    """A set of spawned site-server processes plus their clients."""

    def __init__(self, sites: dict[str, SpawnedSite]):
        self.sites = sites

    @classmethod
    def spawn(
        cls,
        site_configs: dict[str, dict],
        startup_timeout: float = 15.0,
        context: Optional[multiprocessing.context.BaseContext] = None,
        connect_timeout: float = 5.0,
        chunk_bytes: Optional[int] = None,
    ) -> "TcpSiteCluster":
        """Start one server process per entry in ``site_configs``
        (site name → engine keyword arguments) and wait until every
        server reports its bound port. ``chunk_bytes``, when given, is
        proposed by every client at connect time as the streamed
        RESULT_CHUNK size."""
        if context is None:
            # fork is much cheaper than spawn and available on the
            # platforms CI runs on; fall back to the default elsewhere.
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            context = multiprocessing.get_context(method)
        spawned: dict[str, SpawnedSite] = {}
        pending = []
        try:
            for name, config in site_configs.items():
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_serve_site,
                    args=(name, config, child_conn),
                    name=f"repro-site-{name}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                pending.append((name, process, parent_conn))
            for name, process, conn in pending:
                if not conn.poll(startup_timeout):
                    raise TransportError(
                        f"site server {name!r} did not report a port within"
                        f" {startup_timeout:.1f}s"
                    )
                status, _, detail = conn.recv()
                conn.close()
                if status != "ready":
                    raise TransportError(
                        f"site server {name!r} failed to start: {detail}"
                    )
                client = SiteClient(
                    "127.0.0.1",
                    detail,
                    site=name,
                    connect_timeout=connect_timeout,
                    chunk_bytes=chunk_bytes,
                )
                spawned[name] = SpawnedSite(
                    name=name, process=process, client=client
                )
        except BaseException:
            for name, process, _ in pending:
                if process.is_alive():
                    process.terminate()
            for site in spawned.values():
                site.client.close()
            raise
        return cls(spawned)

    # ------------------------------------------------------------------
    @property
    def clients(self) -> dict[str, SiteClient]:
        return {name: site.client for name, site in self.sites.items()}

    def transport(self) -> TcpTransport:
        """Socket lanes for the dispatcher."""
        return TcpTransport(self.clients)

    def cluster(self) -> "Cluster":
        """A :class:`Cluster` of remote-driver sites (publisher-compatible)."""
        from repro.cluster.site import Cluster, Site

        return Cluster(
            Site(name, driver=RemoteSiteDriver(site.client))
            for name, site in self.sites.items()
        )

    def ping_all(self) -> dict[str, dict]:
        """Health-check every site; raises TransportError on a dead one."""
        return {name: site.client.ping() for name, site in self.sites.items()}

    def kill(self, name: str) -> None:
        """Hard-kill one site server (fault-injection tests)."""
        site = self.sites[name]
        site.process.kill()
        site.process.join(timeout=5.0)
        site.client.close()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Drain every server (graceful), then reap the processes."""
        for site in self.sites.values():
            if site.process.is_alive():
                site.client.shutdown_server()
            site.client.close()
        for site in self.sites.values():
            site.process.join(timeout=timeout)
            if site.process.is_alive():
                site.process.terminate()
                site.process.join(timeout=timeout)
