"""repro.net — real networked site servers for PartiX.

The paper's cluster was real: eXist nodes reached over the network. The
previous cluster layer simulated that (thread lanes over one Python
heap), so serialization and transport costs were *modeled*, never paid.
This package pays them: a length-prefixed binary frame protocol
(:mod:`repro.net.protocol`), a standalone one-engine-per-process site
server (:mod:`repro.net.server`, ``python -m repro.serve``), a pooled
client speaking the protocol (:mod:`repro.net.client`), and a
``multiprocessing`` bootstrapper that spawns a local cluster of site
servers and mirrors published fragments to them
(:mod:`repro.net.bootstrap`). The middleware drives it through
``Partix.execute(execution_mode="tcp")``.
"""

from repro.net.bootstrap import SpawnedSite, TcpSiteCluster, mirror_site
from repro.net.client import RemoteSiteDriver, SiteClient, TcpTransport
from repro.net.protocol import (
    Frame,
    FrameType,
    HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    exception_to_payload,
    payload_to_exception,
    recv_frame,
    send_frame,
)
from repro.net.server import SiteServer

__all__ = [
    "Frame",
    "FrameType",
    "HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "PROTOCOL_VERSION",
    "RemoteSiteDriver",
    "SiteClient",
    "SiteServer",
    "SpawnedSite",
    "TcpSiteCluster",
    "TcpTransport",
    "decode_frame",
    "encode_frame",
    "exception_to_payload",
    "mirror_site",
    "payload_to_exception",
    "recv_frame",
    "send_frame",
]
