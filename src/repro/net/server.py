"""A standalone PartiX site server: one engine database per process.

``SiteServer`` hosts one :class:`~repro.partix.driver.PartixDriver`
(by default a fresh MiniX engine) behind the frame protocol of
:mod:`repro.net.protocol`. Connections are handled on threads — the
engine is concurrency-correct since PR 1 — so one server serves the
coordinator's publisher and several dispatcher lanes at once.

Lifecycle
---------
* every connection starts with the HELLO/WELCOME version handshake;
  a version mismatch gets a REJECT frame and a closed socket;
* ``SHUTDOWN`` answers OK, then the server stops accepting connections
  and drains: in-flight requests finish before the process exits
  (``ThreadingTCPServer`` joins its handler threads on close);
* SIGTERM/SIGINT trigger the same graceful drain when serving as a
  process (``python -m repro.serve``).

The server keeps cumulative *site stats* — queries executed, frames and
bytes in/out — returned by the ``STATS`` frame, so measured transfer
sizes can be audited from the site side as well as the client side.
"""

from __future__ import annotations

import argparse
import signal
import socket
import socketserver
import threading
import time
from typing import Optional

from collections import Counter

from repro.errors import ProtocolError
from repro.net.protocol import (
    DEFAULT_CHUNK_BYTES,
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    exception_to_payload,
    frame_size_bucket,
    negotiate_chunk_bytes,
    recv_frame,
    send_frame,
)
from repro.partix.driver import MiniXDriver, PartixDriver


def _result_payload(result) -> dict:
    """RESULT-frame payload for one QueryResult (items stay site-local:
    only the serialized text travels, exactly as with a real DBMS)."""
    return {
        "result_text": result.result_text,
        "elapsed_seconds": result.elapsed_seconds,
        "parse_seconds": result.parse_seconds,
        "documents_parsed": result.documents_parsed,
        "bytes_parsed": result.bytes_parsed,
        "documents_scanned": result.documents_scanned,
        "documents_pruned": result.documents_pruned,
        "binary_decodes": result.binary_decodes,
        "label_pruned": result.label_pruned,
        "cache_hits": result.cache_hits,
        "simulated_overhead_seconds": result.simulated_overhead_seconds,
    }


def _stream_end_payload(result) -> dict:
    """RESULT_END payload: execution stats, no text (it already streamed)."""
    payload = _result_payload(result)
    del payload["result_text"]
    payload["result_bytes"] = result.result_bytes
    return payload


#: How often an idle handler re-checks the server's shutdown flag while
#: waiting for the connection's next frame.
_IDLE_POLL_SECONDS = 0.05


class _SiteHandler(socketserver.BaseRequestHandler):
    """One client connection: handshake, then a request/reply loop."""

    server: "_SiteTCPServer"

    def handle(self) -> None:  # noqa: C901 - one branch per frame type
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        owner = self.server.owner
        self.chunk_bytes = DEFAULT_CHUNK_BYTES
        if not self._handshake(sock, owner):
            return
        while True:
            if not self._await_frame(sock, owner):
                return
            try:
                frame, received = recv_frame(sock)
            except ProtocolError as exc:
                # EOF between frames is a normal disconnect; anything
                # else gets a best-effort ERROR before closing.
                if "connection closed mid-frame (0 of" not in str(exc):
                    self._reply(
                        sock, 0, FrameType.ERROR, exception_to_payload(exc)
                    )
                return
            except OSError:
                return
            owner._count_in(received)
            if not self._serve_frame(sock, owner, frame):
                return

    # ------------------------------------------------------------------
    def _await_frame(self, sock: socket.socket, owner: "SiteServer") -> bool:
        """Wait until the connection has bytes to read; False closes it.

        A handler blocked in ``recv_frame`` on an *idle* connection — a
        pooled client socket between requests, or a connection accepted
        but not yet past HELLO — used to block forever, wedging the
        drain join at shutdown (the accept loop's swallowed ``OSError``
        hid the stuck handshake). Waiting is now a short-timeout
        ``MSG_PEEK`` poll that abandons the connection once the server
        starts draining; an in-flight request (already past this wait)
        still finishes, which is exactly the drain contract.
        """
        try:
            sock.settimeout(_IDLE_POLL_SECONDS)
            while True:
                try:
                    if sock.recv(1, socket.MSG_PEEK) == b"":
                        return False  # peer closed
                    break
                except socket.timeout:
                    if owner._shutdown_requested.is_set():
                        return False
            sock.settimeout(None)
        except OSError:
            return False
        return True

    def _handshake(self, sock: socket.socket, owner: "SiteServer") -> bool:
        if not self._await_frame(sock, owner):
            return False
        try:
            frame, received = recv_frame(sock)
        except (ProtocolError, OSError):
            return False
        owner._count_in(received)
        if frame.type is not FrameType.HELLO:
            self._reply(
                sock,
                frame.request_id,
                FrameType.REJECT,
                {"reason": f"expected HELLO, got {frame.type.name}"},
            )
            return False
        version = frame.payload.get("version", frame.version)
        if version != PROTOCOL_VERSION:
            self._reply(
                sock,
                frame.request_id,
                FrameType.REJECT,
                {
                    "reason": (
                        f"protocol version mismatch: server speaks"
                        f" {PROTOCOL_VERSION}, client sent {version}"
                    )
                },
            )
            return False
        if "chunk_bytes" in frame.payload:
            self.chunk_bytes = negotiate_chunk_bytes(
                frame.payload["chunk_bytes"]
            )
        self._reply(
            sock,
            frame.request_id,
            FrameType.WELCOME,
            {
                "version": PROTOCOL_VERSION,
                "site": owner.site,
                "chunk_bytes": self.chunk_bytes,
            },
        )
        return True

    def _serve_frame(
        self, sock: socket.socket, owner: "SiteServer", frame: Frame
    ) -> bool:
        """Handle one request frame; False ends the connection."""
        rid = frame.request_id
        payload = frame.payload
        try:
            if frame.type is FrameType.PING:
                self._reply(sock, rid, FrameType.PONG, owner.stats_payload())
            elif frame.type is FrameType.STATS:
                self._reply(sock, rid, FrameType.OK, owner.stats_payload())
            elif frame.type is FrameType.EXECUTE:
                self._execute(sock, owner, rid, payload)
            elif frame.type is FrameType.CREATE_COLLECTION:
                owner.driver.create_collection(payload["collection"])
                self._reply(sock, rid, FrameType.OK, {})
            elif frame.type is FrameType.STORE_DOCUMENT:
                owner.driver.store_document(
                    payload["collection"],
                    payload["document"],
                    name=payload.get("name"),
                    origin=payload.get("origin"),
                )
                owner._count_stored()
                self._reply(sock, rid, FrameType.OK, {})
            elif frame.type is FrameType.DOCUMENT_COUNT:
                count = owner.driver.document_count(payload["collection"])
                self._reply(sock, rid, FrameType.OK, {"count": count})
            elif frame.type is FrameType.COLLECTION_BYTES:
                size = owner.driver.collection_bytes(payload["collection"])
                self._reply(sock, rid, FrameType.OK, {"bytes": size})
            elif frame.type is FrameType.SHUTDOWN:
                self._reply(sock, rid, FrameType.OK, {"draining": True})
                owner.request_shutdown()
                return False
            else:
                self._reply(
                    sock,
                    rid,
                    FrameType.ERROR,
                    {
                        "error_type": "ProtocolError",
                        "message": f"unexpected frame type {frame.type.name}",
                    },
                )
        except Exception as exc:  # noqa: BLE001 - becomes an ERROR frame
            self._reply(sock, rid, FrameType.ERROR, exception_to_payload(exc))
        return True

    def _execute(
        self, sock: socket.socket, owner: "SiteServer", rid: int, payload: dict
    ) -> None:
        delay = payload.get("debug_sleep_seconds")
        if delay:
            # Test hook: lets fault-injection tests hold a query in
            # flight while they kill the server.
            time.sleep(float(delay))
        extra = payload.get("extra_predicate")
        predicate = None
        if extra is not None:
            from repro.partix.serialization import predicate_from_dict

            predicate = predicate_from_dict(extra)
        if payload.get("stream"):
            self._execute_stream(sock, owner, rid, payload, predicate)
            return
        result = owner.driver.execute(
            payload["query"],
            default_collection=payload.get("default_collection"),
            extra_predicate=predicate,
            use_indexes=payload.get("use_indexes"),
            parallel_degree=payload.get("parallel_degree"),
        )
        owner._count_query()
        self._reply(sock, rid, FrameType.RESULT, _result_payload(result))

    def _execute_stream(
        self,
        sock: socket.socket,
        owner: "SiteServer",
        rid: int,
        payload: dict,
        predicate,
    ) -> None:
        """Streamed EXECUTE: RESULT_CHUNK frames as produced, RESULT_END last.

        The driver's per-item pieces are packed into chunks of the
        connection's negotiated ``chunk_bytes``, with a ``\\n`` separator
        byte between pieces — the concatenated chunk payloads are exactly
        the UTF-8 bytes of the monolithic ``result_text``, so a client
        reassembling the stream gets a byte-identical answer. Chunks go
        on the wire while later items are still being serialized.
        """
        stream = owner.driver.execute_iter(
            payload["query"],
            default_collection=payload.get("default_collection"),
            extra_predicate=predicate,
            use_indexes=payload.get("use_indexes"),
            parallel_degree=payload.get("parallel_degree"),
        )
        chunk_bytes = self.chunk_bytes
        buffer = bytearray()
        first = True
        for piece in stream:
            if not first:
                buffer += b"\n"
            first = False
            buffer += piece.encode("utf-8")
            while len(buffer) >= chunk_bytes:
                self._reply_raw(sock, rid, bytes(buffer[:chunk_bytes]))
                del buffer[:chunk_bytes]
        if buffer:
            self._reply_raw(sock, rid, bytes(buffer))
        owner._count_query()
        self._reply(
            sock, rid, FrameType.RESULT_END, _stream_end_payload(stream.result)
        )

    def _reply_raw(self, sock: socket.socket, rid: int, data: bytes) -> None:
        try:
            sent = send_frame(
                sock,
                Frame(type=FrameType.RESULT_CHUNK, request_id=rid, raw=data),
            )
        except OSError:
            return
        self.server.owner._count_out(sent)

    def _reply(
        self, sock: socket.socket, rid: int, type_: FrameType, payload: dict
    ) -> None:
        try:
            sent = send_frame(
                sock, Frame(type=type_, request_id=rid, payload=payload)
            )
        except OSError:
            return
        self.server.owner._count_out(sent)


class _SiteTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = False  # drain: join in-flight handlers on close
    # server_close() closes the *listener* first, then joins the handler
    # threads — no new connection can arrive while the drain waits, and
    # idle handlers notice _shutdown_requested within one poll interval
    # (see _SiteHandler._await_frame), so the join always terminates.
    block_on_close = True

    def __init__(self, address, owner: "SiteServer"):
        self.owner = owner
        super().__init__(address, _SiteHandler)


class SiteServer:
    """One site's frame-protocol server over one local driver."""

    def __init__(
        self,
        driver: Optional[PartixDriver] = None,
        site: str = "site",
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.site = site
        self.driver = driver if driver is not None else MiniXDriver(name=site)
        self._server = _SiteTCPServer((host, port), self)
        self._stats_lock = threading.Lock()
        self._queries_executed = 0
        self._documents_stored = 0
        self._bytes_received = 0
        self._bytes_sent = 0
        self._frame_sizes_in: Counter = Counter()
        self._frame_sizes_out: Counter = Counter()
        self._started = time.perf_counter()
        self._thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def stats_payload(self) -> dict:
        with self._stats_lock:
            return {
                "site": self.site,
                "queries_executed": self._queries_executed,
                "documents_stored": self._documents_stored,
                "bytes_received": self._bytes_received,
                "bytes_sent": self._bytes_sent,
                "frame_sizes_received": dict(self._frame_sizes_in),
                "frame_sizes_sent": dict(self._frame_sizes_out),
                "uptime_seconds": time.perf_counter() - self._started,
            }

    def _count_in(self, count: int) -> None:
        with self._stats_lock:
            self._bytes_received += count
            self._frame_sizes_in[frame_size_bucket(count)] += 1

    def _count_out(self, count: int) -> None:
        with self._stats_lock:
            self._bytes_sent += count
            self._frame_sizes_out[frame_size_bucket(count)] += 1

    def _count_query(self) -> None:
        with self._stats_lock:
            self._queries_executed += 1

    def _count_stored(self) -> None:
        with self._stats_lock:
            self._documents_stored += 1

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown` (blocking)."""
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()

    def serve_in_thread(self) -> "SiteServer":
        """Serve on a background thread (in-process tests)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"site-server-{self.site}"
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Stop accepting connections and drain (idempotent, non-blocking)."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        # shutdown() blocks until serve_forever exits; never call it from
        # a handler thread directly.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def close(self) -> bool:
        """Shut down and wait for the serving thread (if any) to finish.

        Returns True when the drain completed cleanly — the serving
        thread (which joins every handler on exit) actually terminated —
        so tests can assert shutdown never leaks a wedged handler.
        """
        self.request_shutdown()
        clean = True
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            clean = not self._thread.is_alive()
            self._thread = None
        return clean


# ----------------------------------------------------------------------
# CLI (``python -m repro.serve`` delegates here)
# ----------------------------------------------------------------------
def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run one PartiX site server (one engine per process).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port (default)"
    )
    parser.add_argument("--site", default="site", help="site name")
    parser.add_argument(
        "--storage-dir", default=None, help="persist collections on disk"
    )
    parser.add_argument(
        "--cache-parsed", action="store_true", help="enable the parsed-doc LRU"
    )
    parser.add_argument(
        "--no-indexes",
        action="store_true",
        help="disable index-assisted document pruning (paper-faithful)",
    )
    parser.add_argument(
        "--per-document-overhead",
        type=float,
        default=0.0,
        help="simulated per-document access cost in seconds",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        help="intra-site worker pool size for sharded evaluation (0 = serial)",
    )
    options = parser.parse_args(argv)

    from repro.engine.database import XMLEngine

    engine = XMLEngine(
        options.site,
        storage_dir=options.storage_dir,
        cache_parsed=options.cache_parsed,
        use_indexes=not options.no_indexes,
        per_document_overhead=options.per_document_overhead,
        shard_workers=options.shard_workers,
    )
    server = SiteServer(
        MiniXDriver(engine), site=options.site, host=options.host, port=options.port
    )

    def _graceful(signum, _frame):
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    print(
        f"repro.serve: site {options.site!r} listening on"
        f" {server.host}:{server.port} (protocol v{PROTOCOL_VERSION})",
        flush=True,
    )
    server.serve_forever()
    return 0
