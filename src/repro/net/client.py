"""Client side of the PartiX wire protocol.

:class:`SiteClient` talks to one site server through a small connection
pool: each request borrows an idle connection (or dials a new one, with
a connect timeout and the HELLO/WELCOME handshake), sends one frame, and
reads one reply under the caller's read timeout. Transport-level
failures — refused/reset connections, mid-frame EOF, read timeouts —
surface as :class:`~repro.errors.TransportError` /
:class:`~repro.errors.TransportTimeout`, which the dispatcher treats as
retryable; the broken connection is discarded, never repooled.

Every request records its real bytes on the wire (frames in both
directions). :class:`RemoteSiteDriver` adapts the client to the
:class:`~repro.partix.driver.PartixDriver` interface so the existing
publisher stores fragments through the very same path it uses for local
engines, and :class:`TcpTransport` plugs the client pool into
:class:`~repro.cluster.dispatch.ParallelDispatcher`.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional, Sequence, Union, TYPE_CHECKING

from repro.cluster.dispatch import Transport
from repro.cluster.site import SubQueryExecution
from repro.engine.stats import QueryResult
from repro.errors import (
    ClusterError,
    CollectionNotFoundError,
    ProtocolError,
    TransportError,
    TransportTimeout,
)
from repro.net.protocol import (
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    payload_to_exception,
    recv_frame,
    send_frame,
)
from repro.partix.driver import PartixDriver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datamodel.document import XMLDocument
    from repro.paths.predicates import Predicate
    from repro.plan.spec import SubQuery


class SiteClient:
    """Pooled connections to one site server."""

    def __init__(
        self,
        host: str,
        port: int,
        site: str = "",
        connect_timeout: float = 5.0,
        read_timeout: Optional[float] = None,
        pool_size: int = 8,
        chunk_bytes: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.site = site
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.pool_size = pool_size
        #: Proposed streamed-chunk size, sent in HELLO; ``None`` leaves the
        #: server at its default. The server's clamped answer lands in
        #: :attr:`negotiated_chunk_bytes` after the first connection.
        self.chunk_bytes = chunk_bytes
        self.negotiated_chunk_bytes: Optional[int] = None
        self._idle: list[socket.socket] = []
        self._lock = threading.Lock()
        self._request_id = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0
        #: Connections dialed over this client's lifetime. With pooling
        #: shared across in-flight queries this stays near ``pool_size``
        #: no matter how many queries run — the coordinator's serving
        #: stats surface it per site to prove pool reuse.
        self.connections_created = 0

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot connect to site {self.site or self.host!r} at"
                f" {self.host}:{self.port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello: dict = {"version": PROTOCOL_VERSION}
        if self.chunk_bytes is not None:
            hello["chunk_bytes"] = self.chunk_bytes
        try:
            sent = send_frame(
                sock,
                Frame(
                    type=FrameType.HELLO,
                    request_id=self._next_request_id(),
                    payload=hello,
                ),
            )
            reply, received = recv_frame(sock)
        except (OSError, ProtocolError) as exc:
            sock.close()
            raise TransportError(
                f"handshake with site {self.site or self.host!r} failed: {exc}"
            ) from exc
        self._count(sent, received)
        if reply.type is FrameType.REJECT:
            sock.close()
            raise ProtocolError(
                f"site {self.site or self.host!r} rejected the connection:"
                f" {reply.payload.get('reason', 'no reason given')}"
            )
        if reply.type is not FrameType.WELCOME:
            sock.close()
            raise ProtocolError(
                f"expected WELCOME from site {self.site or self.host!r},"
                f" got {reply.type.name}"
            )
        if "chunk_bytes" in reply.payload:
            self.negotiated_chunk_bytes = reply.payload["chunk_bytes"]
        with self._lock:
            self.connections_created += 1
        return sock

    def _borrow(self) -> socket.socket:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return self._connect()

    def _repool(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._idle) < self.pool_size:
                self._idle.append(sock)
                return
        sock.close()

    def _next_request_id(self) -> int:
        with self._lock:
            self._request_id += 1
            return self._request_id

    def _count(self, sent: int, received: int) -> None:
        with self._lock:
            self.bytes_sent += sent
            self.bytes_received += received

    def pool_stats(self) -> dict:
        """This client's connection-pool counters (serving stats)."""
        with self._lock:
            return {
                "site": self.site,
                "pool_size": self.pool_size,
                "idle_connections": len(self._idle),
                "connections_created": self.connections_created,
                "requests": self.requests,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
            }

    def close(self) -> None:
        """Close every pooled connection."""
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request(
        self,
        type_: FrameType,
        payload: dict,
        read_timeout: Optional[float] = None,
    ) -> tuple[Frame, int, int]:
        """One request/reply round trip.

        Returns ``(reply, bytes_sent, bytes_received)``. ERROR replies are
        *not* raised here — :meth:`call` does that — so callers that need
        the raw frame (health checks, tests) can inspect it.
        """
        rid = self._next_request_id()
        sock = self._borrow()
        timeout = read_timeout if read_timeout is not None else self.read_timeout
        try:
            sock.settimeout(timeout)
            sent = send_frame(
                sock, Frame(type=type_, request_id=rid, payload=payload)
            )
            reply, received = recv_frame(sock)
        except socket.timeout as exc:
            sock.close()
            raise TransportTimeout(
                f"site {self.site or self.host!r} did not answer a"
                f" {type_.name} within {timeout:.3f}s"
            ) from exc
        except (OSError, ProtocolError) as exc:
            sock.close()
            raise TransportError(
                f"request {type_.name} to site {self.site or self.host!r}"
                f" failed: {exc}"
            ) from exc
        if reply.request_id != rid:
            sock.close()
            raise TransportError(
                f"site {self.site or self.host!r} answered request"
                f" {reply.request_id}, expected {rid} — stream desynchronized"
            )
        self._repool(sock)
        self._count(sent, received)
        with self._lock:
            self.requests += 1
        return reply, sent, received

    def call(
        self,
        type_: FrameType,
        payload: dict,
        read_timeout: Optional[float] = None,
    ) -> tuple[Frame, int, int]:
        """Like :meth:`request`, but ERROR replies raise their mapped
        exception (the same class the site raised locally)."""
        reply, sent, received = self.request(type_, payload, read_timeout)
        if reply.type is FrameType.ERROR:
            raise payload_to_exception(reply.payload)
        return reply, sent, received

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------
    def ping(self, read_timeout: Optional[float] = 5.0) -> dict:
        """Health check; returns the site's stats payload."""
        reply, _, _ = self.call(FrameType.PING, {}, read_timeout)
        if reply.type is not FrameType.PONG:
            raise TransportError(f"PING answered with {reply.type.name}")
        return reply.payload

    def server_stats(self) -> dict:
        reply, _, _ = self.call(FrameType.STATS, {})
        return reply.payload

    def execute(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional["Predicate"] = None,
        read_timeout: Optional[float] = None,
        debug_sleep_seconds: Optional[float] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> tuple[QueryResult, int, int]:
        """Run a query remotely; returns ``(result, sent, received)``.

        The result's ``items`` stay empty — only the serialized text
        crosses the wire, as with any real remote DBMS.
        """
        payload: dict = {"query": query}
        if default_collection is not None:
            payload["default_collection"] = default_collection
        if extra_predicate is not None:
            from repro.partix.serialization import predicate_to_dict

            payload["extra_predicate"] = predicate_to_dict(extra_predicate)
        if debug_sleep_seconds:
            payload["debug_sleep_seconds"] = debug_sleep_seconds
        if use_indexes is not None:
            payload["use_indexes"] = use_indexes
        if parallel_degree is not None:
            payload["parallel_degree"] = parallel_degree
        reply, sent, received = self.call(FrameType.EXECUTE, payload, read_timeout)
        if reply.type is not FrameType.RESULT:
            raise TransportError(f"EXECUTE answered with {reply.type.name}")
        data = reply.payload
        text = data["result_text"]
        return (
            QueryResult(
                items=[],
                result_text=text,
                result_bytes=len(text.encode("utf-8")),
                elapsed_seconds=data["elapsed_seconds"],
                parse_seconds=data["parse_seconds"],
                documents_parsed=data["documents_parsed"],
                bytes_parsed=data["bytes_parsed"],
                documents_scanned=data["documents_scanned"],
                documents_pruned=data["documents_pruned"],
                cache_hits=data.get("cache_hits", 0),
                simulated_overhead_seconds=data.get(
                    "simulated_overhead_seconds", 0.0
                ),
                binary_decodes=data.get("binary_decodes", 0),
                label_pruned=data.get("label_pruned", 0),
            ),
            sent,
            received,
        )

    def execute_stream(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional["Predicate"] = None,
        on_chunk=None,
        read_timeout: Optional[float] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> tuple[QueryResult, int, int]:
        """Run a query remotely in streaming mode.

        ``on_chunk`` is called with each RESULT_CHUNK's raw bytes as it
        arrives (the concatenation of all chunks is exactly the UTF-8
        monolithic answer); the returned :class:`QueryResult` carries the
        RESULT_END stats with an empty ``result_text`` — callers that
        want the text must assemble it from the chunks. A connection that
        dies before RESULT_END raises :class:`TransportError`, so a
        truncated stream can never be mistaken for a short answer.
        """
        payload: dict = {"query": query, "stream": True}
        if default_collection is not None:
            payload["default_collection"] = default_collection
        if extra_predicate is not None:
            from repro.partix.serialization import predicate_to_dict

            payload["extra_predicate"] = predicate_to_dict(extra_predicate)
        if use_indexes is not None:
            payload["use_indexes"] = use_indexes
        if parallel_degree is not None:
            payload["parallel_degree"] = parallel_degree
        rid = self._next_request_id()
        sock = self._borrow()
        timeout = read_timeout if read_timeout is not None else self.read_timeout
        streamed = 0
        received_total = 0
        try:
            sock.settimeout(timeout)
            sent = send_frame(
                sock,
                Frame(type=FrameType.EXECUTE, request_id=rid, payload=payload),
            )
            while True:
                reply, received = recv_frame(sock)
                received_total += received
                if reply.request_id != rid:
                    sock.close()
                    raise TransportError(
                        f"site {self.site or self.host!r} answered request"
                        f" {reply.request_id}, expected {rid} — stream"
                        " desynchronized"
                    )
                if reply.type is FrameType.RESULT_CHUNK:
                    streamed += len(reply.raw)
                    if on_chunk is not None:
                        on_chunk(reply.raw)
                elif reply.type is FrameType.RESULT_END:
                    break
                elif reply.type is FrameType.ERROR:
                    # The connection is back in a clean state after an
                    # ERROR frame; any partial chunks are the caller's
                    # sink to discard (the dispatcher resets its lane on
                    # every retry attempt).
                    self._repool(sock)
                    self._count(sent, received_total)
                    raise payload_to_exception(reply.payload)
                else:
                    sock.close()
                    raise TransportError(
                        f"streamed EXECUTE answered with {reply.type.name}"
                    )
        except socket.timeout as exc:
            sock.close()
            raise TransportTimeout(
                f"site {self.site or self.host!r} did not answer a streamed"
                f" EXECUTE within {timeout:.3f}s"
            ) from exc
        except (OSError, ProtocolError) as exc:
            sock.close()
            raise TransportError(
                f"stream from site {self.site or self.host!r} truncated"
                f" before RESULT_END ({streamed} chunk bytes received): {exc}"
            ) from exc
        self._repool(sock)
        self._count(sent, received_total)
        with self._lock:
            self.requests += 1
        data = reply.payload
        return (
            QueryResult(
                items=[],
                result_text="",
                result_bytes=data.get("result_bytes", streamed),
                elapsed_seconds=data["elapsed_seconds"],
                parse_seconds=data["parse_seconds"],
                documents_parsed=data["documents_parsed"],
                bytes_parsed=data["bytes_parsed"],
                documents_scanned=data["documents_scanned"],
                documents_pruned=data["documents_pruned"],
                cache_hits=data.get("cache_hits", 0),
                simulated_overhead_seconds=data.get(
                    "simulated_overhead_seconds", 0.0
                ),
                binary_decodes=data.get("binary_decodes", 0),
                label_pruned=data.get("label_pruned", 0),
            ),
            sent,
            received_total,
        )

    def create_collection(self, name: str) -> None:
        self.call(FrameType.CREATE_COLLECTION, {"collection": name})

    def store_document(
        self,
        collection: str,
        document: str,
        name: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> None:
        self.call(
            FrameType.STORE_DOCUMENT,
            {
                "collection": collection,
                "document": document,
                "name": name,
                "origin": origin,
            },
        )

    def document_count(self, collection: str) -> int:
        reply, _, _ = self.call(FrameType.DOCUMENT_COUNT, {"collection": collection})
        return reply.payload["count"]

    def collection_bytes(self, collection: str) -> int:
        reply, _, _ = self.call(FrameType.COLLECTION_BYTES, {"collection": collection})
        return reply.payload["bytes"]

    def shutdown_server(self, read_timeout: Optional[float] = 5.0) -> bool:
        """Ask the server to drain and exit; False if it was unreachable."""
        try:
            self.request(FrameType.SHUTDOWN, {}, read_timeout)
        except (TransportError, ProtocolError):
            return False
        return True


class RemoteSiteDriver(PartixDriver):
    """The PartiX driver contract over a :class:`SiteClient`.

    This is the piece §4 promised: "a PartiX Driver, which allows
    accessing remote DBMSs to store and retrieve XML documents" — the
    publisher and middleware use it exactly like the in-process
    :class:`~repro.partix.driver.MiniXDriver`.
    """

    def __init__(self, client: SiteClient):
        self.client = client

    def create_collection(self, name: str) -> None:
        self.client.create_collection(name)

    def store_document(
        self,
        collection: str,
        document: Union["XMLDocument", str, bytes],
        name: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> None:
        from repro.datamodel.document import XMLDocument
        from repro.xmltext.serializer import serialize

        if isinstance(document, XMLDocument):
            name = name or document.name
            origin = origin or document.origin
            text = serialize(document)
        elif isinstance(document, bytes):
            text = document.decode("utf-8")
        else:
            text = document
        self.client.store_document(collection, text, name=name, origin=origin)

    def execute(
        self,
        query: str,
        default_collection: Optional[str] = None,
        extra_predicate: Optional["Predicate"] = None,
        use_indexes: Optional[bool] = None,
        parallel_degree: Optional[int] = None,
    ) -> QueryResult:
        result, _, _ = self.client.execute(
            query,
            default_collection=default_collection,
            extra_predicate=extra_predicate,
            use_indexes=use_indexes,
            parallel_degree=parallel_degree,
        )
        return result

    def document_count(self, collection: str) -> int:
        # The ERROR-frame class mapping resurfaces the server's typed
        # exception, so a missing collection is matched by class — an
        # unrelated error whose text happens to mention "no collection"
        # propagates instead of being swallowed as 0.
        try:
            return self.client.document_count(collection)
        except CollectionNotFoundError:
            return 0

    def collection_bytes(self, collection: str) -> int:
        try:
            return self.client.collection_bytes(collection)
        except CollectionNotFoundError:
            return 0


class TcpTransport(Transport):
    """Socket lanes for :class:`ParallelDispatcher`: one client per site.

    ``execute`` applies the dispatcher's per-sub-query timeout as the
    socket *read* timeout, so over TCP the budget is enforced on the
    wire (the in-process transport can only check it after the fact).
    """

    def __init__(self, clients: dict[str, SiteClient]):
        self.clients = dict(clients)

    def resolve(self, site_names: Sequence[str]) -> None:
        for name in site_names:
            if name not in self.clients:
                raise ClusterError(f"no site named {name!r}")

    def ping(self, site: str) -> bool:
        """A real PING/PONG round-trip — the health probe that readmits
        an ejected site once it answers again."""
        client = self.clients.get(site)
        if client is None:
            return False
        try:
            client.ping(read_timeout=2.0)
        except (TransportError, ProtocolError, OSError):
            return False
        return True

    def execute(
        self,
        subquery: "SubQuery",
        default_collection: Optional[str] = None,
        timeout: Optional[float] = None,
        on_chunk=None,
    ) -> SubQueryExecution:
        client = self.clients.get(subquery.site)
        if client is None:
            raise ClusterError(f"no site named {subquery.site!r}")
        if on_chunk is not None:
            result, sent, received = client.execute_stream(
                subquery.query,
                default_collection=default_collection,
                on_chunk=on_chunk,
                read_timeout=timeout,
                use_indexes=subquery.use_indexes,
                parallel_degree=subquery.parallel_degree,
            )
        else:
            result, sent, received = client.execute(
                subquery.query,
                default_collection=default_collection,
                read_timeout=timeout,
                use_indexes=subquery.use_indexes,
                parallel_degree=subquery.parallel_degree,
            )
        return SubQueryExecution(
            site=subquery.site,
            fragment=subquery.fragment,
            query=subquery.query,
            result=result,
            bytes_sent=sent,
            bytes_received=received,
            on_wire=True,
        )
