"""The PartiX wire protocol: length-prefixed binary frames.

Every message between a coordinator and a site server is one *frame*:

====== ======= ======================================================
offset size    field
====== ======= ======================================================
0      2       magic ``b"PX"``
2      1       protocol version (:data:`PROTOCOL_VERSION`)
3      1       frame type (:class:`FrameType`)
4      8       request id (unsigned big-endian; replies echo it)
12     4       payload length in bytes (unsigned big-endian)
16     n       payload — a UTF-8 JSON object
====== ======= ======================================================

The framing is fixed-layout binary so a reader always knows how many
bytes to wait for; the payload is JSON so sub-query texts, XML document
bodies and stats ride in one self-describing envelope (the same policy
as :mod:`repro.partix.serialization` for designs). Frames larger than
:data:`MAX_PAYLOAD_BYTES` are refused on both encode and decode — a
garbage length prefix must not make a reader allocate gigabytes.

The one exception to the JSON rule is ``RESULT_CHUNK``: its payload is
*raw bytes* — a slice of the UTF-8 serialized result stream, shipped
without JSON escaping so large XML value streams cost exactly their own
size on the wire. A streamed execution is a sequence of ``RESULT_CHUNK``
frames closed by one JSON ``RESULT_END`` frame carrying the execution
stats; chunk size is negotiated per connection: the client proposes
``chunk_bytes`` in its HELLO, the server clamps it with
:func:`negotiate_chunk_bytes` and echoes the effective value in its
WELCOME.

Handshake: a client's first frame must be ``HELLO {"version": N}``. The
server answers ``WELCOME {"version", "site"}`` when the version matches
and ``REJECT {"reason"}`` (then closes) when it does not — version skew
fails loudly at connect time, never mid-query.

Error transparency: a site server maps an execution failure to an
``ERROR`` frame carrying the exception class name and message;
:func:`payload_to_exception` maps it back to the *same* class (from
:mod:`repro.errors` or builtins) so remote execution raises exactly what
in-process execution would — the differential fuzz oracle relies on
this symmetry.
"""

from __future__ import annotations

import builtins
import enum
import json
import socket
import struct
from dataclasses import dataclass, field

from repro.errors import ProtocolError, RemoteExecutionError

MAGIC = b"PX"
PROTOCOL_VERSION = 1

#: ``!`` network byte order: magic, version, type, request id, payload size.
_HEADER = struct.Struct("!2sBBQI")
HEADER_BYTES = _HEADER.size

#: Hard ceiling on one frame's payload (64 MiB). Large enough for any
#: mirrored fragment document; small enough that a corrupt length prefix
#: cannot trigger a runaway allocation.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: Default negotiated size of one streamed RESULT_CHUNK payload. 64 KiB
#: amortizes the 16-byte header to ~0.02% while keeping the coordinator's
#: per-lane buffering small.
DEFAULT_CHUNK_BYTES = 64 * 1024

#: Floor for a negotiated chunk size. 1 is legal on purpose: the fuzz
#: harness uses it to force chunk boundaries inside multi-byte UTF-8
#: sequences.
MIN_CHUNK_BYTES = 1


def negotiate_chunk_bytes(requested) -> int:
    """Clamp a client-proposed chunk size to a servable value.

    Anything non-numeric or missing falls back to
    :data:`DEFAULT_CHUNK_BYTES`; numeric proposals are clamped into
    ``[MIN_CHUNK_BYTES, MAX_PAYLOAD_BYTES]``.
    """
    try:
        value = int(requested)
    except (TypeError, ValueError):
        return DEFAULT_CHUNK_BYTES
    return max(MIN_CHUNK_BYTES, min(value, MAX_PAYLOAD_BYTES))


class FrameType(enum.IntEnum):
    """Every message the protocol knows."""

    HELLO = 1  # client → server: {"version": int}
    WELCOME = 2  # server → client: {"version": int, "site": str}
    REJECT = 3  # server → client: {"reason": str} (connection closes)
    PING = 4  # health check: {}
    PONG = 5  # {"site": str, "queries_executed": int, ...}
    EXECUTE = 6  # {"query", "default_collection"?, "extra_predicate"?}
    RESULT = 7  # {"result_text", "elapsed_seconds", per-query stats...}
    ERROR = 8  # {"error_type": str, "message": str}
    CREATE_COLLECTION = 9  # {"collection": str}
    STORE_DOCUMENT = 10  # {"collection", "document", "name"?, "origin"?}
    DOCUMENT_COUNT = 11  # {"collection": str}
    COLLECTION_BYTES = 12  # {"collection": str}
    STATS = 13  # {} → OK with the server's cumulative wire/query stats
    SHUTDOWN = 14  # {} → OK, then the server drains and exits
    OK = 15  # generic success reply, payload depends on the request
    RESULT_CHUNK = 16  # raw bytes: one slice of a streamed result
    RESULT_END = 17  # {"result_bytes", "elapsed_seconds", stats...}
    # Coordinator frames (client ↔ repro.coordinate service). A QUERY is
    # answered by exactly one QUERY_RESULT or QUERY_ERROR carrying the
    # same request id; with {"stream": true} the QUERY_RESULT is preceded
    # by RESULT_CHUNK frames whose concatenation is the UTF-8 answer (the
    # QUERY_RESULT then omits "result_text"). Replies to *different*
    # request ids may interleave on one connection — the request id is
    # the multiplexing key.
    QUERY = 18  # {"query", "collection"?, "deadline_seconds"?, "stream"?}
    QUERY_RESULT = 19  # {"result_text"?, "result_bytes", serving stats...}
    QUERY_ERROR = 20  # {"error_type", "message", "shed": bool}
    # Rebalancing frames (client ↔ repro.coordinate service), both
    # answered by OK or ERROR. ADVISE mines the coordinator's query log
    # for ranked RebalanceActions; REBALANCE applies one online (the
    # advisor's top action when the payload names none).
    ADVISE = 21  # {"collection"?, "top"?}
    REBALANCE = 22  # {"collection"?, "action"?: RebalanceAction dict}


#: Frame types whose payload is raw bytes, not a JSON object.
RAW_PAYLOAD_TYPES = frozenset({FrameType.RESULT_CHUNK})


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame.

    ``payload`` carries the JSON object of every ordinary frame;
    ``raw`` carries the byte slice of a :data:`RAW_PAYLOAD_TYPES` frame
    (whose ``payload`` stays ``{}``).
    """

    type: FrameType
    request_id: int = 0
    payload: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION
    raw: bytes = b""


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame to its wire form (header + payload).

    The payload is the JSON object ``frame.payload`` for ordinary
    frames, and ``frame.raw`` verbatim for raw-payload frames.
    """
    if frame.type in RAW_PAYLOAD_TYPES:
        body = frame.raw
    else:
        body = json.dumps(frame.payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"refusing to encode oversized frame: payload is {len(body)}"
            f" bytes (limit {MAX_PAYLOAD_BYTES})"
        )
    header = _HEADER.pack(
        MAGIC, frame.version, int(frame.type), frame.request_id, len(body)
    )
    return header + body


def decode_frame(data: bytes) -> tuple[Frame, int]:
    """Decode one frame from ``data``; returns ``(frame, bytes_consumed)``.

    Raises :class:`ProtocolError` for truncated input, a bad magic, an
    unknown frame type, an oversized payload length, or a payload that is
    not a JSON object.
    """
    if len(data) < HEADER_BYTES:
        raise ProtocolError(
            f"truncated frame header: need {HEADER_BYTES} bytes, got"
            f" {len(data)}"
        )
    magic, version, type_code, request_id, size = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}) — peer is not"
            " speaking the PartiX protocol"
        )
    if size > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload length {size} exceeds the"
            f" {MAX_PAYLOAD_BYTES}-byte limit"
        )
    try:
        frame_type = FrameType(type_code)
    except ValueError:
        raise ProtocolError(f"unknown frame type {type_code}") from None
    end = HEADER_BYTES + size
    if len(data) < end:
        raise ProtocolError(
            f"truncated frame payload: header promises {size} bytes, got"
            f" {len(data) - HEADER_BYTES}"
        )
    body = data[HEADER_BYTES:end]
    if frame_type in RAW_PAYLOAD_TYPES:
        return (
            Frame(
                type=frame_type,
                request_id=request_id,
                version=version,
                raw=bytes(body),
            ),
            end,
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"garbage frame payload (not JSON): {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return (
        Frame(
            type=frame_type,
            request_id=request_id,
            payload=payload,
            version=version,
        ),
        end,
    )


# ----------------------------------------------------------------------
# Socket helpers
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, frame: Frame) -> int:
    """Send one frame; returns the number of bytes put on the wire."""
    data = encode_frame(frame)
    sock.sendall(data)
    return len(data)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes into one pre-sized buffer.

    A single ``bytearray`` is allocated up front and filled through
    ``recv_into`` — no per-read chunk objects, no final join — so a large
    payload is received with one allocation instead of O(reads) copies.
    """
    buffer = bytearray(count)
    view = memoryview(buffer)
    received = 0
    while received < count:
        read = sock.recv_into(view[received:])
        if read == 0:
            raise ProtocolError(
                f"connection closed mid-frame ({received} of"
                f" {count} bytes read)"
            )
        received += read
    return bytes(buffer)


def recv_frame(sock: socket.socket) -> tuple[Frame, int]:
    """Read one frame off a socket; returns ``(frame, bytes_received)``.

    The header is read first and validated, so a corrupt length prefix is
    caught before any payload allocation.
    """
    header = _recv_exactly(sock, HEADER_BYTES)
    magic, version, type_code, request_id, size = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}) — peer is not"
            " speaking the PartiX protocol"
        )
    if size > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload length {size} exceeds the"
            f" {MAX_PAYLOAD_BYTES}-byte limit"
        )
    body = _recv_exactly(sock, size) if size else b""
    frame, _ = decode_frame(header + body)
    return frame, HEADER_BYTES + size


# ----------------------------------------------------------------------
# asyncio helpers (the coordinator's reactor reads frames off
# StreamReaders; same validation as the socket path)
# ----------------------------------------------------------------------
async def read_frame_async(reader) -> tuple[Frame, int]:
    """Read one frame off an ``asyncio.StreamReader``.

    Returns ``(frame, bytes_received)``; mirrors :func:`recv_frame`,
    including the header-before-payload validation, and maps a mid-frame
    EOF to the same :class:`ProtocolError` message so connection-closed
    handling is shared between the threaded and async paths.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of"
            f" {HEADER_BYTES} bytes read)"
        ) from None
    magic, version, type_code, request_id, size = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}) — peer is not"
            " speaking the PartiX protocol"
        )
    if size > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload length {size} exceeds the"
            f" {MAX_PAYLOAD_BYTES}-byte limit"
        )
    if size:
        try:
            body = await reader.readexactly(size)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"connection closed mid-frame ({len(exc.partial)} of"
                f" {size} bytes read)"
            ) from None
    else:
        body = b""
    frame, _ = decode_frame(header + body)
    return frame, HEADER_BYTES + size


def frame_size_bucket(total_bytes: int) -> str:
    """Histogram bucket label for one frame's total size on the wire.

    Power-of-two buckets from 64 bytes up to the payload ceiling; used by
    the server's wire stats so chunk-size tuning can be audited from the
    frame-size distribution.
    """
    size = 64
    while total_bytes > size and size < MAX_PAYLOAD_BYTES:
        size *= 2
    return f"<={size}B"


# ----------------------------------------------------------------------
# Error mapping (ERROR frames ↔ exceptions)
# ----------------------------------------------------------------------
def exception_to_payload(error: BaseException) -> dict:
    """The ERROR-frame payload describing ``error``."""
    return {"error_type": type(error).__name__, "message": str(error)}


def payload_to_exception(payload: dict) -> Exception:
    """Rebuild the exception an ERROR frame describes.

    Classes are resolved by name from :mod:`repro.errors` first, then
    from builtins, so a remote ``CollectionNotFoundError`` raises a local
    ``CollectionNotFoundError`` — execution errors stay symmetric across
    transports. Unknown or unreconstructable classes degrade to
    :class:`RemoteExecutionError` (still a clear failure, just untyped).
    """
    import repro.errors as error_module

    name = payload.get("error_type", "")
    message = payload.get("message", "")
    for namespace in (error_module, builtins):
        candidate = getattr(namespace, name, None)
        if isinstance(candidate, type) and issubclass(candidate, Exception):
            try:
                return candidate(message)
            except TypeError:
                # Constructor needs more than a message (e.g.
                # CorrectnessViolation); fall through to the generic class.
                break
    return RemoteExecutionError(f"{name or 'unknown error'}: {message}")
