"""Online fragment rebalancing (``repro.rebalance``).

Two cooperating halves close the observe → advise → migrate → measure
loop the serving bench opened:

* :class:`~repro.rebalance.log.QueryLog` — the coordinator's workload
  memory: per query it records the text, collection, catalog version,
  end-to-end seconds and per-lane observations (fragment, site,
  estimated vs measured seconds, result bytes, observed selectivity
  against the catalog's :class:`~repro.partix.catalog.FragmentStatistics`).
* :class:`~repro.rebalance.migrate.Rebalancer` — applies a
  :class:`~repro.partix.advisor.RebalanceAction` online: split a hot
  horizontal fragment at a predicate boundary, move or replicate a
  fragment to another site, copying the stored documents first and only
  then atomically swapping the catalog registration (one version bump),
  so in-flight queries finish against the old placement while the plan
  cache invalidates and new queries lower against the new one.

The workload-driven advisor that mines the log lives in
:mod:`repro.partix.advisor` (:class:`~repro.partix.advisor.WorkloadAdvisor`);
the coordinator surfaces both halves as ADVISE/REBALANCE frames, and
``python -m repro.rebalance`` drives them from the command line.
"""

from repro.rebalance.log import LaneObservation, QueryLog, QueryLogEntry
from repro.rebalance.migrate import MigrationReport, Rebalancer

__all__ = [
    "LaneObservation",
    "MigrationReport",
    "QueryLog",
    "QueryLogEntry",
    "Rebalancer",
]
