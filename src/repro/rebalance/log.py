"""The coordinator's query log — the advisor's raw material.

Fragmentation design should be *mined from the workload* (Mahboubi &
Darmont, PAPERS.md): which queries run, how often, which fragments they
actually touch, and how selective their predicates turned out to be.
The :class:`QueryLog` is a bounded, thread-safe ring buffer of
:class:`QueryLogEntry` records built from executed
:class:`~repro.partix.middleware.PartixResult`\\ s:

* one :class:`LaneObservation` per sub-query execution, carrying the
  fragment, the site that answered, the planner's estimate next to the
  measured seconds, and the *observed selectivity* — result bytes over
  the fragment replica's published bytes from the catalog's
  :class:`~repro.partix.catalog.FragmentStatistics` (1.0 ≈ the predicate
  kept everything, 0.0 ≈ the lane was pure overhead);
* the catalog version the query planned against, so the advisor can
  discard observations from designs that no longer exist.

The coordinator records every successful query; recording is O(lanes)
with one short lock hold, cheap enough for the serving hot path.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partix.catalog import DistributionCatalog
    from repro.partix.middleware import PartixResult


@dataclass(frozen=True)
class LaneObservation:
    """One sub-query lane of one logged query."""

    fragment: str
    site: str
    measured_seconds: float
    estimated_seconds: Optional[float]
    result_bytes: int
    #: result bytes / the replica's published bytes (None when the
    #: catalog holds no statistics for the fragment at that site).
    selectivity: Optional[float]

    def to_dict(self) -> dict:
        return {
            "fragment": self.fragment,
            "site": self.site,
            "measured_seconds": self.measured_seconds,
            "estimated_seconds": self.estimated_seconds,
            "result_bytes": self.result_bytes,
            "selectivity": self.selectivity,
        }


@dataclass(frozen=True)
class QueryLogEntry:
    """One executed query as the advisor sees it."""

    query: str
    collection: Optional[str]
    catalog_version: int
    elapsed_seconds: float
    lanes: tuple[LaneObservation, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "collection": self.collection,
            "catalog_version": self.catalog_version,
            "elapsed_seconds": self.elapsed_seconds,
            "lanes": [lane.to_dict() for lane in self.lanes],
        }


class QueryLog:
    """Bounded thread-safe ring buffer of executed-query observations."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=capacity)
        self._recorded = 0

    # ------------------------------------------------------------------
    def record(self, entry: QueryLogEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1

    def record_result(
        self,
        query: str,
        collection: Optional[str],
        result: "PartixResult",
        elapsed_seconds: float,
        catalog_version: int,
        catalog: Optional["DistributionCatalog"] = None,
    ) -> QueryLogEntry:
        """Build an entry from a finished execution and record it.

        Per-lane selectivity comes from the catalog's fragment
        statistics when available: the bytes a lane returned over the
        bytes its fragment replica holds.
        """
        lanes = []
        for execution in result.round.executions:
            selectivity = None
            if catalog is not None and collection is not None:
                stats = catalog.statistics(
                    collection, execution.fragment, execution.site
                )
                if stats is not None and stats.bytes > 0:
                    selectivity = min(
                        1.0, execution.bytes_received / stats.bytes
                    )
            lanes.append(
                LaneObservation(
                    fragment=execution.fragment,
                    site=execution.site,
                    measured_seconds=execution.elapsed,
                    estimated_seconds=execution.estimated_seconds,
                    result_bytes=execution.bytes_received,
                    selectivity=selectivity,
                )
            )
        entry = QueryLogEntry(
            query=query,
            collection=collection,
            catalog_version=catalog_version,
            elapsed_seconds=elapsed_seconds,
            lanes=tuple(lanes),
        )
        self.record(entry)
        return entry

    # ------------------------------------------------------------------
    def entries(
        self, collection: Optional[str] = None
    ) -> list[QueryLogEntry]:
        """A snapshot of the buffered entries (optionally one collection)."""
        with self._lock:
            snapshot = list(self._entries)
        if collection is None:
            return snapshot
        return [e for e in snapshot if e.collection == collection]

    def frequencies(
        self, collection: Optional[str] = None
    ) -> Counter:
        """How often each (query, collection) pair appears in the buffer."""
        tally: Counter = Counter()
        for entry in self.entries(collection):
            tally[(entry.query, entry.collection)] += 1
        return tally

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_payload(self) -> dict:
        """Summary block for the coordinator's STATS/PING payloads."""
        with self._lock:
            entries = list(self._entries)
            recorded = self._recorded
        site_seconds: Counter = Counter()
        for entry in entries:
            for lane in entry.lanes:
                site_seconds[lane.site] += lane.measured_seconds
        return {
            "capacity": self.capacity,
            "entries": len(entries),
            "recorded": recorded,
            "distinct_queries": len(
                {(e.query, e.collection) for e in entries}
            ),
            "busiest_sites": [
                {"site": site, "measured_seconds": seconds}
                for site, seconds in site_seconds.most_common(3)
            ],
        }
