"""Online fragment migration: split / move / replicate / merge, live.

The :class:`Rebalancer` re-places fragments while queries keep running.
Every migration follows the same store-then-swap state machine the
republish path (``Publisher(replace=True)``) established:

1. **read** — the fragment's stored documents are read from its primary
   replica's local engine (the same serialized bytes
   :func:`repro.net.bootstrap.mirror_site` ships, so answers stay
   byte-identical);
2. **store** — the new fragment collections are created and fully
   populated on the chosen target sites (and mirrored to the live TCP
   servers when ``Partix.start_tcp`` is active). The catalog still
   routes every query to the *old* placement;
3. **swap** — ``DistributionCatalog.register_fragmentation(replace=True)``
   installs the new design in one atomic assignment per map and bumps
   the catalog version: in-flight queries finish against the old
   placement, the plan cache invalidates, and every new query lowers
   against the new one.

A failure before step 3 leaves the old design fully routable (some
orphaned documents may remain on target sites; the report notes them).
Old fragment data is likewise left in place after a successful swap —
the catalog simply no longer routes there.

Splitting picks a *boundary*: a single-valued terminal path (e.g.
``/Item/Section``) whose values partition the fragment's documents into
two non-empty halves. The children's predicates follow the repository's
equality-family idiom — ``μ ∧ (P=v₁ ∨ …)`` for the chosen values and
``μ ∧ P≠v₁ ∧ …`` for the rest — so localization prunes them exactly
like any published horizontal design. A path is only usable when every
stored document carries exactly one value for it: then each child's
predicate is *exact* for the documents it holds and pruning stays
answer-preserving.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import CatalogError, FragmentationError, RebalanceError
from repro.partix.catalog import FragmentAllocation
from repro.partix.fragments import (
    FragmentationSchema,
    HorizontalFragment,
)
from repro.paths.evaluator import evaluate_path
from repro.paths.predicates import And, Comparison, Or, Predicate, eq, ne
from repro.xmltext.parser import parse_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.store import StoredDocument
    from repro.partix.advisor import RebalanceAction
    from repro.partix.middleware import Partix


@dataclass
class MigrationReport:
    """What one migration did (JSON-able for the REBALANCE frame)."""

    kind: str  # "split" | "move" | "replicate" | "merge" | "promote"
    collection: str
    fragment: str
    new_fragments: list[str] = field(default_factory=list)
    target_sites: list[str] = field(default_factory=list)
    documents_moved: int = 0
    bytes_moved: int = 0
    catalog_version_before: int = 0
    catalog_version_after: int = 0
    split_path: Optional[str] = None
    split_values: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    completed: bool = False
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "collection": self.collection,
            "fragment": self.fragment,
            "new_fragments": list(self.new_fragments),
            "target_sites": list(self.target_sites),
            "documents_moved": self.documents_moved,
            "bytes_moved": self.bytes_moved,
            "catalog_version_before": self.catalog_version_before,
            "catalog_version_after": self.catalog_version_after,
            "split_path": self.split_path,
            "split_values": list(self.split_values),
            "elapsed_seconds": self.elapsed_seconds,
            "completed": self.completed,
            "notes": list(self.notes),
        }


class Rebalancer:
    """Apply rebalance actions to a live :class:`Partix` middleware."""

    def __init__(self, partix: "Partix"):
        self.partix = partix
        self.cluster = partix.cluster
        self.catalog = partix.distribution_catalog
        # One migration at a time: concurrent store phases could collide
        # on collection names and the swap must observe a settled design.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def apply(self, action: "RebalanceAction") -> MigrationReport:
        """Apply one advisor action; raises :class:`RebalanceError` when
        the action's kind is unknown or its migration is impossible."""
        if action.kind == "split":
            return self.split(
                action.collection,
                action.fragment,
                target_sites=action.target_sites or None,
                path=action.split_path,
            )
        if action.kind == "move":
            return self.move(
                action.collection, action.fragment, action.target_sites[0]
            )
        if action.kind == "replicate":
            return self.replicate(
                action.collection, action.fragment, action.target_sites[0]
            )
        if action.kind == "merge":
            if not action.fragment_b:
                raise RebalanceError("merge action needs a partner fragment")
            return self.merge(
                action.collection,
                action.fragment,
                action.fragment_b,
                action.target_sites[0] if action.target_sites else None,
            )
        raise RebalanceError(f"unknown rebalance action kind {action.kind!r}")

    def split(
        self,
        collection: str,
        fragment: str,
        target_sites: Optional[Sequence[str]] = None,
        path: Optional[str] = None,
    ) -> MigrationReport:
        """Split a hot horizontal fragment at a predicate boundary.

        ``path`` names the boundary selector; without it the rebalancer
        probes the fragment's own predicate paths first, then the leaf
        children of the stored documents' root. ``target_sites`` are the
        two sites receiving the halves (default: the current primary
        keeps the first half, the least-loaded other site gets the
        second).
        """
        with self._lock:
            started = time.perf_counter()
            design, parent, primary = self._locate(collection, fragment)
            if not isinstance(parent, HorizontalFragment):
                raise RebalanceError(
                    f"fragment {fragment!r} of {collection!r} is"
                    f" {type(parent).__name__}; only horizontal fragments"
                    " split by predicate boundary (move it instead)"
                )
            documents = self._stored_documents(primary)
            if len(documents) < 2:
                raise RebalanceError(
                    f"fragment {fragment!r} holds {len(documents)}"
                    " document(s); nothing to split"
                )
            boundary = self._choose_boundary(documents, parent, path)
            if boundary is None:
                raise RebalanceError(
                    f"no single-valued boundary path partitions the"
                    f" {len(documents)} documents of {fragment!r}"
                    " into two non-empty halves"
                )
            boundary_path, chosen_values, part_a, part_b = boundary
            if target_sites is None:
                target_sites = (
                    primary.site,
                    self._least_loaded_site(collection, exclude=(primary.site,)),
                )
            if len(target_sites) != 2:
                raise RebalanceError(
                    f"a split needs exactly 2 target sites, got"
                    f" {len(target_sites)}"
                )
            version = self.catalog.version
            name_a = f"{fragment}_a{version}"
            name_b = f"{fragment}_b{version}"
            group = tuple(eq(boundary_path, value) for value in chosen_values)
            residual = tuple(ne(boundary_path, value) for value in chosen_values)
            child_a = HorizontalFragment(
                name_a,
                collection,
                predicate=_conjoin(
                    parent.predicate,
                    group[0] if len(group) == 1 else Or(group),
                ),
            )
            child_b = HorizontalFragment(
                name_b,
                collection,
                predicate=_conjoin(
                    parent.predicate,
                    residual[0] if len(residual) == 1 else And(residual),
                ),
            )
            report = MigrationReport(
                kind="split",
                collection=collection,
                fragment=fragment,
                new_fragments=[name_a, name_b],
                target_sites=list(target_sites),
                catalog_version_before=version,
                split_path=str(boundary_path),
                split_values=[str(value) for value in chosen_values],
            )

            # Store both halves before the catalog learns anything.
            hybrid_mode = primary.hybrid_mode
            new_allocations = []
            for name, part, site_name in (
                (name_a, part_a, target_sites[0]),
                (name_b, part_b, target_sites[1]),
            ):
                self._store_fragment(collection, name, part, site_name, report)
                new_allocations.append(
                    FragmentAllocation(
                        fragment=name,
                        site=site_name,
                        stored_collection=name,
                        hybrid_mode=hybrid_mode,
                    )
                )

            fragments = [
                child_a if item.name == fragment else item
                for item in design.fragments
            ]
            fragments.insert(fragments.index(child_a) + 1, child_b)
            allocations = [
                allocation
                for item in design.fragments
                if item.name != fragment
                for allocation in self.catalog.replicas(collection, item.name)
            ] + new_allocations
            self._swap(design, fragments, allocations, report)
            report.notes.append(
                f"split {fragment!r} at {report.split_path} ∈"
                f" {report.split_values} → {name_a!r} ({len(part_a)} docs"
                f" on {target_sites[0]!r}) + {name_b!r} ({len(part_b)} docs"
                f" on {target_sites[1]!r})"
            )
            report.elapsed_seconds = time.perf_counter() - started
            return report

    def move(
        self, collection: str, fragment: str, target_site: str
    ) -> MigrationReport:
        """Re-place a fragment's primary on another site (any kind).

        When the target already holds a replica, the move degenerates to
        a *promotion* — the catalog reorders the allocation list, no
        data travels.
        """
        with self._lock:
            started = time.perf_counter()
            design, parent, primary = self._locate(collection, fragment)
            self.cluster.site(target_site)  # must exist
            replicas = self.catalog.replicas(collection, fragment)
            existing = next(
                (r for r in replicas if r.site == target_site), None
            )
            version = self.catalog.version
            report = MigrationReport(
                kind="move",
                collection=collection,
                fragment=fragment,
                new_fragments=[fragment],
                target_sites=[target_site],
                catalog_version_before=version,
            )
            if existing is not None:
                if existing is replicas[0]:
                    raise RebalanceError(
                        f"fragment {fragment!r} is already primary on"
                        f" {target_site!r}"
                    )
                report.kind = "promote"
                new_replicas = [existing] + [
                    r for r in replicas if r is not existing
                ]
                report.notes.append(
                    f"{target_site!r} already holds a replica; promoted it"
                    " to primary without copying data"
                )
            else:
                documents = self._stored_documents(primary)
                stored_name = f"{fragment}__v{version}"
                self._store_raw(
                    collection,
                    fragment,
                    stored_name,
                    documents,
                    target_site,
                    report,
                )
                new_replicas = [
                    FragmentAllocation(
                        fragment=fragment,
                        site=target_site,
                        stored_collection=stored_name,
                        hybrid_mode=primary.hybrid_mode,
                    )
                ] + [r for r in replicas if r.site != target_site]
                report.notes.append(
                    f"copied {report.documents_moved} documents to"
                    f" {target_site!r} as {stored_name!r}; old copy on"
                    f" {primary.site!r} is no longer routed"
                )
            allocations = [
                allocation
                for item in design.fragments
                for allocation in (
                    new_replicas
                    if item.name == fragment
                    else self.catalog.replicas(collection, item.name)
                )
            ]
            self._swap(design, list(design.fragments), allocations, report)
            report.elapsed_seconds = time.perf_counter() - started
            return report

    def replicate(
        self, collection: str, fragment: str, target_site: str
    ) -> MigrationReport:
        """Add a replica of a fragment on another site."""
        with self._lock:
            started = time.perf_counter()
            design, parent, primary = self._locate(collection, fragment)
            self.cluster.site(target_site)  # must exist
            replicas = self.catalog.replicas(collection, fragment)
            if any(r.site == target_site for r in replicas):
                raise RebalanceError(
                    f"fragment {fragment!r} already has a replica on"
                    f" {target_site!r}"
                )
            version = self.catalog.version
            report = MigrationReport(
                kind="replicate",
                collection=collection,
                fragment=fragment,
                new_fragments=[fragment],
                target_sites=[target_site],
                catalog_version_before=version,
            )
            documents = self._stored_documents(primary)
            stored_name = f"{fragment}__r{version}"
            self._store_raw(
                collection, fragment, stored_name, documents, target_site, report
            )
            new_replicas = replicas + [
                FragmentAllocation(
                    fragment=fragment,
                    site=target_site,
                    stored_collection=stored_name,
                    hybrid_mode=primary.hybrid_mode,
                )
            ]
            allocations = [
                allocation
                for item in design.fragments
                for allocation in (
                    new_replicas
                    if item.name == fragment
                    else self.catalog.replicas(collection, item.name)
                )
            ]
            self._swap(design, list(design.fragments), allocations, report)
            report.elapsed_seconds = time.perf_counter() - started
            return report

    def merge(
        self,
        collection: str,
        fragment: str,
        fragment_b: str,
        target_site: Optional[str] = None,
    ) -> MigrationReport:
        """Fuse two cold horizontal siblings into one fragment."""
        with self._lock:
            started = time.perf_counter()
            design, parent_a, primary_a = self._locate(collection, fragment)
            _, parent_b, primary_b = self._locate(collection, fragment_b)
            if not isinstance(parent_a, HorizontalFragment) or not isinstance(
                parent_b, HorizontalFragment
            ):
                raise RebalanceError(
                    "merge only fuses horizontal fragments"
                    f" ({fragment!r} is {type(parent_a).__name__},"
                    f" {fragment_b!r} is {type(parent_b).__name__})"
                )
            if target_site is None:
                target_site = primary_a.site
            self.cluster.site(target_site)  # must exist
            version = self.catalog.version
            merged_name = f"{fragment}_m{version}"
            merged = HorizontalFragment(
                merged_name,
                collection,
                predicate=Or((parent_a.predicate, parent_b.predicate)),
            )
            report = MigrationReport(
                kind="merge",
                collection=collection,
                fragment=fragment,
                new_fragments=[merged_name],
                target_sites=[target_site],
                catalog_version_before=version,
                notes=[f"merging {fragment!r} + {fragment_b!r}"],
            )
            documents = self._stored_documents(primary_a) + (
                self._stored_documents(primary_b)
            )
            self._store_raw(
                collection, merged_name, merged_name, documents, target_site, report
            )
            fragments = []
            for item in design.fragments:
                if item.name == fragment:
                    fragments.append(merged)
                elif item.name != fragment_b:
                    fragments.append(item)
            allocations = [
                allocation
                for item in fragments
                if item.name != merged_name
                for allocation in self.catalog.replicas(collection, item.name)
            ] + [
                FragmentAllocation(
                    fragment=merged_name,
                    site=target_site,
                    stored_collection=merged_name,
                    hybrid_mode=primary_a.hybrid_mode,
                )
            ]
            self._swap(design, fragments, allocations, report)
            report.elapsed_seconds = time.perf_counter() - started
            return report

    # ------------------------------------------------------------------
    # Mechanics
    # ------------------------------------------------------------------
    def _locate(self, collection: str, fragment: str):
        """(design, fragment object, primary allocation) or RebalanceError."""
        try:
            design = self.catalog.fragmentation(collection)
            parent = design.fragment(fragment)
            primary = self.catalog.allocation(collection, fragment)
        except (CatalogError, FragmentationError) as exc:
            raise RebalanceError(str(exc)) from exc
        return design, parent, primary

    def _stored_documents(
        self, allocation: FragmentAllocation
    ) -> list["StoredDocument"]:
        """The fragment's serialized documents, read from its primary."""
        site = self.cluster.site(allocation.site)
        engine = getattr(site.driver, "engine", None)
        if engine is None:
            raise RebalanceError(
                f"cannot read fragment {allocation.fragment!r}: site"
                f" {allocation.site!r} has no local engine (remote-only"
                " drivers are not migratable)"
            )
        store = engine.store.collection(allocation.stored_collection)
        return [store.get(name) for name in store.names()]

    def _choose_boundary(
        self,
        documents: Sequence["StoredDocument"],
        parent: HorizontalFragment,
        path: Optional[str],
    ):
        """Pick (path, chosen values, part_a, part_b) splitting ``documents``.

        Only paths with exactly one value in *every* document qualify —
        that keeps each child's predicate exact for the documents it
        holds, which is what makes localization pruning safe.
        """
        parsed = [
            parse_xml(stored.data.decode("utf-8"), name=stored.name)
            for stored in documents
        ]
        candidates = (
            [path]
            if path is not None
            else self._candidate_paths(parent, parsed[0])
        )
        for candidate in candidates:
            values = []
            usable = True
            for document in parsed:
                nodes = evaluate_path(candidate, document)
                if len(nodes) != 1 or nodes[0].element_children():
                    usable = False
                    break
                values.append(nodes[0].text_value())
            if not usable:
                continue
            tally = Counter(values)
            if len(tally) < 2:
                continue
            # Greedy half-split: heaviest values first until ≥ half the
            # documents are covered, always leaving the other side
            # non-empty.
            chosen: list[str] = []
            covered = 0
            for value, count in tally.most_common():
                if chosen and covered + count > len(documents) - 1:
                    break
                chosen.append(value)
                covered += count
                if covered >= len(documents) / 2:
                    break
            chosen_set = set(chosen)
            part_a = [
                stored
                for stored, value in zip(documents, values)
                if value in chosen_set
            ]
            part_b = [
                stored
                for stored, value in zip(documents, values)
                if value not in chosen_set
            ]
            if part_a and part_b:
                return candidate, chosen, part_a, part_b
        return None

    def _candidate_paths(
        self, parent: HorizontalFragment, sample
    ) -> list[str]:
        """Boundary candidates: the fragment predicate's own equality
        paths first (known selectors), then leaf children of the root."""
        paths: list[str] = []
        for atom in _comparison_atoms(parent.predicate):
            text = str(atom.path)
            if text not in paths:
                paths.append(text)
        root = sample.root
        root_label = root.label or ""
        seen = set(paths)
        for child in root.element_children():
            if child.label is None or child.element_children():
                continue
            text = f"/{root_label}/{child.label}"
            if text not in seen:
                seen.add(text)
                paths.append(text)
        return paths

    def _least_loaded_site(
        self, collection: str, exclude: Sequence[str] = ()
    ) -> str:
        """The cluster site hosting the fewest primary fragments."""
        load: Counter = Counter()
        for name in self.catalog.fragmented_collections():
            design = self.catalog.fragmentation(name)
            for item in design.fragments:
                load[self.catalog.allocation(name, item.name).site] += 1
        candidates = [
            name
            for name in self.cluster.site_names()
            if name not in exclude
        ]
        if not candidates:
            raise RebalanceError(
                f"no target site available for {collection!r} outside"
                f" {list(exclude)!r}"
            )
        return min(candidates, key=lambda name: (load[name], name))

    def _store_fragment(
        self,
        collection: str,
        fragment_name: str,
        documents: Sequence["StoredDocument"],
        site_name: str,
        report: MigrationReport,
    ) -> None:
        self._store_raw(
            collection, fragment_name, fragment_name, documents, site_name, report
        )

    def _store_raw(
        self,
        collection: str,
        fragment_name: str,
        stored_name: str,
        documents: Sequence["StoredDocument"],
        site_name: str,
        report: MigrationReport,
    ) -> None:
        """Copy serialized documents to a site (and its TCP twin) and
        record the new replica's planner statistics."""
        site = self.cluster.site(site_name)
        driver = site.driver
        if getattr(driver, "engine", None) is not None and driver.engine.has_collection(
            stored_name
        ):
            raise RebalanceError(
                f"site {site_name!r} already stores a collection named"
                f" {stored_name!r}; refusing to overwrite"
            )
        driver.create_collection(stored_name)
        for stored in documents:
            driver.store_document(
                stored_name,
                stored.data.decode("utf-8"),
                name=stored.name,
                origin=stored.origin,
            )
        tcp = getattr(self.partix, "tcp", None)
        if tcp is not None:
            client = tcp.clients.get(site_name)
            if client is None:
                raise RebalanceError(
                    f"tcp mode is active but site {site_name!r} has no"
                    " server; cannot mirror the migrated fragment"
                )
            client.create_collection(stored_name)
            for stored in documents:
                client.store_document(
                    stored_name,
                    stored.data.decode("utf-8"),
                    name=stored.name,
                    origin=stored.origin,
                )
            report.notes.append(
                f"mirrored {stored_name!r} to the live tcp server of"
                f" {site_name!r}"
            )
        doc_count, data_bytes = driver.collection_statistics(stored_name)
        self.catalog.record_statistics(
            collection, fragment_name, site_name, doc_count, data_bytes
        )
        report.documents_moved += doc_count
        report.bytes_moved += data_bytes

    def _swap(
        self,
        design: FragmentationSchema,
        fragments,
        allocations,
        report: MigrationReport,
    ) -> None:
        """Step 3: atomically install the new design (version bump)."""
        schema = FragmentationSchema(
            design.collection,
            fragments,
            root_label=design.root_label,
            schema=design.schema,
            root_type=design.root_type,
        )
        self.catalog.register_fragmentation(
            schema, allocations, replace=True
        )
        report.catalog_version_after = self.catalog.version
        report.completed = True


# ----------------------------------------------------------------------
def _conjoin(base: Optional[Predicate], extra: Predicate) -> Predicate:
    """``base ∧ extra`` with flat And nesting (readable EXPLAIN output)."""
    if base is None:
        return extra
    base_parts = base.parts if isinstance(base, And) else (base,)
    extra_parts = extra.parts if isinstance(extra, And) else (extra,)
    return And(tuple(base_parts) + tuple(extra_parts))


def _comparison_atoms(predicate: Optional[Predicate]) -> list[Comparison]:
    """Every =/≠ comparison inside a predicate tree (boundary hints)."""
    if predicate is None:
        return []
    if isinstance(predicate, Comparison) and predicate.op in ("=", "!="):
        return [predicate]
    if isinstance(predicate, (And, Or)):
        atoms: list[Comparison] = []
        for part in predicate.parts:
            atoms.extend(_comparison_atoms(part))
        return atoms
    return []
