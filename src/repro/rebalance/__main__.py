"""``python -m repro.rebalance`` — drive the rebalancer from the CLI.

Three subcommands against a running coordinator (start one with
``python -m repro.coordinate``), plus a self-contained demo::

    python -m repro.rebalance advise --port 7400
    python -m repro.rebalance advise --port 7400 --collection Citems --top 3
    python -m repro.rebalance apply  --port 7400 --collection Citems
    python -m repro.rebalance apply  --port 7400 --action '{"kind": "move", ...}'
    python -m repro.rebalance demo

``advise`` prints the workload advisor's ranked
:class:`~repro.partix.advisor.RebalanceAction`\\ s mined from the
coordinator's query log; ``apply`` performs one online (the top-ranked
action when ``--action`` is omitted) and prints the migration report;
``demo`` runs the ``--figure rebalance`` benchmark end to end — hot
fragment, closed-loop traffic, advised split, before/after p95.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.coordinate.client import CoordinatorClient


def _client(args) -> CoordinatorClient:
    return CoordinatorClient(args.host, args.port, site="coordinator")


def _print_action(rank: int, action: dict) -> None:
    targets = ", ".join(action["target_sites"]) or "-"
    print(
        f"  #{rank} {action['kind']:<9} {action['fragment']:<12}"
        f" -> {targets:<16} score={action['score']:+.4f}s"
    )
    print(f"      {action['rationale']}")


def _advise(args) -> int:
    client = _client(args)
    try:
        reply = client.advise(collection=args.collection, top=args.top)
    finally:
        client.close()
    log = reply["query_log"]
    print(
        f"query log: {log['entries']} entries"
        f" ({log['distinct_queries']} distinct queries),"
        f" catalog version {reply['catalog_version']}"
    )
    if not reply["actions"]:
        print("no rebalance actions (empty log or nothing to gain)")
        return 1
    for rank, action in enumerate(reply["actions"], start=1):
        _print_action(rank, action)
    if args.json:
        print(json.dumps(reply, indent=2))
    return 0


def _apply(args) -> int:
    action = json.loads(args.action) if args.action else None
    client = _client(args)
    try:
        reply = client.rebalance(
            collection=args.collection,
            action=action,
            read_timeout=args.timeout,
        )
    finally:
        client.close()
    report = reply["report"]
    applied = reply["action"]
    print(f"applied {applied['kind']} of {applied['fragment']!r}:")
    print(
        f"  {report['documents_moved']} documents"
        f" ({report['bytes_moved']} bytes) -> {report['target_sites']}"
        f" in {report['elapsed_seconds']:.3f}s"
    )
    if report["split_path"]:
        print(
            f"  boundary: {report['split_path']} in"
            f" {report['split_values']} -> {report['new_fragments']}"
        )
    print(
        f"  catalog version {report['catalog_version_before']}"
        f" -> {report['catalog_version_after']}"
    )
    for note in report["notes"]:
        print(f"  note: {note}")
    if args.json:
        print(json.dumps(reply, indent=2))
    return 0 if report["completed"] else 1


def _demo(args) -> int:
    from repro.bench.rebalance import run_rebalance

    run_rebalance(
        scale=args.scale, repetitions=args.repetitions, transmission="model"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rebalance",
        description="online fragment rebalancing + workload advisor",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    advise = commands.add_parser(
        "advise", help="print the advisor's ranked rebalance actions"
    )
    apply_ = commands.add_parser(
        "apply", help="apply one rebalance action online"
    )
    for sub in (advise, apply_):
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, default=7400)
        sub.add_argument(
            "--collection",
            default=None,
            help="restrict to one collection (default: all logged)",
        )
        sub.add_argument(
            "--json", action="store_true", help="also dump the raw payload"
        )
    advise.add_argument(
        "--top", type=int, default=5, help="how many actions to show"
    )
    advise.set_defaults(run=_advise)
    apply_.add_argument(
        "--action",
        default=None,
        help="explicit RebalanceAction as JSON (default: advisor's top pick)",
    )
    apply_.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the migration",
    )
    apply_.set_defaults(run=_apply)

    demo = commands.add_parser(
        "demo", help="run the --figure rebalance benchmark end to end"
    )
    demo.add_argument("--scale", type=float, default=0.002)
    demo.add_argument("--repetitions", type=int, default=1)
    demo.set_defaults(run=_demo)

    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
