"""PartiX reproduction: XML query processing over fragmented repositories.

Reproduces Andrade, Ruberg, Baiao, Braganholo & Mattoso, *Efficiently
Processing XML Queries over Fragmented Repositories with PartiX* (EDBT
2006 workshops). See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quickstart::

    from repro.cluster import Cluster
    from repro.partix import Partix, FragmentationSchema, HorizontalFragment
    from repro.paths import eq, ne
    from repro.workloads import build_items_collection

    items = build_items_collection(100)
    cluster = Cluster.with_sites(2)
    partix = Partix(cluster)
    partix.publish(items, FragmentationSchema("Citems", [
        HorizontalFragment("F1", "Citems", predicate=eq("/Item/Section", "CD")),
        HorizontalFragment("F2", "Citems", predicate=ne("/Item/Section", "CD")),
    ], root_label="Item"), verify=True)
    result = partix.execute(
        'for $i in collection("Citems")/Item'
        ' where $i/Section = "CD" return $i/Name/text()'
    )
    print(result.result_text)
"""

__version__ = "1.0.0"
