"""Admission control: bounded concurrency, bounded queue, typed shedding.

The coordinator holds at most ``max_active`` queries in execution; the
next ``queue_limit`` wait their turn; anything beyond that is *shed*
immediately with :class:`~repro.errors.AdmissionRejected` — an
overloaded coordinator answers "try later" in microseconds instead of
letting latency collapse for everyone (the classic bounded-queue
load-shedding policy).

:class:`AdmissionController` is pure synchronous accounting over opaque
*waiter* tokens, so it is directly unit-testable without an event loop;
the asyncio service enqueues ``Future`` objects and completes whichever
token :meth:`finish` hands back.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from repro.errors import AdmissionRejected


class AdmissionController:
    """Slot accounting for a bounded-concurrency, bounded-queue server."""

    def __init__(self, max_active: int = 8, queue_limit: int = 32):
        if max_active < 1:
            raise ValueError("max_active must be at least 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        self.max_active = max_active
        self.queue_limit = queue_limit
        self._lock = threading.Lock()
        self._active = 0
        self._queue: deque = deque()
        self.admitted = 0
        self.shed = 0
        self.peak_active = 0
        self.peak_queued = 0

    # ------------------------------------------------------------------
    def try_start(self) -> bool:
        """Claim an execution slot if one is free (no queueing)."""
        with self._lock:
            if self._active < self.max_active:
                self._active += 1
                self.admitted += 1
                self.peak_active = max(self.peak_active, self._active)
                return True
            return False

    def enqueue(self, waiter) -> None:
        """Park ``waiter`` until a slot frees up.

        Raises :class:`AdmissionRejected` — the typed load-shedding
        signal — when the waiting queue is already full.
        """
        with self._lock:
            if len(self._queue) >= self.queue_limit:
                self.shed += 1
                raise AdmissionRejected(
                    f"coordinator overloaded: {self._active} quer"
                    f"{'y' if self._active == 1 else 'ies'} active and"
                    f" {len(self._queue)} waiting (queue limit"
                    f" {self.queue_limit}); retry later"
                )
            self._queue.append(waiter)
            self.peak_queued = max(self.peak_queued, len(self._queue))

    def abandon(self, waiter) -> bool:
        """Remove a parked waiter (its deadline expired while queued).

        False means the waiter was already promoted to a slot — the
        caller then owns that slot and must :meth:`finish` it.
        """
        with self._lock:
            try:
                self._queue.remove(waiter)
            except ValueError:
                return False
            return True

    def finish(self) -> Optional[object]:
        """Release one execution slot.

        If a waiter is parked, the slot transfers to it: the oldest
        waiter is returned (for the caller to wake) and stays counted as
        active. Otherwise the active count drops and None is returned.
        """
        with self._lock:
            if self._queue:
                waiter = self._queue.popleft()
                self.admitted += 1
                return waiter
            self._active -= 1
            return None

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "max_active": self.max_active,
                "queue_limit": self.queue_limit,
                "active": self._active,
                "queued": len(self._queue),
                "admitted": self.admitted,
                "shed": self.shed,
                "peak_active": self.peak_active,
                "peak_queued": self.peak_queued,
            }
