"""The multi-tenant coordinator service (``python -m repro.coordinate``).

* :mod:`repro.coordinate.service` — the asyncio reactor serving
  concurrent QUERY frames over one Partix middleware.
* :mod:`repro.coordinate.admission` — bounded-concurrency /
  bounded-queue admission control with typed load shedding.
* :mod:`repro.coordinate.client` — pooled client speaking the QUERY
  round trip.
* :mod:`repro.coordinate.traffic` — closed-loop traffic generator with
  byte-for-byte answer verification (the serving bench's load source).
"""

from repro.coordinate.admission import AdmissionController
from repro.coordinate.client import CoordinatorClient
from repro.coordinate.service import Coordinator
from repro.coordinate.traffic import TrafficReport, WorkloadQuery, run_traffic

__all__ = [
    "AdmissionController",
    "Coordinator",
    "CoordinatorClient",
    "TrafficReport",
    "WorkloadQuery",
    "run_traffic",
]
