"""``python -m repro.coordinate`` — run the multi-tenant coordinator.

Stands up a demo fragmented repository (the ItemsSHor scenario of the
bench suite), then serves concurrent client queries over the frame
protocol::

    python -m repro.coordinate --port 7400
    python -m repro.coordinate --port 0 --max-active 16 --queue-limit 64
    python -m repro.coordinate --mode simulated --deadline 5.0

The coordinator announces ``coordinator listening on HOST:PORT`` on
stdout, answers QUERY frames (see :mod:`repro.net.protocol`), and drains
gracefully on SIGTERM/SIGINT or a SHUTDOWN frame. Clients connect with
:class:`repro.coordinate.CoordinatorClient`.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.coordinate.service import Coordinator


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.coordinate",
        description="PartiX multi-tenant coordinator over a demo repository",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7400, help="0 picks a free port"
    )
    parser.add_argument(
        "--mode",
        default="threads",
        choices=["simulated", "threads"],
        help="execution mode for served queries",
    )
    parser.add_argument(
        "--max-active", type=int, default=8, help="concurrent query slots"
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="admission queue depth before shedding",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-query deadline in seconds",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="demo corpus scale factor (bench scaling)",
    )
    parser.add_argument(
        "--fragments", type=int, default=4, help="demo fragment count"
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        help="per-site worker pool for intra-site sharded scans (0 = serial)",
    )
    args = parser.parse_args(argv)

    from repro.bench.scenarios import build_items_scenario

    print("building demo repository...", flush=True)
    scenario = build_items_scenario(
        "small",
        paper_mb=1,
        fragment_count=args.fragments,
        scale=args.scale,
        shard_workers=args.shard_workers,
    )
    coordinator = Coordinator(
        scenario.partix,
        execution_mode=args.mode,
        host=args.host,
        port=args.port,
        max_active=args.max_active,
        queue_limit=args.queue_limit,
        default_deadline_seconds=args.deadline,
    )
    coordinator.serve_in_thread()
    print(
        f"coordinator listening on {coordinator.host}:{coordinator.port}"
        f" (collection {scenario.collection_name!r},"
        f" {args.fragments} fragments, mode {args.mode})",
        flush=True,
    )

    def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
        coordinator.request_shutdown()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        coordinator.serve_forever()
    finally:
        clean = coordinator.close()
        print(
            f"coordinator drained {'cleanly' if clean else 'WITH STRAGGLERS'}",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
