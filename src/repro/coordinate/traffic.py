"""Closed-loop traffic generator for the coordinator service.

``run_traffic`` drives N client threads against one coordinator; each
thread owns a :class:`CoordinatorClient` (and therefore its own small
connection pool), picks queries from the workload with a seeded RNG, and
issues the next request the moment the previous answer lands — the
classic closed-loop load model, so offered load scales with the number
of clients, not a target rate. Every answer is checked byte-for-byte
against its expected text: the bench reports *verified* throughput, and
a single wrong byte under concurrency fails the figure.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import AdmissionRejected, QueryDeadlineExceeded
from repro.coordinate.client import CoordinatorClient


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload entry: the query and the answer it must produce."""

    qid: str
    text: str
    expected_text: str
    collection: Optional[str] = None


@dataclass
class TrafficReport:
    """What the generator measured, ready for a bench payload."""

    clients: int
    requests_per_client: int
    ok: int = 0
    incorrect: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    latencies_seconds: list = field(default_factory=list)
    error_messages: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.ok + self.incorrect + self.shed + self.deadline_exceeded + self.errors

    @property
    def qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.ok / self.wall_seconds

    def percentile(self, p: float) -> Optional[float]:
        """Latency percentile over *successful* requests, in seconds."""
        if not self.latencies_seconds:
            return None
        ordered = sorted(self.latencies_seconds)
        index = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        return ordered[index]

    def as_payload(self) -> dict:
        def _ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else value * 1000.0

        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "total": self.total,
            "ok": self.ok,
            "incorrect": self.incorrect,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "qps": self.qps,
            "p50_ms": _ms(self.percentile(50)),
            "p95_ms": _ms(self.percentile(95)),
            "p99_ms": _ms(self.percentile(99)),
        }


def run_traffic(
    host: str,
    port: int,
    workload: Sequence[WorkloadQuery],
    clients: int = 8,
    requests_per_client: int = 10,
    seed: int = 0,
    deadline_seconds: Optional[float] = None,
    read_timeout: Optional[float] = 60.0,
) -> TrafficReport:
    """Drive ``clients`` closed-loop threads; return the merged report."""
    if not workload:
        raise ValueError("workload must contain at least one query")
    report = TrafficReport(clients=clients, requests_per_client=requests_per_client)
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def _client(index: int) -> None:
        rng = random.Random(seed * 7919 + index)
        client = CoordinatorClient(host, port, site=f"traffic-{index}")
        barrier.wait()
        try:
            for _ in range(requests_per_client):
                entry = rng.choice(workload)
                started = time.perf_counter()
                try:
                    reply = client.query(
                        entry.text,
                        collection=entry.collection,
                        deadline_seconds=deadline_seconds,
                        read_timeout=read_timeout,
                    )
                except AdmissionRejected:
                    with lock:
                        report.shed += 1
                    continue
                except QueryDeadlineExceeded:
                    with lock:
                        report.deadline_exceeded += 1
                    continue
                except Exception as exc:  # noqa: BLE001 - tallied, not fatal
                    with lock:
                        report.errors += 1
                        if len(report.error_messages) < 10:
                            report.error_messages.append(
                                f"{entry.qid}: {type(exc).__name__}: {exc}"
                            )
                    continue
                latency = time.perf_counter() - started
                with lock:
                    if reply.get("result_text") == entry.expected_text:
                        report.ok += 1
                        report.latencies_seconds.append(latency)
                    else:
                        report.incorrect += 1
                        if len(report.error_messages) < 10:
                            report.error_messages.append(
                                f"{entry.qid}: answer mismatch"
                                f" ({reply.get('result_bytes')} bytes)"
                            )
        finally:
            client.close()

    threads = [
        threading.Thread(target=_client, args=(i,), name=f"traffic-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    return report
