"""Client for the coordinator service.

:class:`CoordinatorClient` reuses the :class:`~repro.net.client.SiteClient`
connection pool and handshake — the coordinator speaks the same frame
protocol as a site server — and adds the QUERY round trip: a
QUERY_RESULT answer returns the serving payload, a QUERY_ERROR raises
the coordinator's typed exception
(:class:`~repro.errors.AdmissionRejected` for a shed query,
:class:`~repro.errors.QueryDeadlineExceeded` for an expired deadline,
and so on) rebuilt by class name exactly as site ERROR frames are.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.errors import ProtocolError, TransportError, TransportTimeout
from repro.net.client import SiteClient
from repro.net.protocol import (
    Frame,
    FrameType,
    payload_to_exception,
    recv_frame,
    send_frame,
)


class CoordinatorClient(SiteClient):
    """Pooled connections to one coordinator."""

    def query(
        self,
        query: str,
        collection: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ) -> dict:
        """Run one query through the coordinator.

        Returns the QUERY_RESULT payload (``result_text``,
        ``result_bytes``, timing and failover stats). QUERY_ERROR
        replies raise their mapped exception.
        """
        payload: dict = {"query": query}
        if collection is not None:
            payload["collection"] = collection
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        reply, _, _ = self.request(FrameType.QUERY, payload, read_timeout)
        if reply.type is FrameType.QUERY_ERROR:
            raise payload_to_exception(reply.payload)
        if reply.type is not FrameType.QUERY_RESULT:
            raise TransportError(f"QUERY answered with {reply.type.name}")
        return reply.payload

    def query_stream(
        self,
        query: str,
        collection: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        on_chunk=None,
        read_timeout: Optional[float] = None,
    ) -> dict:
        """Run one query with a streamed answer.

        ``on_chunk`` receives each RESULT_CHUNK's raw bytes; their
        concatenation is the UTF-8 answer. Returns the closing
        QUERY_RESULT payload, with ``result_text`` assembled from the
        chunks for convenience.
        """
        payload: dict = {"query": query, "stream": True}
        if collection is not None:
            payload["collection"] = collection
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        rid = self._next_request_id()
        sock = self._borrow()
        timeout = read_timeout if read_timeout is not None else self.read_timeout
        chunks: list[bytes] = []
        received_total = 0
        try:
            sock.settimeout(timeout)
            sent = send_frame(
                sock, Frame(type=FrameType.QUERY, request_id=rid, payload=payload)
            )
            while True:
                reply, received = recv_frame(sock)
                received_total += received
                if reply.request_id != rid:
                    sock.close()
                    raise TransportError(
                        f"coordinator answered request {reply.request_id},"
                        f" expected {rid} — stream desynchronized"
                    )
                if reply.type is FrameType.RESULT_CHUNK:
                    chunks.append(reply.raw)
                    if on_chunk is not None:
                        on_chunk(reply.raw)
                elif reply.type is FrameType.QUERY_RESULT:
                    break
                elif reply.type is FrameType.QUERY_ERROR:
                    self._repool(sock)
                    self._count(sent, received_total)
                    raise payload_to_exception(reply.payload)
                else:
                    sock.close()
                    raise TransportError(
                        f"streamed QUERY answered with {reply.type.name}"
                    )
        except socket.timeout as exc:
            sock.close()
            raise TransportTimeout(
                f"coordinator did not answer a streamed QUERY within"
                f" {timeout:.3f}s"
            ) from exc
        except (OSError, ProtocolError) as exc:
            sock.close()
            raise TransportError(
                f"streamed QUERY truncated before QUERY_RESULT: {exc}"
            ) from exc
        self._repool(sock)
        self._count(sent, received_total)
        with self._lock:
            self.requests += 1
        result = dict(reply.payload)
        result["result_text"] = b"".join(chunks).decode("utf-8")
        return result

    def coordinator_stats(self, read_timeout: Optional[float] = 5.0) -> dict:
        """The coordinator's serving stats (admission, plan cache, pools)."""
        return self.ping(read_timeout=read_timeout)

    def advise(
        self,
        collection: Optional[str] = None,
        top: int = 5,
        read_timeout: Optional[float] = None,
    ) -> dict:
        """Ask the workload advisor for ranked rebalance actions.

        Returns ``{"actions": [...], "catalog_version", "query_log"}``;
        each action dict round-trips through
        :meth:`repro.partix.advisor.RebalanceAction.from_dict`.
        """
        payload: dict = {"top": top}
        if collection is not None:
            payload["collection"] = collection
        reply, _, _ = self.call(FrameType.ADVISE, payload, read_timeout)
        if reply.type is not FrameType.OK:
            raise TransportError(f"ADVISE answered with {reply.type.name}")
        return reply.payload

    def rebalance(
        self,
        collection: Optional[str] = None,
        action: Optional[dict] = None,
        read_timeout: Optional[float] = None,
    ) -> dict:
        """Apply one rebalance action online (the advisor's top pick when
        ``action`` is None). Returns ``{"action", "report",
        "catalog_version"}``; failures raise the coordinator's typed
        exception (e.g. :class:`~repro.errors.RebalanceError`)."""
        payload: dict = {}
        if collection is not None:
            payload["collection"] = collection
        if action is not None:
            payload["action"] = action
        reply, _, _ = self.call(FrameType.REBALANCE, payload, read_timeout)
        if reply.type is not FrameType.OK:
            raise TransportError(f"REBALANCE answered with {reply.type.name}")
        return reply.payload
