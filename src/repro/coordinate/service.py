"""The multi-tenant coordinator service: an asyncio reactor over PartiX.

One :class:`Coordinator` accepts many concurrent client connections
speaking the frame protocol of :mod:`repro.net.protocol` and multiplexes
their QUERY frames onto one :class:`~repro.partix.middleware.Partix`
instance:

* **Reactor** — connections are asyncio streams; reading frames never
  blocks a thread, so thousands of connections can be held open. Each
  QUERY becomes its own asyncio task: a slow query never head-of-line
  blocks other queries, even on the *same* connection (replies carry the
  request id they answer, and may interleave).
* **Bounded execution** — the blocking ``Partix.execute`` runs on a
  thread pool of exactly ``max_active`` workers, gated by the
  :class:`~repro.coordinate.admission.AdmissionController`: at most
  ``max_active`` queries execute, ``queue_limit`` wait, the rest are
  shed with a typed :class:`~repro.errors.AdmissionRejected` carried by
  a QUERY_ERROR frame (``"shed": true``).
* **Plan cache** — the middleware's :class:`~repro.plan.cache.PlanCache`
  (installed by the coordinator when absent) lets repeat queries skip
  decompose; keyed on the catalog version, so a republish invalidates
  stale plans, and hits re-lower against live site health.
* **Deadlines** — a query's ``deadline_seconds`` budget starts at
  arrival: admission wait draws it down, the remainder is handed to the
  dispatcher as the round's shared retry budget
  (``Partix.execute(deadline_seconds=...)``), and an expired budget
  surfaces as :class:`~repro.errors.QueryDeadlineExceeded`.
* **Shared site pools** — in tcp mode every query runs over the one
  ``TcpSiteCluster`` client-pool set; pool reuse shows up in the serving
  stats (``connections_created`` stays near the pool size).

Shutdown closes the *listener* first, then drains in-flight queries,
then closes the remaining connections — mirroring the site server's
drain contract.
"""

from __future__ import annotations

import asyncio
import threading
import time
from functools import partial
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.errors import (
    AdmissionRejected,
    CoordinatorError,
    DispatchError,
    QueryDeadlineExceeded,
    RebalanceError,
)
from repro.net.protocol import (
    DEFAULT_CHUNK_BYTES,
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    exception_to_payload,
    negotiate_chunk_bytes,
    read_frame_async,
)
from repro.coordinate.admission import AdmissionController
from repro.partix.advisor import RebalanceAction, WorkloadAdvisor
from repro.partix.middleware import Partix, PartixResult
from repro.plan.cache import PlanCache
from repro.rebalance import QueryLog, Rebalancer


def _query_result_payload(result: PartixResult, elapsed: float) -> dict:
    """QUERY_RESULT payload (without the text — added unless streaming)."""
    return {
        "result_bytes": result.result_bytes,
        "elapsed_seconds": elapsed,
        "subqueries": len(result.round.executions),
        "failover_count": result.failover_count,
        "notes": list(result.notes),
    }


class Coordinator:
    """Serve concurrent client queries over one Partix middleware."""

    def __init__(
        self,
        partix: Partix,
        execution_mode: str = "threads",
        host: str = "127.0.0.1",
        port: int = 0,
        max_active: int = 8,
        queue_limit: int = 32,
        default_deadline_seconds: Optional[float] = None,
        plan_cache: Optional[PlanCache] = None,
        site: str = "coordinator",
        query_log: Optional[QueryLog] = None,
    ):
        self.partix = partix
        self.execution_mode = execution_mode
        self.site = site
        self._host = host
        self._port = port
        self.default_deadline_seconds = default_deadline_seconds
        self.admission = AdmissionController(
            max_active=max_active, queue_limit=queue_limit
        )
        if plan_cache is None:
            plan_cache = (
                partix.plan_cache if partix.plan_cache is not None else PlanCache()
            )
        self.plan_cache = plan_cache
        # Share the cache with the middleware so every served query
        # (and any in-process caller) plans through it.
        partix.plan_cache = plan_cache
        #: Workload memory for the rebalancing advisor: every successful
        #: query records which fragments it scanned where and how long
        #: each lane took (see ``repro.rebalance``).
        self.query_log = query_log if query_log is not None else QueryLog()
        self.rebalancer = Rebalancer(partix)
        self._pool = ThreadPoolExecutor(
            max_workers=max_active, thread_name_prefix="partix-coordinate"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._draining = False
        self._query_tasks: set = set()
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        # Serving counters (touched on the loop thread only).
        self._queries_served = 0
        self._query_errors = 0
        self._bytes_in = 0
        self._bytes_out = 0
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _main(self) -> None:
        self._stopping = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._on_connection, self._host, self._port
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        self._ready.set()
        await self._stopping.wait()
        # Drain order: listener first — no new connection can arrive
        # while we wait for work already accepted.
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        while self._query_tasks:
            await asyncio.gather(
                *list(self._query_tasks), return_exceptions=True
            )
        # Closing each connection's transport feeds its reader EOF, so
        # every handler falls out of read_frame_async and returns on its
        # own — no task cancellation, no CancelledError noise.
        for writer in list(self._conn_writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._main())
        except BaseException:
            if self._startup_error is None:
                raise
        finally:
            loop.close()

    def serve_in_thread(self) -> "Coordinator":
        """Start serving on a background thread; returns once listening."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name=f"coordinator-{self.site}"
        )
        self._thread.start()
        self._ready.wait(timeout=15.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise CoordinatorError(
                f"coordinator failed to start: {self._startup_error}"
            )
        if not self._ready.is_set():
            raise CoordinatorError("coordinator did not start listening")
        return self

    def close(self) -> bool:
        """Stop the listener, drain in-flight queries, join the thread.

        Returns True when the drain completed cleanly.
        """
        if self._thread is None:
            self._pool.shutdown(wait=False)
            return True
        assert self._loop is not None and self._stopping is not None
        try:
            self._loop.call_soon_threadsafe(self._stopping.set)
        except RuntimeError:
            pass  # loop already gone
        self._thread.join(timeout=30.0)
        clean = not self._thread.is_alive()
        self._thread = None
        self._pool.shutdown(wait=True)
        return clean

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI path)."""
        self.serve_in_thread()
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def request_shutdown(self) -> None:
        """Begin the drain (idempotent, safe from any thread)."""
        if self._loop is None or self._stopping is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stopping.set)
        except RuntimeError:
            pass

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        payload = {
            "site": self.site,
            "execution_mode": self.execution_mode,
            "shard_workers": self.partix.shard_workers,
            "queries_served": self._queries_served,
            "query_errors": self._query_errors,
            "bytes_received": self._bytes_in,
            "bytes_sent": self._bytes_out,
            "uptime_seconds": time.perf_counter() - self._started,
            "admission": self.admission.snapshot(),
            "plan_cache": self.plan_cache.stats(),
            "query_log": self.query_log.stats_payload(),
        }
        tcp = getattr(self.partix, "_tcp", None)
        if tcp is not None:
            payload["site_pools"] = [
                client.pool_stats() for client in tcp.clients.values()
            ]
        return payload

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        chunk_bytes = DEFAULT_CHUNK_BYTES
        try:
            hello = await self._handshake(reader, writer, write_lock)
            if hello is None:
                return
            chunk_bytes = hello
            while True:
                try:
                    frame, received = await read_frame_async(reader)
                except ProtocolError:
                    return  # disconnect (or garbage; either way: close)
                self._bytes_in += received
                if frame.type is FrameType.QUERY:
                    self._spawn_query(frame, writer, write_lock, chunk_bytes)
                elif frame.type is FrameType.ADVISE:
                    self._spawn_task(
                        self._serve_advise(frame, writer, write_lock)
                    )
                elif frame.type is FrameType.REBALANCE:
                    self._spawn_task(
                        self._serve_rebalance(frame, writer, write_lock)
                    )
                elif frame.type is FrameType.PING:
                    await self._send(
                        writer,
                        write_lock,
                        Frame(
                            type=FrameType.PONG,
                            request_id=frame.request_id,
                            payload=self.stats_payload(),
                        ),
                    )
                elif frame.type is FrameType.STATS:
                    await self._send(
                        writer,
                        write_lock,
                        Frame(
                            type=FrameType.OK,
                            request_id=frame.request_id,
                            payload=self.stats_payload(),
                        ),
                    )
                elif frame.type is FrameType.SHUTDOWN:
                    await self._send(
                        writer,
                        write_lock,
                        Frame(
                            type=FrameType.OK,
                            request_id=frame.request_id,
                            payload={"draining": True},
                        ),
                    )
                    self.request_shutdown()
                    return
                else:
                    await self._send(
                        writer,
                        write_lock,
                        Frame(
                            type=FrameType.ERROR,
                            request_id=frame.request_id,
                            payload={
                                "error_type": "ProtocolError",
                                "message": (
                                    f"unexpected frame type {frame.type.name}"
                                ),
                            },
                        ),
                    )
        except asyncio.CancelledError:
            raise
        except (OSError, ConnectionError):
            return
        finally:
            self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _handshake(self, reader, writer, write_lock) -> Optional[int]:
        """HELLO/WELCOME; returns the negotiated chunk size or None."""
        try:
            frame, received = await read_frame_async(reader)
        except ProtocolError:
            return None
        self._bytes_in += received
        if frame.type is not FrameType.HELLO:
            await self._send(
                writer,
                write_lock,
                Frame(
                    type=FrameType.REJECT,
                    request_id=frame.request_id,
                    payload={
                        "reason": f"expected HELLO, got {frame.type.name}"
                    },
                ),
            )
            return None
        version = frame.payload.get("version", frame.version)
        if version != PROTOCOL_VERSION:
            await self._send(
                writer,
                write_lock,
                Frame(
                    type=FrameType.REJECT,
                    request_id=frame.request_id,
                    payload={
                        "reason": (
                            f"protocol version mismatch: coordinator speaks"
                            f" {PROTOCOL_VERSION}, client sent {version}"
                        )
                    },
                ),
            )
            return None
        chunk_bytes = DEFAULT_CHUNK_BYTES
        if "chunk_bytes" in frame.payload:
            chunk_bytes = negotiate_chunk_bytes(frame.payload["chunk_bytes"])
        await self._send(
            writer,
            write_lock,
            Frame(
                type=FrameType.WELCOME,
                request_id=frame.request_id,
                payload={
                    "version": PROTOCOL_VERSION,
                    "site": self.site,
                    "chunk_bytes": chunk_bytes,
                },
            ),
        )
        return chunk_bytes

    async def _send(self, writer, write_lock, frame: Frame) -> None:
        data = encode_frame(frame)
        async with write_lock:
            writer.write(data)
            await writer.drain()
        self._bytes_out += len(data)

    # ------------------------------------------------------------------
    # Query handling
    # ------------------------------------------------------------------
    def _spawn_query(self, frame, writer, write_lock, chunk_bytes) -> None:
        self._spawn_task(
            self._serve_query(frame, writer, write_lock, chunk_bytes)
        )

    def _spawn_task(self, coroutine) -> None:
        """Track a request task so the drain waits for it."""
        task = asyncio.ensure_future(coroutine)
        self._query_tasks.add(task)
        task.add_done_callback(self._query_tasks.discard)

    async def _serve_query(self, frame, writer, write_lock, chunk_bytes) -> None:
        rid = frame.request_id
        payload = frame.payload
        arrived = time.perf_counter()
        deadline = payload.get(
            "deadline_seconds", self.default_deadline_seconds
        )
        try:
            if self._draining:
                raise CoordinatorError("coordinator is draining; reconnect")
            query = payload["query"]
            result = await self._execute(payload, query, deadline, arrived)
        except Exception as exc:  # noqa: BLE001 - becomes a QUERY_ERROR
            self._query_errors += 1
            error_payload = exception_to_payload(exc)
            error_payload["shed"] = isinstance(exc, AdmissionRejected)
            await self._send(
                writer,
                write_lock,
                Frame(
                    type=FrameType.QUERY_ERROR,
                    request_id=rid,
                    payload=error_payload,
                ),
            )
            return
        elapsed = time.perf_counter() - arrived
        self._queries_served += 1
        catalog = self.partix.distribution_catalog
        self.query_log.record_result(
            query,
            payload.get("collection"),
            result,
            elapsed,
            catalog.version,
            catalog=catalog,
        )
        reply = _query_result_payload(result, elapsed)
        if payload.get("stream"):
            # Streamed reply: the answer travels as RESULT_CHUNK frames
            # (raw UTF-8 slices of the negotiated size), closed by a
            # QUERY_RESULT carrying only the stats.
            data = result.result_text.encode("utf-8")
            for start in range(0, len(data), chunk_bytes):
                await self._send(
                    writer,
                    write_lock,
                    Frame(
                        type=FrameType.RESULT_CHUNK,
                        request_id=rid,
                        raw=data[start:start + chunk_bytes],
                    ),
                )
        else:
            reply["result_text"] = result.result_text
        await self._send(
            writer,
            write_lock,
            Frame(type=FrameType.QUERY_RESULT, request_id=rid, payload=reply),
        )

    # ------------------------------------------------------------------
    # Rebalancing (ADVISE / REBALANCE frames)
    # ------------------------------------------------------------------
    def _advisor(self) -> WorkloadAdvisor:
        return WorkloadAdvisor(
            self.partix.distribution_catalog,
            self.partix.cost_model,
            self.query_log,
            self.partix.cluster.site_names(),
        )

    async def _serve_advise(self, frame, writer, write_lock) -> None:
        payload = frame.payload
        try:
            loop = asyncio.get_running_loop()
            actions = await loop.run_in_executor(
                self._pool,
                partial(
                    self._advisor().advise,
                    collection=payload.get("collection"),
                    top=int(payload.get("top", 5)),
                ),
            )
            reply = {
                "actions": [action.to_dict() for action in actions],
                "catalog_version": self.partix.distribution_catalog.version,
                "query_log": self.query_log.stats_payload(),
            }
        except Exception as exc:  # noqa: BLE001 - becomes an ERROR frame
            await self._send_error(writer, write_lock, frame.request_id, exc)
            return
        await self._send(
            writer,
            write_lock,
            Frame(type=FrameType.OK, request_id=frame.request_id, payload=reply),
        )

    async def _serve_rebalance(self, frame, writer, write_lock) -> None:
        try:
            if self._draining:
                raise CoordinatorError("coordinator is draining; reconnect")
            loop = asyncio.get_running_loop()
            reply = await loop.run_in_executor(
                self._pool, partial(self._apply_rebalance, frame.payload)
            )
        except Exception as exc:  # noqa: BLE001 - becomes an ERROR frame
            await self._send_error(writer, write_lock, frame.request_id, exc)
            return
        await self._send(
            writer,
            write_lock,
            Frame(type=FrameType.OK, request_id=frame.request_id, payload=reply),
        )

    def _apply_rebalance(self, payload: dict) -> dict:
        """Runs on the pool: pick (or decode) an action, migrate, report."""
        if payload.get("action"):
            action = RebalanceAction.from_dict(payload["action"])
        else:
            actions = self._advisor().advise(
                collection=payload.get("collection"), top=1
            )
            if not actions:
                raise RebalanceError(
                    "the advisor found no rebalance action to apply (is the"
                    " query log empty?)"
                )
            action = actions[0]
        report = self.rebalancer.apply(action)
        return {
            "action": action.to_dict(),
            "report": report.to_dict(),
            "catalog_version": self.partix.distribution_catalog.version,
        }

    async def _send_error(self, writer, write_lock, rid, exc) -> None:
        await self._send(
            writer,
            write_lock,
            Frame(
                type=FrameType.ERROR,
                request_id=rid,
                payload=exception_to_payload(exc),
            ),
        )

    async def _execute(
        self,
        payload: dict,
        query: str,
        deadline: Optional[float],
        arrived: float,
    ) -> PartixResult:
        """Admission gate + deadline accounting around Partix.execute."""
        if not self.admission.try_start():
            loop = asyncio.get_running_loop()
            waiter = loop.create_future()
            self.admission.enqueue(waiter)  # may raise AdmissionRejected
            remaining = None
            if deadline is not None:
                remaining = deadline - (time.perf_counter() - arrived)
            try:
                await asyncio.wait_for(waiter, timeout=remaining)
            except asyncio.TimeoutError:
                if not self.admission.abandon(waiter):
                    # Promoted concurrently with the timeout: the slot is
                    # ours to give back.
                    self._release_slot()
                raise QueryDeadlineExceeded(
                    f"deadline of {deadline:.3f}s expired after"
                    f" {time.perf_counter() - arrived:.3f}s in the"
                    " admission queue"
                ) from None
        try:
            budget = None
            if deadline is not None:
                budget = deadline - (time.perf_counter() - arrived)
                if budget <= 0:
                    raise QueryDeadlineExceeded(
                        f"deadline of {deadline:.3f}s expired before"
                        " dispatch could start"
                    )
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    self._pool,
                    partial(
                        self.partix.execute,
                        query,
                        collection=payload.get("collection"),
                        execution_mode=self.execution_mode,
                        deadline_seconds=budget,
                    ),
                )
            except DispatchError as exc:
                if (
                    budget is not None
                    and exc.failures
                    and all(f.timed_out for f in exc.failures)
                ):
                    raise QueryDeadlineExceeded(
                        f"deadline of {deadline:.3f}s expired during"
                        f" dispatch: {exc}"
                    ) from exc
                raise
        finally:
            self._release_slot()

    def _release_slot(self) -> None:
        """Free one slot; promote the oldest *live* queued waiter."""
        while True:
            waiter = self.admission.finish()
            if waiter is None:
                return
            if not waiter.done():
                waiter.set_result(None)
                return
            # The waiter timed out between promotion and wake-up; its
            # slot transfers to the next one (loop).
