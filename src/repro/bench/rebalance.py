"""The online-rebalancing benchmark (``--figure rebalance``).

The serving figure showed the coordinator under load; this one closes
the loop the ``repro.rebalance`` subsystem adds: **observe → advise →
migrate → measure**. A deliberately skewed Items deployment (two
fragments on two sites, two more sites idle) serves closed-loop traffic
in three phases:

1. **before** — traffic against the skewed placement; the coordinator's
   query log fills with per-lane observations and the bottleneck site
   saturates.
2. **during** — the workload advisor is asked over the wire (ADVISE) and
   its top action — splitting the hot fragment onto an idle site — is
   applied online (REBALANCE) *while the traffic keeps running*:
   in-flight queries finish against the old placement, the catalog
   version bump invalidates the plan cache, new queries lower against
   the new design.
3. **after** — traffic against the rebalanced placement.

Every answer in every phase is verified byte-for-byte against a serial
pre-computed baseline, so the latency bend is measured on *correct*
answers only; one incorrect answer fails the bench. The workload is
restricted to order-stable query classes (point lookups, per-section
selections, aggregates) because a horizontal split legitimately reorders
multi-fragment concatenations — the fuzz ``--migrate`` oracle covers
those with its line-multiset policy.

The JSON payload (``BENCH_rebalance.json`` in CI) records the migration
report, the catalog versions, per-phase p50/p95 latency and the verified
counts.
"""

from __future__ import annotations

import threading

from repro.bench.scale import items_count_for, scaled_point
from repro.bench.scenarios import PAPER_DOC_OVERHEAD
from repro.cluster.site import Cluster, Site
from repro.coordinate.client import CoordinatorClient
from repro.coordinate.service import Coordinator
from repro.coordinate.traffic import WorkloadQuery, run_traffic
from repro.partix.middleware import Partix
from repro.workloads.queries import items_queries
from repro.workloads.virtual_store import (
    build_items_collection,
    items_horizontal_fragmentation,
)

#: Closed-loop client threads per phase.
REBALANCE_CLIENTS = 8
#: Requests each client issues per phase.
REBALANCE_REQUESTS = 6
#: Order-stable query classes (see module docstring): point lookup,
#: single-section selections, and the two aggregates.
STABLE_QIDS = ("Q1", "Q2", "Q6", "Q7", "Q8")
#: Idle sites added to the skewed deployment — migration headroom.
IDLE_SITES = ("idle0", "idle1")


def run_rebalance(scale: float, repetitions: int, transmission: bool) -> dict:
    """Advised online split under live traffic, before/after latency.

    Built by hand rather than through ``build_items_scenario`` so the
    cluster carries *no* centralized baseline site — every site is a
    legitimate migration target for the advisor, and answer verification
    uses the serial simulated baseline instead.
    """
    point = scaled_point(100, scale)
    count = items_count_for(point.target_bytes, "small")
    collection = build_items_collection(count, kind="small", seed=42)
    cluster = Cluster.with_sites(
        2, use_indexes=False, per_document_overhead=PAPER_DOC_OVERHEAD
    )
    for name in IDLE_SITES:
        cluster.add(
            Site(
                name,
                use_indexes=False,
                per_document_overhead=PAPER_DOC_OVERHEAD,
            )
        )
    partix = Partix(cluster)
    partix.publish(
        collection, items_horizontal_fragmentation(2, collection=collection.name)
    )

    workload = []
    for query in items_queries(collection.name):
        if query.qid not in STABLE_QIDS:
            continue
        baseline = partix.execute(
            query.text,
            collection=collection.name,
            execution_mode="simulated",
        )
        workload.append(
            WorkloadQuery(
                qid=query.qid,
                text=query.text,
                expected_text=baseline.result_text,
                collection=collection.name,
            )
        )

    requests = REBALANCE_REQUESTS * max(1, repetitions)
    coordinator = Coordinator(
        partix,
        execution_mode="threads",
        max_active=8,
        queue_limit=64,
    )
    coordinator.serve_in_thread()
    control = None
    try:
        control = CoordinatorClient(
            coordinator.host, coordinator.port, site="rebalance-control"
        )

        def _phase(seed: int):
            return run_traffic(
                coordinator.host,
                coordinator.port,
                workload,
                clients=REBALANCE_CLIENTS,
                requests_per_client=requests,
                seed=seed,
            )

        before = _phase(seed=41)
        advice = control.advise(collection=collection.name)
        if not advice["actions"]:
            raise SystemExit(
                "rebalance bench: the advisor produced no action from"
                f" {advice['query_log']['entries']} logged queries"
            )

        # Apply the top action on a side thread so the 'during' phase
        # traffic genuinely overlaps the live migration.
        rebalance_reply: dict = {}
        rebalance_error: list = []

        def _apply() -> None:
            try:
                rebalance_reply.update(
                    control.rebalance(
                        collection=collection.name,
                        read_timeout=120.0,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - reported below
                rebalance_error.append(exc)

        migrator = threading.Thread(target=_apply, name="bench-rebalance")
        migrator.start()
        during = _phase(seed=42)
        migrator.join(timeout=180.0)
        if rebalance_error:
            raise SystemExit(
                f"rebalance bench: migration failed: {rebalance_error[0]}"
            )
        if not rebalance_reply:
            raise SystemExit("rebalance bench: migration never completed")

        after = _phase(seed=43)
        stats = coordinator.stats_payload()
    finally:
        if control is not None:
            control.close()
        clean = coordinator.close()

    report = rebalance_reply["report"]
    action = rebalance_reply["action"]
    phases = {"before": before, "during": during, "after": after}
    incorrect = sum(phase.incorrect for phase in phases.values())
    p95_before = before.as_payload()["p95_ms"]
    p95_after = after.as_payload()["p95_ms"]
    payload = {
        "figure": "rebalance",
        "scenario": collection.name,
        "fragment_count": 2,
        "document_count": count,
        "clean_shutdown": clean,
        "advised_action": action,
        "migration": report,
        "catalog_version_before": report["catalog_version_before"],
        "catalog_version_after": report["catalog_version_after"],
        "migration_completed": bool(report["completed"]),
        "incorrect_total": incorrect,
        "p95_improved": (
            p95_before is not None
            and p95_after is not None
            and p95_after < p95_before
        ),
        "query_log": stats["query_log"],
        "plan_cache": stats["plan_cache"],
        "phases": {
            name: phase.as_payload() for name, phase in phases.items()
        },
    }

    def _fmt(value, unit=" ms"):
        return "-" if value is None else f"{value:.2f}{unit}"

    print(
        f"rebalance figure — {collection.name} ({count} documents,"
        f" 2 fragments + {len(IDLE_SITES)} idle sites),"
        f" {REBALANCE_CLIENTS} closed-loop clients per phase"
    )
    print(
        f"  advised: {action['kind']} of {action['fragment']!r}"
        f" -> {action['target_sites']} (score {action['score']:+.4f}s)"
    )
    print(
        f"  migration: {report['documents_moved']} documents,"
        f" catalog v{report['catalog_version_before']}"
        f" -> v{report['catalog_version_after']},"
        f" {report['elapsed_seconds']:.3f}s"
        f" ({'completed' if report['completed'] else 'FAILED'})"
    )
    for name, phase in phases.items():
        phase_payload = phase.as_payload()
        print(
            f"  {name:<7} {phase.ok}/{phase.total} verified ok |"
            f" p50 {_fmt(phase_payload['p50_ms'])} |"
            f" p95 {_fmt(phase_payload['p95_ms'])} |"
            f" {phase.qps:.1f} qps"
        )
    print(
        f"  p95 {_fmt(p95_before)} -> {_fmt(p95_after)}"
        f" ({'improved' if payload['p95_improved'] else 'no improvement'})"
    )
    if incorrect:
        raise SystemExit(
            f"rebalance bench: {incorrect} answers diverged from the serial"
            " baseline across the migration"
        )
    if not report["completed"]:
        raise SystemExit("rebalance bench: the migration did not complete")
    return payload
