"""Plain-text tables mirroring the paper's Figure 7 panels."""

from __future__ import annotations

from typing import Sequence

from repro.bench.scenarios import (
    ModeComparisonRun,
    QueryRun,
    ScenarioResult,
    StreamingComparisonRun,
    TransportComparisonRun,
)

#: Wire-byte allowance per fragment for a pushed-down aggregate: one
#: scalar partial (RESULT_CHUNK) plus the RESULT_END stats payload and
#: frame headers. Far below any real result body, so the O(fragments)
#: regression check cannot pass by accident.
AGGREGATE_WIRE_BYTES_PER_FRAGMENT = 2048


def format_kv_table(title: str, rows: Sequence[tuple[str, object]]) -> str:
    """A titled, aligned label/value table (shared with the fuzz CLI)."""
    width = max((len(label) for label, _ in rows), default=0)
    lines = [title, "-" * len(title)]
    lines.extend(f"{label:<{width}}  {value}" for label, value in rows)
    return "\n".join(lines)


def format_mode_comparison(
    name: str, runs: list[ModeComparisonRun]
) -> str:
    """Simulated vs threads execution, one row per query.

    ``modelled`` is the paper-style simulated parallel time (slowest site
    + compose); the two wall columns are real machine time for the
    sequential loop vs the concurrent dispatcher.
    """
    header = f"{name} — simulated vs threads execution"
    lines = [header, "-" * len(header)]
    lines.append(
        f"{'query':<6} {'modelled':>10} {'seq-wall':>10} {'thr-wall':>10}"
        f" {'speedup':>8} {'subq':>5} {'match':>6}  description"
    )
    for run in runs:
        failover = (
            f" [failovers={run.failover_count}]" if run.failover_count else ""
        )
        lines.append(
            f"{run.qid:<6} {run.parallel_seconds * 1000:>8.1f}ms"
            f" {run.simulated_wall_seconds * 1000:>8.1f}ms"
            f" {run.threads_wall_seconds * 1000:>8.1f}ms"
            f" {run.wall_speedup:>7.2f}x {run.subqueries:>5}"
            f" {'ok' if run.byte_identical else 'DIFF':>6}"
            f"  {run.description}{failover}"
        )
    return "\n".join(lines)


def format_transport_comparison(
    name: str, runs: list[TransportComparisonRun]
) -> str:
    """Per-transport wall time and bytes-on-wire, one block per query.

    The in-process lanes report the payload bytes that *would* have
    traveled; the ``tcp`` lane ("wire") reports real framed socket bytes,
    printed next to the :class:`NetworkModel`'s transmission estimate so
    the model can be eyeballed against the measurement.
    """
    header = f"{name} — transport comparison (wall time and bytes)"
    lines = [header, "-" * len(header)]
    for run in runs:
        lines.append(
            f"{run.qid}: {run.description}"
            f" (subqueries={run.subqueries},"
            f" {'byte-identical' if run.byte_identical else 'ANSWERS DIFFER'},"
            f" est. transmission"
            f" {run.estimated_transmission_seconds * 1000:.2f}ms)"
        )
        for lane in run.lanes:
            kind = "wire" if lane.wire_measured else "payload"
            lines.append(
                f"  {lane.mode:<10} {lane.wall_seconds * 1000:>8.1f}ms"
                f"  sent {lane.bytes_sent:>8}B"
                f"  recv {lane.bytes_received:>8}B  ({kind})"
            )
    return "\n".join(lines)


def mode_comparison_payload(
    name: str, runs: list[ModeComparisonRun]
) -> dict:
    """JSON-able summary of a mode comparison (CI artifact).

    Each run carries ``lane_timings``: the planner's per-lane estimated
    seconds next to the measured seconds of both modes, joined on the
    plan-node identity, so estimate quality is a recorded artifact.
    """
    return {
        "figure": "modes",
        "scenario": name,
        "byte_identical": all(run.byte_identical for run in runs),
        "runs": [run.to_dict() for run in runs],
    }


def transport_comparison_payload(
    name: str, runs: list[TransportComparisonRun], modes: Sequence[str]
) -> dict:
    """JSON-able summary of a transport comparison (CI artifact)."""
    return {
        "figure": "transport",
        "scenario": name,
        "modes": list(modes),
        "byte_identical": all(run.byte_identical for run in runs),
        "runs": [run.to_dict() for run in runs],
    }


def format_streaming_comparison(
    name: str, runs: list[StreamingComparisonRun], chunk_bytes: int
) -> str:
    """Monolithic vs streamed execution, one block per query.

    Shows what the streaming pipeline buys: the coordinator's peak
    in-memory buffering (bounded by the spill threshold per lane, not by
    result size), time-to-first-chunk, and — for pushed-down aggregates —
    bytes-on-wire collapsing to one scalar per fragment.
    """
    header = f"{name} — monolithic vs streamed (chunk {chunk_bytes}B)"
    lines = [header, "-" * len(header)]
    for run in runs:
        composition = run.composition + (
            f"[{run.aggregate}]" if run.aggregate else ""
        )
        lines.append(
            f"{run.qid}: {run.description}"
            f" (subqueries={run.subqueries}, composition={composition},"
            f" {'byte-identical' if run.byte_identical else 'ANSWERS DIFFER'})"
        )
        for lane in run.lanes:
            extra = ""
            if lane.streamed:
                first = (
                    f"{lane.first_chunk_seconds * 1000:.1f}ms"
                    if lane.first_chunk_seconds is not None
                    else "n/a"
                )
                extra = (
                    f"  peak-buffer {lane.peak_buffered_bytes:>8}B"
                    f"  first-chunk {first}"
                )
            lines.append(
                f"  {lane.mode:<10} {lane.wall_seconds * 1000:>8.1f}ms"
                f"  recv {lane.bytes_received:>8}B{extra}"
            )
    return "\n".join(lines)


def streaming_comparison_payload(
    name: str,
    runs: list[StreamingComparisonRun],
    modes: Sequence[str],
    chunk_bytes: int,
) -> dict:
    """JSON-able summary of a streaming comparison (CI artifact).

    ``checks`` carries the two acceptance invariants so CI can assert on
    the artifact directly:

    * ``peak_buffer_bounded`` — every streamed lane's coordinator peak
      in-memory buffering stays within ``2 × chunk_bytes`` per active
      lane (a :class:`~repro.partix.composer.SpillBuffer` may hold up to
      threshold + one chunk before spilling to disk).
    * ``aggregate_wire_o_fragments`` — for pushed-down aggregates, the
      streamed lane's bytes-on-wire is O(fragments): at most
      ``AGGREGATE_WIRE_BYTES_PER_FRAGMENT`` per sub-query, regardless of
      result size.
    """
    peak_bounded = True
    aggregate_o_fragments = True
    for run in runs:
        for lane in run.lanes:
            if not lane.streamed:
                continue
            if lane.peak_buffered_bytes > 2 * chunk_bytes * run.subqueries:
                peak_bounded = False
            if (
                run.aggregate
                and lane.wire_measured
                and lane.bytes_received
                > AGGREGATE_WIRE_BYTES_PER_FRAGMENT * run.subqueries
            ):
                aggregate_o_fragments = False
    return {
        "figure": "streaming",
        "scenario": name,
        "modes": list(modes),
        "chunk_bytes": chunk_bytes,
        "byte_identical": all(run.byte_identical for run in runs),
        "checks": {
            "peak_buffer_bounded": peak_bounded,
            "aggregate_wire_o_fragments": aggregate_o_fragments,
        },
        "runs": [run.to_dict() for run in runs],
    }


def format_scenario_table(result: ScenarioResult, transmission: bool = False) -> str:
    """One scenario as an aligned table (per-query rows)."""
    header = (
        f"{result.name} — paper {result.paper_mb}MB"
        f" (scaled {result.target_bytes / 1e6:.2f}MB),"
        f" {result.fragment_count} fragment(s)"
        + (" [with transmission]" if transmission else " [no transmission]")
    )
    lines = [header, "-" * len(header)]
    lines.append(
        f"{'query':<6} {'centralized':>12} {'fragmented':>12} {'speedup':>8}"
        f" {'subq':>5} {'match':>6}  description"
    )
    for run in result.runs:
        if transmission:
            central = run.centralized_total_seconds
            fragmented = run.fragmented_total_seconds
            speedup = run.speedup_with_transmission
        else:
            central = run.centralized_seconds
            fragmented = run.fragmented_seconds
            speedup = run.speedup
        lines.append(
            f"{run.qid:<6} {central * 1000:>10.1f}ms {fragmented * 1000:>10.1f}ms"
            f" {speedup:>7.2f}x {run.subqueries:>5}"
            f" {'ok' if run.results_match else 'DIFF':>6}  {run.description}"
        )
    return "\n".join(lines)


def format_speedup_series(
    results: list[ScenarioResult], qid: str, transmission: bool = False
) -> str:
    """One query's speedup across fragment counts (a Fig. 7 bar group)."""
    lines = [f"speedup of {qid} vs fragment count"]
    for result in results:
        run = result.run_by_id(qid)
        speedup = (
            run.speedup_with_transmission if transmission else run.speedup
        )
        lines.append(
            f"  {result.fragment_count} fragments: {speedup:6.2f}x"
            f" (centralized {run.centralized_seconds * 1000:.1f}ms,"
            f" fragmented {run.fragmented_seconds * 1000:.1f}ms)"
        )
    return "\n".join(lines)


def summarize_wins(result: ScenarioResult, transmission: bool = False) -> dict:
    """Aggregate view: how many queries win/lose under fragmentation."""
    wins = losses = ties = 0
    best = (None, 0.0)
    for run in result.runs:
        speedup = run.speedup_with_transmission if transmission else run.speedup
        if speedup > 1.1:
            wins += 1
        elif speedup < 0.9:
            losses += 1
        else:
            ties += 1
        if speedup > best[1]:
            best = (run.qid, speedup)
    return {
        "wins": wins,
        "losses": losses,
        "ties": ties,
        "best_query": best[0],
        "best_speedup": best[1],
    }
