"""Command-line entry point: regenerate a paper figure.

Usage::

    python -m repro.bench --figure 7a --scale 0.01
    python -m repro.bench --figure 7c
    python -m repro.bench --figure 7d --transmission
    python -m repro.bench --figure headline
    python -m repro.bench --figure modes --json modes.json
    python -m repro.bench --figure transport --json transport.json
    python -m repro.bench --figure streaming --json BENCH_streaming.json
    python -m repro.bench --figure serving --json BENCH_serving.json
    python -m repro.bench --figure plans --golden-dir tests/golden/plans
    python -m repro.bench --figure plans --golden-dir tests/golden/plans --update-golden

Prints the same per-query tables the benchmark suite asserts on. The
``plans`` figure renders every bench query's cost-annotated physical
plan (``Partix.explain``) and diffs it against the golden files; with
``--update-golden`` it rewrites them instead.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.plans import run_plans
from repro.bench.pushdown import run_pushdown
from repro.bench.rebalance import run_rebalance
from repro.bench.serving import run_serving
from repro.bench.reporting import (
    format_kv_table,
    format_mode_comparison,
    mode_comparison_payload,
    format_scenario_table,
    format_speedup_series,
    format_streaming_comparison,
    format_transport_comparison,
    streaming_comparison_payload,
    transport_comparison_payload,
)
from repro.bench.scale import DEFAULT_SCALE
from repro.bench.scenarios import (
    STREAMING_MODES,
    TRANSPORT_MODES,
    build_items_scenario,
    build_store_scenario,
    build_xbench_scenario,
    compare_execution_modes,
    compare_streaming,
    compare_transports,
)
from repro.partix.publisher import FragMode


def run_figure_7a(scale: float, repetitions: int, transmission: bool) -> None:
    for count in (2, 4, 8):
        scenario = build_items_scenario(
            "small", paper_mb=100, fragment_count=count, scale=scale
        )
        print(format_scenario_table(scenario.run(repetitions), transmission))
        print()


def run_figure_7b(scale: float, repetitions: int, transmission: bool) -> None:
    for count in (2, 4, 8):
        scenario = build_items_scenario(
            "large", paper_mb=100, fragment_count=count, scale=scale
        )
        print(format_scenario_table(scenario.run(repetitions), transmission))
        print()


def run_figure_7c(scale: float, repetitions: int, transmission: bool) -> None:
    scenario = build_xbench_scenario(paper_mb=100, scale=scale)
    print(format_scenario_table(scenario.run(repetitions), transmission))


def run_figure_7d(scale: float, repetitions: int, transmission: bool) -> None:
    for mode in (FragMode.INDEPENDENT_DOCUMENTS, FragMode.SINGLE_DOCUMENT):
        scenario = build_store_scenario(
            paper_mb=100, frag_mode=mode, scale=scale
        )
        print(format_scenario_table(scenario.run(repetitions), transmission))
        print()


def run_headline(scale: float, repetitions: int, transmission: bool) -> None:
    results = []
    for count in (2, 4, 8):
        scenario = build_items_scenario(
            "small", paper_mb=250, fragment_count=count, scale=scale
        )
        results.append(scenario.run(repetitions))
    print(format_speedup_series(results, "Q8", transmission))
    best = max(r.run_by_id("Q8").speedup for r in results)
    print(f"\nbest Q8 speedup: {best:.1f}x (paper reports up to 72x)")


def run_modes(scale: float, repetitions: int, transmission: bool) -> dict:
    """Simulated vs real-threads execution on a 4-site horizontal split.

    The JSON summary records, per query and per plan lane, the planner's
    estimated seconds next to the measured seconds of both modes.
    """
    scenario = build_items_scenario(
        "small", paper_mb=100, fragment_count=4, scale=scale
    )
    runs = compare_execution_modes(scenario, repetitions)
    print(format_mode_comparison(scenario.name, runs))
    return mode_comparison_payload(scenario.name, runs)


def run_transport(scale: float, repetitions: int, transmission: bool) -> dict:
    """Simulated vs threads vs real tcp processes, 4-site horizontal split.

    The tcp lane spawns one site-server process per site, mirrors the
    published fragments over the wire, and measures real wall time and
    real framed bytes-on-wire next to the network model's estimates.
    """
    scenario = build_items_scenario(
        "small", paper_mb=100, fragment_count=4, scale=scale
    )
    runs = compare_transports(scenario, repetitions, modes=TRANSPORT_MODES)
    print(format_transport_comparison(scenario.name, runs))
    return transport_comparison_payload(scenario.name, runs, TRANSPORT_MODES)


#: Chunk size for the streaming figure. Small enough that bench results
#: span many RESULT_CHUNK frames (so peak-buffer bounding is visible),
#: large enough to stay realistic.
STREAMING_CHUNK_BYTES = 4096


def run_streaming(scale: float, repetitions: int, transmission: bool) -> dict:
    """Monolithic vs streamed tcp execution, 4-site horizontal split.

    Both lanes run against the same site-server processes. The streamed
    lane negotiates a small chunk size, routes results through
    RESULT_CHUNK frames and the incremental composer, and reports peak
    coordinator buffering plus time-to-first-chunk; aggregate queries
    (count/sum/…) demonstrate the pushdown's O(fragments) bytes-on-wire.
    """
    scenario = build_items_scenario(
        "small", paper_mb=100, fragment_count=4, scale=scale
    )
    scenario.partix.chunk_bytes = STREAMING_CHUNK_BYTES
    runs = compare_streaming(scenario, repetitions, modes=STREAMING_MODES)
    print(
        format_streaming_comparison(
            scenario.name, runs, STREAMING_CHUNK_BYTES
        )
    )
    return streaming_comparison_payload(
        scenario.name, runs, STREAMING_MODES, STREAMING_CHUNK_BYTES
    )


#: Degrees compared by the ``parallel`` figure; 1 is the serial baseline.
PARALLEL_DEGREES = (1, 2, 4)

#: Worker pool size given to every site in the ``parallel`` figure.
PARALLEL_SHARD_WORKERS = 4

#: The ``parallel`` figure multiplies the requested ``--scale`` so the
#: large documents grow past the point where per-shard pool startup
#: amortizes. At the bench default (1/100) the documents are so small
#: that the degree chooser would rightly keep every lane serial — and
#: then there is nothing to measure.
PARALLEL_SCALE_BOOST = 26


def run_parallel(scale: float, repetitions: int, transmission: bool) -> dict:
    """Serial vs sharded intra-site evaluation on the large-document split.

    Every ItemsLHor query runs with the per-lane shard degree forced to
    each of :data:`PARALLEL_DEGREES` against the same repository, in
    threads mode (real worker pools evaluating candidate slices in
    separate processes). Answers must be byte-identical at every degree.
    Timing uses the suite's standard measure — ``parallel_seconds``, the
    slowest lane's elapsed time on the paper's cost model, where a
    sharded lane's per-document access overhead accrues concurrently
    across its shards — with the real measured wall seconds reported
    alongside. The JSON summary records both per degree plus the modeled
    speedup of the highest degree over forced-serial; the CI
    ``parallel-smoke`` job asserts the large-document scenario actually
    gets faster.
    """
    scenario = build_items_scenario(
        "large",
        paper_mb=10,
        fragment_count=2,
        scale=scale * PARALLEL_SCALE_BOOST,
        shard_workers=PARALLEL_SHARD_WORKERS,
    )
    partix = scenario.partix
    rounds = max(1, repetitions)
    modeled = {degree: 0.0 for degree in PARALLEL_DEGREES}
    wall = {degree: 0.0 for degree in PARALLEL_DEGREES}
    queries = []
    byte_identical = True
    for query in scenario.queries:
        texts = {}
        per_degree = {}
        for degree in PARALLEL_DEGREES:
            runs = [
                partix.execute(
                    query.text,
                    collection=scenario.collection_name,
                    execution_mode="threads",
                    shard_degree=degree,
                )
                for _ in range(rounds + 1)
            ][1:]  # first round is warm-up
            texts[degree] = runs[-1].result_text
            best_modeled = min(run.parallel_seconds for run in runs)
            best_wall = min(
                run.round.measured_wall_seconds for run in runs
            )
            per_degree[degree] = (best_modeled, best_wall)
            modeled[degree] += best_modeled
            wall[degree] += best_wall
        identical = len(set(texts.values())) == 1
        byte_identical = byte_identical and identical
        queries.append(
            {
                "qid": query.qid,
                "byte_identical": identical,
                "parallel_seconds": {
                    str(degree): per_degree[degree][0]
                    for degree in PARALLEL_DEGREES
                },
                "measured_wall_seconds": {
                    str(degree): per_degree[degree][1]
                    for degree in PARALLEL_DEGREES
                },
            }
        )

    top = PARALLEL_DEGREES[-1]
    speedup = modeled[1] / modeled[top] if modeled[top] > 0 else 0.0
    rows: list[tuple[str, object]] = [
        (
            f"degree {degree}",
            f"{modeled[degree]:.3f} s modeled"
            f" / {wall[degree]:.3f} s wall",
        )
        for degree in PARALLEL_DEGREES
    ]
    rows.append((f"speedup at degree {top}", f"{speedup:.2f}x"))
    rows.append(("answers byte-identical", byte_identical))
    print(
        format_kv_table(
            f"{scenario.name} — intra-site sharding"
            f" ({PARALLEL_SHARD_WORKERS} workers/site, threads mode)",
            rows,
        )
    )
    return {
        "figure": "parallel",
        "scenario": scenario.name,
        "mode": "threads",
        "shard_workers": PARALLEL_SHARD_WORKERS,
        "degrees": list(PARALLEL_DEGREES),
        "repetitions": rounds,
        "byte_identical": byte_identical,
        "parallel_seconds": {
            str(degree): modeled[degree] for degree in PARALLEL_DEGREES
        },
        "measured_wall_seconds": {
            str(degree): wall[degree] for degree in PARALLEL_DEGREES
        },
        "speedup": speedup,
        "queries": queries,
    }


FIGURES = {
    "7a": run_figure_7a,
    "7b": run_figure_7b,
    "7c": run_figure_7c,
    "7d": run_figure_7d,
    "headline": run_headline,
    "modes": run_modes,
    "parallel": run_parallel,
    "transport": run_transport,
    "streaming": run_streaming,
    "serving": run_serving,
    "rebalance": run_rebalance,
    "pushdown": run_pushdown,
    # "plans" is dispatched specially in main(): it takes the golden-file
    # flags instead of repetitions/transmission.
    "plans": run_plans,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate a figure of the PartiX evaluation.",
    )
    parser.add_argument(
        "--figure", choices=sorted(FIGURES), required=True,
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help=f"fraction of the paper's database sizes (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument(
        "--repetitions", type=int, default=2,
        help="timed repetitions per query (first run is always discarded)",
    )
    parser.add_argument(
        "--transmission", action="store_true",
        help="include estimated transmission times (the paper's -T series)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the figure's JSON summary here (figures that emit one)",
    )
    parser.add_argument(
        "--golden-dir", metavar="DIR", default=None,
        help="--figure plans: directory of golden plan files to diff against",
    )
    parser.add_argument(
        "--update-golden", action="store_true",
        help="--figure plans: rewrite the golden files instead of diffing",
    )
    args = parser.parse_args(argv)
    exit_code = 0
    if args.figure == "plans":
        payload = run_plans(
            scale=args.scale,
            golden_dir=args.golden_dir,
            update=args.update_golden,
        )
        if not payload["ok"]:
            print(
                "golden plans drifted: "
                + ", ".join(payload["drifted"])
                + " (re-run with --update-golden to accept)",
                file=sys.stderr,
            )
            exit_code = 1
    else:
        if args.golden_dir is not None or args.update_golden:
            parser.error("--golden-dir/--update-golden require --figure plans")
        payload = FIGURES[args.figure](
            args.scale, args.repetitions, args.transmission
        )
    if args.json is not None:
        if payload is None:
            parser.error(f"--figure {args.figure} does not emit a JSON summary")
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"JSON summary written to {args.json}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
