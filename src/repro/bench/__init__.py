"""Benchmark harness: scaling, scenarios and reporting."""

from repro.bench.reporting import (
    format_scenario_table,
    format_speedup_series,
    summarize_wins,
)
from repro.bench.scale import (
    ARTICLE_BYTES,
    DEFAULT_SCALE,
    LARGE_ITEM_BYTES,
    PAPER_SIZES_LARGE_MB,
    PAPER_SIZES_MB,
    SMALL_ITEM_BYTES,
    ScaledSize,
    articles_count_for,
    items_count_for,
    scaled_grid,
    scaled_point,
    store_items_for,
)
from repro.bench.scenarios import (
    CENTRAL_SITE,
    QueryRun,
    Scenario,
    ScenarioResult,
    build_items_scenario,
    build_store_scenario,
    build_xbench_scenario,
)

__all__ = [
    "ARTICLE_BYTES",
    "CENTRAL_SITE",
    "DEFAULT_SCALE",
    "LARGE_ITEM_BYTES",
    "PAPER_SIZES_LARGE_MB",
    "PAPER_SIZES_MB",
    "SMALL_ITEM_BYTES",
    "QueryRun",
    "ScaledSize",
    "Scenario",
    "ScenarioResult",
    "articles_count_for",
    "build_items_scenario",
    "build_store_scenario",
    "build_xbench_scenario",
    "format_scenario_table",
    "format_speedup_series",
    "items_count_for",
    "scaled_grid",
    "scaled_point",
    "store_items_for",
    "summarize_wins",
]
