"""The serving benchmark (``--figure serving``).

Stands up the multi-tenant coordinator over a fragmented Items
repository, pre-computes every workload answer with a serial
``Partix.execute`` baseline, then drives a closed-loop traffic
generator against the service. Every concurrent answer is compared
byte-for-byte with its serial baseline, so the figure reports *verified*
throughput: QPS and latency percentiles mean nothing if the answers are
wrong.

The JSON payload (``BENCH_serving.json`` in CI) records QPS,
p50/p95/p99 latency, the shed/error tallies, the plan-cache hit rate
(the whole workload plans ``len(queries)`` times, everything after that
is a hit re-lowered against live site health), and the per-site
connection-pool counters proving connections are reused across queries
rather than dialed per request.
"""

from __future__ import annotations

from repro.bench.scenarios import build_items_scenario
from repro.coordinate.service import Coordinator
from repro.coordinate.traffic import WorkloadQuery, run_traffic

#: Closed-loop client threads the figure drives.
SERVING_CLIENTS = 12
#: Requests each client issues.
SERVING_REQUESTS = 8


def run_serving(scale: float, repetitions: int, transmission: bool) -> dict:
    """Coordinator throughput/latency with verified answers."""
    scenario = build_items_scenario(
        "small", paper_mb=100, fragment_count=4, scale=scale
    )
    partix = scenario.partix

    workload = []
    for query in scenario.queries:
        baseline = partix.execute(
            query.text,
            collection=scenario.collection_name,
            execution_mode="simulated",
        )
        workload.append(
            WorkloadQuery(
                qid=query.qid,
                text=query.text,
                expected_text=baseline.result_text,
                collection=scenario.collection_name,
            )
        )

    coordinator = Coordinator(
        partix,
        execution_mode="threads",
        max_active=8,
        queue_limit=64,
    )
    coordinator.serve_in_thread()
    try:
        report = run_traffic(
            coordinator.host,
            coordinator.port,
            workload,
            clients=SERVING_CLIENTS,
            requests_per_client=SERVING_REQUESTS * max(1, repetitions),
            seed=42,
        )
        stats = coordinator.stats_payload()
    finally:
        clean = coordinator.close()

    payload = {
        "figure": "serving",
        "scenario": scenario.name,
        "fragment_count": scenario.fragment_count,
        "clean_shutdown": clean,
        "plan_cache": stats["plan_cache"],
        "admission": stats["admission"],
        **report.as_payload(),
    }
    if report.error_messages:
        payload["error_samples"] = report.error_messages

    def _fmt(value, unit=""):
        return "-" if value is None else f"{value:.2f}{unit}"

    print(f"serving figure — {scenario.name}, {SERVING_CLIENTS} closed-loop clients")
    print(
        f"  {report.ok}/{report.total} verified ok,"
        f" {report.incorrect} incorrect, {report.shed} shed,"
        f" {report.errors} errors"
    )
    print(
        f"  {report.qps:.1f} qps |"
        f" p50 {_fmt(payload['p50_ms'], ' ms')} |"
        f" p95 {_fmt(payload['p95_ms'], ' ms')} |"
        f" p99 {_fmt(payload['p99_ms'], ' ms')}"
    )
    cache = stats["plan_cache"]
    print(
        f"  plan cache: {cache['hits']} hits / {cache['misses']} misses"
        f" ({cache['entries']} entries)"
    )
    if report.incorrect:
        raise SystemExit(
            f"serving bench: {report.incorrect} answers diverged from the"
            " serial baseline"
        )
    return payload
