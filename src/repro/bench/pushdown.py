"""The ``pushdown`` figure: what does index pushdown buy per site?

Three configurations of the same published ItemsSHor repository (4
horizontal fragments + centralized baseline site, binary node tables on
disk either way), per query:

* ``no-indexes`` — the per-query override forces full scans: every
  fragment document is materialized from its binary table and evaluated
  (the paper-faithful eXist/2005 behaviour, modulo the cheaper decode);
* ``index-candidates`` — value/path indexes prune to candidate document
  ids, but ``label_pushdown`` is disabled at every engine, so every
  candidate is still materialized before the predicate runs;
* ``label-pushdown`` — the full fast path: index candidates are verified
  exactly on the binary encoding (prefix-label structural tests, interned
  value comparisons) and only true matches are materialized.

The reported latency is the round's ``parallel_seconds`` — the slowest
site's busy time, including the simulated per-document access overhead —
so the figure shows the per-site cost the paper's Figure 7 methodology
would attribute to each access path. The JSON ``checks`` block asserts
the two invariants the CI smoke job gates on: answers byte-identical
across all three configurations, and the full pushdown path no slower
than the no-indexes baseline over the query set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.scenarios import Scenario, build_items_scenario

#: Configuration slugs, in the order they are run and reported.
PUSHDOWN_CONFIGS = ("no-indexes", "index-candidates", "label-pushdown")

#: Relative slack for the never-slower check: the per-document simulated
#: overhead makes the totals strongly deterministic, but queries without
#: an extractable predicate cost the same in every configuration and
#: contribute pure measurement noise.
PUSHDOWN_SLACK = 0.02


@dataclass
class PushdownLane:
    """One configuration's measurements for one query."""

    config: str
    parallel_seconds: float
    documents_parsed: int
    label_pruned: int
    binary_decodes: int
    result_bytes: int


@dataclass
class PushdownRun:
    """One query across the three configurations."""

    qid: str
    description: str
    byte_identical: bool
    lanes: list = field(default_factory=list)

    def lane(self, config: str) -> PushdownLane:
        for lane in self.lanes:
            if lane.config == config:
                return lane
        raise KeyError(config)


def _set_label_pushdown(scenario: Scenario, enabled: bool) -> None:
    """Flip exact binary verification at every site engine in place."""
    for site in scenario.partix.cluster.sites():
        engine = getattr(site.driver, "engine", None)
        if engine is not None:
            engine.label_pushdown = enabled


def _round_stats(result) -> tuple[int, int, int]:
    parsed = pruned = decodes = 0
    for execution in result.round.executions:
        parsed += execution.result.documents_parsed
        pruned += execution.result.label_pruned
        decodes += execution.result.binary_decodes
    return parsed, pruned, decodes


def run_pushdown(scale: float, repetitions: int, transmission: bool) -> dict:
    """Run the three-configuration comparison; returns the JSON payload."""
    scenario = build_items_scenario(
        "small", paper_mb=100, fragment_count=4, scale=scale, use_indexes=True
    )
    runs: list[PushdownRun] = []
    for query in scenario.queries:
        results = {}
        timings: dict[str, list[float]] = {c: [] for c in PUSHDOWN_CONFIGS}
        for config in PUSHDOWN_CONFIGS:
            _set_label_pushdown(scenario, config == "label-pushdown")
            use_indexes = config != "no-indexes"
            for repetition in range(repetitions + 1):
                result = scenario.partix.execute(
                    query.text,
                    collection=scenario.collection_name,
                    use_indexes=use_indexes,
                )
                if repetition == 0:
                    continue  # warm-up, as in every other figure
                timings[config].append(result.round.parallel_seconds)
                results[config] = result
        reference = results[PUSHDOWN_CONFIGS[0]]
        run = PushdownRun(
            qid=query.qid,
            description=query.description,
            byte_identical=all(
                results[config].result_text == reference.result_text
                for config in PUSHDOWN_CONFIGS[1:]
            ),
        )
        for config in PUSHDOWN_CONFIGS:
            parsed, pruned, decodes = _round_stats(results[config])
            run.lanes.append(
                PushdownLane(
                    config=config,
                    parallel_seconds=(
                        sum(timings[config]) / len(timings[config])
                    ),
                    documents_parsed=parsed,
                    label_pruned=pruned,
                    binary_decodes=decodes,
                    result_bytes=results[config].result_bytes,
                )
            )
        runs.append(run)
    _set_label_pushdown(scenario, True)
    print(_format(scenario, runs))
    return _payload(scenario, scale, runs)


def _totals(runs: list) -> dict:
    totals = {config: 0.0 for config in PUSHDOWN_CONFIGS}
    for run in runs:
        for config in PUSHDOWN_CONFIGS:
            totals[config] += run.lane(config).parallel_seconds
    return totals


def _format(scenario: Scenario, runs: list) -> str:
    width = max(len(config) for config in PUSHDOWN_CONFIGS)
    lines = [
        f"pushdown — {scenario.name}, {scenario.fragment_count} fragments"
        " (per-site latency = slowest site's busy time)",
    ]
    for run in runs:
        lines.append(f"{run.qid}: {run.description}")
        baseline = run.lane(PUSHDOWN_CONFIGS[0]).parallel_seconds
        for config in PUSHDOWN_CONFIGS:
            lane = run.lane(config)
            ratio = (
                f" ({lane.parallel_seconds / baseline:.2f}x)"
                if baseline > 0
                else ""
            )
            lines.append(
                f"  {config:<{width}}  {lane.parallel_seconds * 1000:9.2f} ms"
                f"{ratio}  materialized={lane.documents_parsed}"
                f" label_pruned={lane.label_pruned}"
            )
        if not run.byte_identical:
            lines.append("  !! answers differ across configurations")
    totals = _totals(runs)
    lines.append("totals:")
    for config in PUSHDOWN_CONFIGS:
        lines.append(
            f"  {config:<{width}}  {totals[config] * 1000:9.2f} ms"
        )
    return "\n".join(lines)


def _payload(scenario: Scenario, scale: float, runs: list) -> dict:
    totals = _totals(runs)
    byte_identical = all(run.byte_identical for run in runs)
    not_slower = (
        totals["label-pushdown"]
        <= totals["no-indexes"] * (1.0 + PUSHDOWN_SLACK)
    )
    return {
        "figure": "pushdown",
        "scenario": scenario.name,
        "scale": scale,
        "fragment_count": scenario.fragment_count,
        "configs": list(PUSHDOWN_CONFIGS),
        "total_parallel_seconds": totals,
        "queries": [
            {
                "qid": run.qid,
                "description": run.description,
                "byte_identical": run.byte_identical,
                "lanes": {
                    lane.config: {
                        "parallel_seconds": lane.parallel_seconds,
                        "documents_parsed": lane.documents_parsed,
                        "label_pruned": lane.label_pruned,
                        "binary_decodes": lane.binary_decodes,
                        "result_bytes": lane.result_bytes,
                    }
                    for lane in run.lanes
                },
            }
            for run in runs
        ],
        "checks": {
            "byte_identical": byte_identical,
            "pushdown_not_slower": not_slower,
        },
    }
