"""Experiment scenarios: build a database, run queries, collect rows.

A :class:`Scenario` pairs one database configuration (collection + cluster
+ fragmentation) with one query set, and compares every query's
centralized execution against its fragmented execution, following §5's
methodology: each query runs ``repetitions + 1`` times, the first run is
discarded, and the remaining times are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.network import NetworkModel
from repro.cluster.site import Cluster, Site
from repro.datamodel.collection import Collection
from repro.partix.fragments import FragmentationSchema
from repro.partix.middleware import Partix, PartixResult
from repro.partix.publisher import FragMode
from repro.plan.executor import ExecutionMode
from repro.workloads.queries import BenchQuery
from repro.workloads.virtual_store import (
    build_items_collection,
    build_store_collection,
    items_horizontal_fragmentation,
    store_hybrid_fragmentation,
)
from repro.workloads.xbench import (
    build_xbench_collection,
    xbench_vertical_fragmentation,
)
from repro.workloads import queries as query_sets
from repro.bench import scale as scaling

CENTRAL_SITE = "central"


@dataclass
class QueryRun:
    """One query's centralized-vs-fragmented comparison."""

    qid: str
    description: str
    centralized_seconds: float
    fragmented_seconds: float  # no transmission (slowest site + compose)
    fragmented_total_seconds: float  # with transmission
    centralized_total_seconds: float  # with (single) transmission
    subqueries: int
    results_match: bool
    centralized_result_bytes: int
    fragmented_result_bytes: int
    centralized_docs_parsed: int = 0
    fragmented_docs_parsed: int = 0

    @property
    def speedup(self) -> float:
        """Centralized / fragmented, transmission excluded."""
        if self.fragmented_seconds <= 0:
            return float("inf")
        return self.centralized_seconds / self.fragmented_seconds

    @property
    def speedup_with_transmission(self) -> float:
        if self.fragmented_total_seconds <= 0:
            return float("inf")
        return self.centralized_total_seconds / self.fragmented_total_seconds


@dataclass
class ScenarioResult:
    """All rows of one scenario run."""

    name: str
    database: str
    paper_mb: int
    target_bytes: int
    fragment_count: int
    runs: list[QueryRun] = field(default_factory=list)

    def run_by_id(self, qid: str) -> QueryRun:
        for run in self.runs:
            if run.qid == qid:
                return run
        raise KeyError(qid)

    def max_speedup(self) -> float:
        return max((run.speedup for run in self.runs), default=0.0)


def _result_signature(text: str) -> tuple[str, ...]:
    """Order-insensitive result signature (fragments interleave order)."""
    return tuple(sorted(line for line in text.splitlines() if line.strip()))


class Scenario:
    """One database configuration ready to run a query set."""

    def __init__(
        self,
        name: str,
        partix: Partix,
        collection_name: str,
        queries: list[BenchQuery],
        paper_mb: int,
        target_bytes: int,
        fragment_count: int,
    ):
        self.name = name
        self.partix = partix
        self.collection_name = collection_name
        self.queries = queries
        self.paper_mb = paper_mb
        self.target_bytes = target_bytes
        self.fragment_count = fragment_count

    # ------------------------------------------------------------------
    def run(self, repetitions: int = 3) -> ScenarioResult:
        """Run every query centralized and fragmented; average the times.

        The first execution of each configuration is discarded (warm-up),
        as in the paper.
        """
        result = ScenarioResult(
            name=self.name,
            database=self.collection_name,
            paper_mb=self.paper_mb,
            target_bytes=self.target_bytes,
            fragment_count=self.fragment_count,
        )
        for query in self.queries:
            result.runs.append(self._run_query(query, repetitions))
        return result

    def _run_query(self, query: BenchQuery, repetitions: int) -> QueryRun:
        central_runs = [
            self.partix.execute_centralized(query.text, CENTRAL_SITE)
            for _ in range(repetitions + 1)
        ][1:]
        fragmented_runs = [
            self.partix.execute(query.text, collection=self.collection_name)
            for _ in range(repetitions + 1)
        ][1:]
        central = central_runs[-1]
        fragmented = fragmented_runs[-1]
        return QueryRun(
            qid=query.qid,
            description=query.description,
            centralized_seconds=_avg(r.parallel_seconds for r in central_runs),
            fragmented_seconds=_avg(r.parallel_seconds for r in fragmented_runs),
            fragmented_total_seconds=_avg(r.total_seconds for r in fragmented_runs),
            centralized_total_seconds=_avg(r.total_seconds for r in central_runs),
            subqueries=len(fragmented.round.executions),
            results_match=_result_signature(central.result_text)
            == _result_signature(fragmented.result_text),
            centralized_result_bytes=central.result_bytes,
            fragmented_result_bytes=fragmented.result_bytes,
            centralized_docs_parsed=sum(
                e.result.documents_parsed for e in central.round.executions
            ),
            fragmented_docs_parsed=sum(
                e.result.documents_parsed for e in fragmented.round.executions
            ),
        )


def _avg(values) -> float:
    items = list(values)
    return sum(items) / len(items) if items else 0.0


# ----------------------------------------------------------------------
# Execution-mode comparison (simulated vs real threads)
# ----------------------------------------------------------------------
@dataclass
class ModeComparisonRun:
    """One query's simulated-mode vs threads-mode wall-clock comparison.

    ``parallel_seconds`` is the *modelled* time (slowest site + compose)
    — it is mode-independent by construction. The two wall columns are
    real machine time: the sequential in-process loop vs the concurrent
    dispatcher.
    """

    qid: str
    description: str
    parallel_seconds: float
    sequential_seconds: float
    simulated_wall_seconds: float
    threads_wall_seconds: float
    subqueries: int
    byte_identical: bool
    #: Per-lane planner-estimate vs measurement, one entry per physical
    #: plan lane: ``{plan_node, fragment, site, estimated_seconds,
    #: simulated_seconds, threads_seconds}`` — joined across the two
    #: modes by the plan-node identity the executor stamps on every
    #: execution.
    lane_timings: list = field(default_factory=list)
    #: Replica failovers the dispatcher performed across both modes'
    #: final repetitions (0 on a healthy cluster).
    failover_count: int = 0

    @property
    def wall_speedup(self) -> float:
        """Sequential-loop wall / concurrent-dispatch wall."""
        if self.threads_wall_seconds <= 0:
            return float("inf")
        return self.simulated_wall_seconds / self.threads_wall_seconds

    def to_dict(self) -> dict:
        return {
            "qid": self.qid,
            "description": self.description,
            "parallel_seconds": self.parallel_seconds,
            "sequential_seconds": self.sequential_seconds,
            "simulated_wall_seconds": self.simulated_wall_seconds,
            "threads_wall_seconds": self.threads_wall_seconds,
            "subqueries": self.subqueries,
            "byte_identical": self.byte_identical,
            "lane_timings": self.lane_timings,
            "failover_count": self.failover_count,
        }


def compare_execution_modes(
    scenario: Scenario, repetitions: int = 2
) -> list[ModeComparisonRun]:
    """Run a scenario's queries in both execution modes, side by side.

    Asserts the paper-faithful invariant along the way: the two modes
    must produce **byte-identical** answers (composition is plan-ordered
    in both). First run of each configuration is discarded (warm-up).
    """
    runs = []
    for query in scenario.queries:
        simulated = [
            scenario.partix.execute(
                query.text, collection=scenario.collection_name
            )
            for _ in range(repetitions + 1)
        ][1:]
        threaded = [
            scenario.partix.execute(
                query.text,
                collection=scenario.collection_name,
                execution_mode="threads",
            )
            for _ in range(repetitions + 1)
        ][1:]
        runs.append(
            ModeComparisonRun(
                qid=query.qid,
                description=query.description,
                parallel_seconds=_avg(r.parallel_seconds for r in simulated),
                sequential_seconds=_avg(
                    r.sequential_seconds for r in simulated
                ),
                simulated_wall_seconds=_avg(
                    r.measured_wall_seconds for r in simulated
                ),
                threads_wall_seconds=_avg(
                    r.measured_wall_seconds for r in threaded
                ),
                subqueries=len(threaded[-1].round.executions),
                byte_identical=simulated[-1].result_text
                == threaded[-1].result_text,
                lane_timings=_join_lane_timings(
                    simulated[-1], threaded[-1]
                ),
                failover_count=(
                    simulated[-1].failover_count
                    + threaded[-1].failover_count
                ),
            )
        )
    return runs


def _join_lane_timings(
    simulated: PartixResult, threaded: PartixResult
) -> list[dict]:
    """Join both modes' per-lane measurements on the plan-node identity.

    Either side may miss a node (degraded lane); its column is None.
    """
    threads_by_node = {
        lane["plan_node"]: lane for lane in threaded.lane_timings
    }
    joined = []
    for lane in simulated.lane_timings:
        other = threads_by_node.pop(lane["plan_node"], None)
        joined.append(
            {
                "plan_node": lane["plan_node"],
                "fragment": lane["fragment"],
                "site": lane["site"],
                "estimated_seconds": lane["estimated_seconds"],
                "simulated_seconds": lane["measured_seconds"],
                "threads_seconds": (
                    other["measured_seconds"] if other else None
                ),
            }
        )
    for lane in threads_by_node.values():
        joined.append(
            {
                "plan_node": lane["plan_node"],
                "fragment": lane["fragment"],
                "site": lane["site"],
                "estimated_seconds": lane["estimated_seconds"],
                "simulated_seconds": None,
                "threads_seconds": lane["measured_seconds"],
            }
        )
    return joined


# ----------------------------------------------------------------------
# Transport comparison (simulated vs threads vs real tcp processes)
# ----------------------------------------------------------------------
@dataclass
class TransportLane:
    """One execution mode's measurements for one query."""

    mode: str
    wall_seconds: float
    bytes_sent: int
    bytes_received: int
    wire_measured: bool

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "wire_measured": self.wire_measured,
        }


@dataclass
class TransportComparisonRun:
    """One query compared across transports.

    ``wall_seconds`` per lane is real machine time; byte counts are real
    framed socket bytes for the ``tcp`` lane (``wire_measured``) and the
    would-have-traveled payload sizes for the in-process lanes.
    ``estimated_transmission_seconds`` is what the
    :class:`~repro.cluster.network.NetworkModel` predicts for the same
    round, so the estimate sits next to the measurement.
    """

    qid: str
    description: str
    subqueries: int
    byte_identical: bool
    estimated_transmission_seconds: float
    lanes: list[TransportLane] = field(default_factory=list)

    def lane(self, mode: str) -> TransportLane:
        for lane in self.lanes:
            if lane.mode == mode:
                return lane
        raise KeyError(mode)

    def to_dict(self) -> dict:
        return {
            "qid": self.qid,
            "description": self.description,
            "subqueries": self.subqueries,
            "byte_identical": self.byte_identical,
            "estimated_transmission_seconds": (
                self.estimated_transmission_seconds
            ),
            "lanes": [lane.to_dict() for lane in self.lanes],
        }


TRANSPORT_MODES = ("simulated", "threads", "tcp")


def compare_transports(
    scenario: Scenario,
    repetitions: int = 2,
    modes: tuple = TRANSPORT_MODES,
) -> list[TransportComparisonRun]:
    """Run a scenario's queries through every transport, side by side.

    When ``"tcp"`` is requested, real site-server processes are spawned
    (and the published fragments mirrored to them over the wire) for the
    duration of the comparison, then reaped. The byte-identical invariant
    is checked against the first mode's answer. First run of each
    configuration is discarded (warm-up).
    """
    runs: list[TransportComparisonRun] = []
    started_tcp = False
    if (
        any(ExecutionMode.parse(mode).transport == "tcp" for mode in modes)
        and scenario.partix.tcp is None
    ):
        scenario.partix.start_tcp()
        started_tcp = True
    try:
        for query in scenario.queries:
            by_mode: dict[str, list[PartixResult]] = {}
            for mode in modes:
                by_mode[mode] = [
                    scenario.partix.execute(
                        query.text,
                        collection=scenario.collection_name,
                        execution_mode=mode,
                    )
                    for _ in range(repetitions + 1)
                ][1:]
            reference = by_mode[modes[0]][-1]
            run = TransportComparisonRun(
                qid=query.qid,
                description=query.description,
                subqueries=len(reference.round.executions),
                byte_identical=all(
                    by_mode[mode][-1].result_text == reference.result_text
                    for mode in modes[1:]
                ),
                estimated_transmission_seconds=_avg(
                    r.transmission_seconds for r in by_mode[modes[0]]
                ),
            )
            for mode in modes:
                last = by_mode[mode][-1]
                run.lanes.append(
                    TransportLane(
                        mode=mode,
                        wall_seconds=_avg(
                            r.measured_wall_seconds for r in by_mode[mode]
                        ),
                        bytes_sent=last.bytes_sent,
                        bytes_received=last.bytes_received,
                        wire_measured=last.wire_measured,
                    )
                )
            runs.append(run)
    finally:
        if started_tcp:
            scenario.partix.stop_tcp()
    return runs


# ----------------------------------------------------------------------
# Streaming comparison (monolithic RESULT vs chunked RESULT_CHUNK lanes)
# ----------------------------------------------------------------------
@dataclass
class StreamingLane:
    """One execution mode's streaming measurements for one query."""

    mode: str
    wall_seconds: float
    bytes_received: int
    streamed: bool
    wire_measured: bool
    peak_buffered_bytes: int = 0
    first_chunk_seconds: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "bytes_received": self.bytes_received,
            "streamed": self.streamed,
            "wire_measured": self.wire_measured,
            "peak_buffered_bytes": self.peak_buffered_bytes,
            "first_chunk_seconds": self.first_chunk_seconds,
        }


@dataclass
class StreamingComparisonRun:
    """One query compared monolithic vs streamed.

    ``bytes_received`` per lane is what actually traveled back to the
    coordinator: framed socket bytes for the tcp lanes. For aggregate
    compositions the decomposer's pushdown makes that O(fragments) — each
    site ships one scalar partial — regardless of the underlying result
    size. ``peak_buffered_bytes`` is the streamed lane's largest
    coordinator-side in-memory buffering (bounded by the spill threshold
    per active lane, never by result size); ``first_chunk_seconds`` its
    time-to-first-byte.
    """

    qid: str
    description: str
    subqueries: int
    composition: str
    aggregate: Optional[str]
    byte_identical: bool
    lanes: list[StreamingLane] = field(default_factory=list)

    def lane(self, mode: str) -> StreamingLane:
        for lane in self.lanes:
            if lane.mode == mode:
                return lane
        raise KeyError(mode)

    def to_dict(self) -> dict:
        return {
            "qid": self.qid,
            "description": self.description,
            "subqueries": self.subqueries,
            "composition": self.composition,
            "aggregate": self.aggregate,
            "byte_identical": self.byte_identical,
            "lanes": [lane.to_dict() for lane in self.lanes],
        }


STREAMING_MODES = ("tcp", "tcp-stream")


def compare_streaming(
    scenario: Scenario,
    repetitions: int = 2,
    modes: tuple = STREAMING_MODES,
) -> list[StreamingComparisonRun]:
    """Run a scenario's queries monolithic and streamed, side by side.

    Both lanes speak to the same spawned site-server processes; the
    streamed lane routes results through RESULT_CHUNK frames and the
    incremental composer. Byte-identity of the answers is checked against
    the first mode. First run of each configuration is discarded
    (warm-up).
    """
    runs: list[StreamingComparisonRun] = []
    started_tcp = False
    if (
        any(ExecutionMode.parse(mode).transport == "tcp" for mode in modes)
        and scenario.partix.tcp is None
    ):
        scenario.partix.start_tcp()
        started_tcp = True
    try:
        for query in scenario.queries:
            by_mode: dict[str, list[PartixResult]] = {}
            for mode in modes:
                by_mode[mode] = [
                    scenario.partix.execute(
                        query.text,
                        collection=scenario.collection_name,
                        execution_mode=mode,
                    )
                    for _ in range(repetitions + 1)
                ][1:]
            reference = by_mode[modes[0]][-1]
            plan = scenario.partix.explain(
                query.text, scenario.collection_name
            )
            run = StreamingComparisonRun(
                qid=query.qid,
                description=query.description,
                subqueries=len(reference.round.executions),
                composition=plan.composition.kind,
                aggregate=plan.composition.aggregate,
                byte_identical=all(
                    by_mode[mode][-1].result_text == reference.result_text
                    for mode in modes[1:]
                ),
            )
            for mode in modes:
                last = by_mode[mode][-1]
                run.lanes.append(
                    StreamingLane(
                        mode=mode,
                        wall_seconds=_avg(
                            r.measured_wall_seconds for r in by_mode[mode]
                        ),
                        bytes_received=last.bytes_received,
                        streamed=last.streamed,
                        wire_measured=last.wire_measured,
                        peak_buffered_bytes=last.peak_buffered_bytes,
                        first_chunk_seconds=last.first_chunk_seconds,
                    )
                )
            runs.append(run)
    finally:
        if started_tcp:
            scenario.partix.stop_tcp()
    return runs


# ----------------------------------------------------------------------
# Scenario builders (one per paper experiment)
# ----------------------------------------------------------------------
#: Simulated per-document access overhead for paper-faithful scenarios.
#: Calibration: the paper's 250MB ItemsSHor/ItemsLHor centralized times
#: (1200s over ~125k documents vs 31s over ~3.1k documents) imply a
#: per-document constant of roughly 9ms on eXist/2005 hardware. We use a
#: quarter of that so per-document costs are first-order (as in eXist)
#: without completely drowning the measured parse/evaluation times.
PAPER_DOC_OVERHEAD = 0.0025


def _make_cluster(
    fragment_sites: int,
    use_indexes: bool,
    per_document_overhead: float,
    shard_workers: int = 0,
) -> Cluster:
    cluster = Cluster.with_sites(
        fragment_sites,
        use_indexes=use_indexes,
        per_document_overhead=per_document_overhead,
        shard_workers=shard_workers,
    )
    cluster.add(
        Site(
            CENTRAL_SITE,
            use_indexes=use_indexes,
            per_document_overhead=per_document_overhead,
            shard_workers=shard_workers,
        )
    )
    return cluster


def build_items_scenario(
    kind: str,
    paper_mb: int,
    fragment_count: int,
    scale: float = scaling.DEFAULT_SCALE,
    seed: int = 42,
    network: Optional[NetworkModel] = None,
    use_indexes: bool = False,
    per_document_overhead: float = PAPER_DOC_OVERHEAD,
    shard_workers: int = 0,
) -> Scenario:
    """ItemsSHor (kind='small') / ItemsLHor (kind='large'), Fig. 7a/7b.

    ``use_indexes`` defaults to off for paper fidelity (see
    ``Cluster.with_sites``); the ablation benchmark flips it on.
    ``shard_workers`` sizes every site's intra-site worker pool (the
    ``parallel`` figure runs ItemsLHor sharded).
    """
    point = scaling.scaled_point(paper_mb, scale)
    count = scaling.items_count_for(point.target_bytes, kind)
    collection = build_items_collection(count, kind=kind, seed=seed)
    cluster = _make_cluster(
        fragment_count, use_indexes, per_document_overhead, shard_workers
    )
    partix = Partix(cluster, network=network)
    fragmentation = items_horizontal_fragmentation(fragment_count)
    partix.publish(collection, fragmentation)
    partix.publish_centralized(collection, CENTRAL_SITE)
    return Scenario(
        name=f"Items{'S' if kind == 'small' else 'L'}Hor",
        partix=partix,
        collection_name=collection.name,
        queries=query_sets.items_queries(collection.name),
        paper_mb=paper_mb,
        target_bytes=point.target_bytes,
        fragment_count=fragment_count,
    )


def build_xbench_scenario(
    paper_mb: int,
    scale: float = scaling.DEFAULT_SCALE,
    seed: int = 7,
    article_bytes: Optional[int] = None,
    network: Optional[NetworkModel] = None,
    use_indexes: bool = False,
    per_document_overhead: float = PAPER_DOC_OVERHEAD,
) -> Scenario:
    """XBenchVer vertical fragmentation, Fig. 7c (always 3 fragments)."""
    point = scaling.scaled_point(paper_mb, scale)
    doc_bytes = article_bytes or scaling.ARTICLE_BYTES
    count = scaling.articles_count_for(point.target_bytes, doc_bytes)
    collection = build_xbench_collection(count, doc_bytes=doc_bytes, seed=seed)
    cluster = _make_cluster(3, use_indexes, per_document_overhead)
    partix = Partix(cluster, network=network)
    partix.publish(collection, xbench_vertical_fragmentation(collection.name))
    partix.publish_centralized(collection, CENTRAL_SITE)
    return Scenario(
        name="XBenchVer",
        partix=partix,
        collection_name=collection.name,
        queries=query_sets.xbench_queries(collection.name),
        paper_mb=paper_mb,
        target_bytes=point.target_bytes,
        fragment_count=3,
    )


def build_store_scenario(
    paper_mb: int,
    frag_mode: FragMode,
    scale: float = scaling.DEFAULT_SCALE,
    seed: int = 42,
    item_fragments: int = 4,
    network: Optional[NetworkModel] = None,
    use_indexes: bool = False,
    per_document_overhead: float = PAPER_DOC_OVERHEAD,
) -> Scenario:
    """StoreHyb hybrid fragmentation, Fig. 7d (5 fragments, 2 FragModes)."""
    point = scaling.scaled_point(paper_mb, scale)
    count = scaling.store_items_for(point.target_bytes, "small")
    collection = build_store_collection(count, item_kind="small", seed=seed)
    cluster = _make_cluster(item_fragments + 1, use_indexes, per_document_overhead)
    partix = Partix(cluster, network=network)
    fragmentation = store_hybrid_fragmentation(item_fragments, collection.name)
    partix.publish(collection, fragmentation, frag_mode=frag_mode)
    partix.publish_centralized(collection, CENTRAL_SITE)
    return Scenario(
        name=f"StoreHyb-FragMode{frag_mode.value}",
        partix=partix,
        collection_name=collection.name,
        queries=query_sets.store_queries(collection.name),
        paper_mb=paper_mb,
        target_bytes=point.target_bytes,
        fragment_count=item_fragments + 1,
    )
