"""Golden physical plans for the bench query sets.

``python -m repro.bench --figure plans`` renders ``Partix.explain`` for
every query of every paper scenario (horizontal items, vertical XBench,
hybrid store in both FragModes) as the indented cost-annotated tree.
Plans are fully deterministic for a fixed ``--scale`` — collections are
seeded, fragment statistics derive from their serialized bytes, and the
cost model is pure arithmetic — so the rendered text can be diffed
against golden files: ``--update-golden`` (re)writes them,
``--golden-dir`` alone compares and fails on any drift. CI runs the
comparison so every change to the planner, the cost model or the
renderer shows up as a reviewed golden diff.
"""

from __future__ import annotations

import difflib
import os
from typing import Callable, Optional

from repro.bench import scale as scaling
from repro.bench.scenarios import (
    Scenario,
    build_items_scenario,
    build_store_scenario,
    build_xbench_scenario,
)
from repro.partix.publisher import FragMode

#: Golden scenario slugs → builder at a given scale. Ordered; the slug
#: is the golden file's basename.
PLAN_SCENARIOS: dict[str, Callable[[float], Scenario]] = {
    "items-small-4": lambda scale: build_items_scenario(
        "small", paper_mb=100, fragment_count=4, scale=scale
    ),
    "xbench-vertical": lambda scale: build_xbench_scenario(
        paper_mb=100, scale=scale
    ),
    "store-hybrid-mode1": lambda scale: build_store_scenario(
        paper_mb=100, frag_mode=FragMode.SINGLE_DOCUMENT, scale=scale
    ),
    "store-hybrid-mode2": lambda scale: build_store_scenario(
        paper_mb=100, frag_mode=FragMode.INDEPENDENT_DOCUMENTS, scale=scale
    ),
    # Index-eligible planning (PR 9): same data, sites publishing value/
    # path indexes, so eligible leaves are priced under both access paths.
    # At the standard scale every fragment clears the break-even and all
    # lanes choose ``index-scan``.
    "items-small-4-indexed": lambda scale: build_items_scenario(
        "small", paper_mb=100, fragment_count=4, scale=scale, use_indexes=True
    ),
    # A tenth of the requested scale leaves the small fragments (F3/F4 at
    # 1-2 documents) below the index break-even while the big ones stay
    # above it — the golden shows one plan mixing ``index-scan`` and
    # ``scan`` lanes, the access choice being per replica, not global.
    "items-skewed-mixed": lambda scale: build_items_scenario(
        "small",
        paper_mb=100,
        fragment_count=4,
        scale=scale * 0.1,
        use_indexes=True,
    ),
}


def render_scenario_plans(slug: str, scenario: Scenario) -> str:
    """Every query's rendered physical plan, one block per query."""
    blocks = [
        f"# golden plans: {slug} ({scenario.name})",
        f"# fragments={scenario.fragment_count}"
        f" collection={scenario.collection_name}",
    ]
    for query in scenario.queries:
        plan = scenario.partix.explain(
            query.text, scenario.collection_name
        )
        blocks.append("")
        blocks.append(f"== {query.qid}: {query.description}")
        blocks.append(f"query: {query.text}")
        blocks.append(plan.render())
    return "\n".join(blocks) + "\n"


def run_plans(
    scale: float = scaling.DEFAULT_SCALE,
    golden_dir: Optional[str] = None,
    update: bool = False,
) -> dict:
    """Render (and optionally diff or rewrite) the golden plans.

    Returns a JSON-able summary; ``ok`` is False when a comparison found
    drift. Without ``golden_dir`` the rendered plans are printed.
    """
    summary: dict = {
        "figure": "plans",
        "scale": scale,
        "scenarios": list(PLAN_SCENARIOS),
        "drifted": [],
        "ok": True,
    }
    for slug, builder in PLAN_SCENARIOS.items():
        rendered = render_scenario_plans(slug, builder(scale))
        if golden_dir is None:
            print(rendered)
            continue
        path = os.path.join(golden_dir, f"{slug}.txt")
        if update:
            os.makedirs(golden_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"golden plans written: {path}")
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                golden = handle.read()
        except FileNotFoundError:
            golden = ""
        if golden != rendered:
            summary["ok"] = False
            summary["drifted"].append(slug)
            diff = difflib.unified_diff(
                golden.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile=path,
                tofile=f"{slug} (rendered)",
            )
            print("".join(diff))
        else:
            print(f"golden plans match: {path}")
    return summary
