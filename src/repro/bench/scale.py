"""Scaling the paper's evaluation grid to laptop-sized runs.

The paper's databases were 5/20/100/250 MB (plus 500 MB for ItemsLHor and
StoreHyb). A pure-Python engine parses roughly two orders of magnitude
slower than eXist's C/Java stack, so the harness scales every size by a
*scale factor* (default 1/100) and keeps the grid's relative proportions.
Shape claims (who wins, where crossovers happen) survive scaling because
every configuration shrinks by the same factor.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1_000_000

#: The paper's database-size grid (§5).
PAPER_SIZES_MB = (5, 20, 100, 250)
PAPER_SIZES_LARGE_MB = (5, 20, 100, 250, 500)

#: Default scale factor applied to every paper size.
DEFAULT_SCALE = 1 / 100

#: Empirical serialized sizes of generated documents (see workloads).
SMALL_ITEM_BYTES = 1_750
LARGE_ITEM_BYTES = 80_000
ARTICLE_BYTES = 100_000  # paper: 5-15MB each; scaled to ~0.1MB


@dataclass(frozen=True)
class ScaledSize:
    """One point of the scaled grid."""

    paper_mb: int
    target_bytes: int

    @property
    def label(self) -> str:
        return f"{self.paper_mb}MB(paper)≈{self.target_bytes / MB:.2f}MB"


def scaled_grid(
    scale: float = DEFAULT_SCALE, large: bool = False
) -> list[ScaledSize]:
    """The scaled database-size grid."""
    sizes = PAPER_SIZES_LARGE_MB if large else PAPER_SIZES_MB
    return [
        ScaledSize(paper_mb=mb, target_bytes=int(mb * MB * scale))
        for mb in sizes
    ]


def scaled_point(paper_mb: int, scale: float = DEFAULT_SCALE) -> ScaledSize:
    """One scaled grid point (e.g. the 250MB headline configuration)."""
    return ScaledSize(paper_mb=paper_mb, target_bytes=int(paper_mb * MB * scale))


def items_count_for(target_bytes: int, kind: str) -> int:
    """Number of Item documents approximating ``target_bytes``."""
    per_doc = SMALL_ITEM_BYTES if kind == "small" else LARGE_ITEM_BYTES
    return max(4, target_bytes // per_doc)


def articles_count_for(target_bytes: int, doc_bytes: int = ARTICLE_BYTES) -> int:
    """Number of article documents approximating ``target_bytes``."""
    return max(2, target_bytes // doc_bytes)


def store_items_for(target_bytes: int, kind: str = "small") -> int:
    """Item count of the single Store document approximating the target."""
    per_doc = SMALL_ITEM_BYTES if kind == "small" else LARGE_ITEM_BYTES
    return max(8, target_bytes // per_doc)
