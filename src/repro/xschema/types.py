"""Simple (atomic) types for leaf content and attributes."""

from __future__ import annotations

import enum
import re

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)$")


class SimpleType(enum.Enum):
    """Atomic value types, a small practical subset of XML Schema's."""

    STRING = "xs:string"
    INTEGER = "xs:integer"
    DECIMAL = "xs:decimal"
    BOOLEAN = "xs:boolean"
    DATE = "xs:date"

    def accepts(self, value: str) -> bool:
        """Lexical validity of ``value`` for this type."""
        if self is SimpleType.STRING:
            return True
        if self is SimpleType.INTEGER:
            return bool(_INT_RE.match(value.strip()))
        if self is SimpleType.DECIMAL:
            return bool(_DECIMAL_RE.match(value.strip()))
        if self is SimpleType.BOOLEAN:
            return value.strip() in ("true", "false", "0", "1")
        if self is SimpleType.DATE:
            return bool(_DATE_RE.match(value.strip()))
        raise AssertionError(f"unhandled simple type {self}")
