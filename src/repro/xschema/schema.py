"""XML schemas: element type declarations with cardinalities.

The paper treats element names as "names of data types, described in a DTD
or XML Schema" (§3.1), and documents *satisfy* a type when their tree can
be derived from the schema grammar. We implement a pragmatic structural
schema language:

* an :class:`ElementDecl` declares one element type: its attributes, and
  either simple content (an atomic type) or a *sequence* content model of
  child element references, each with ``min_occurs``/``max_occurs``
  cardinalities (``max_occurs=None`` means unbounded, the ``1..n`` of the
  paper's Figure 1);
* a :class:`Schema` is a named set of declarations supporting validation
  (:meth:`Schema.satisfies`) and static path analysis.

Path analysis is what the fragmentation layer needs: Definition 3 restricts
a vertical fragment's path ``P`` to nodes whose cardinality along the path
cannot exceed one (unless a positional step ``e[i]`` pins one occurrence),
"so that the fragmentation results in well-formed documents".
:meth:`Schema.max_path_cardinality` decides this statically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.datamodel.tree import NodeKind, XMLNode
from repro.errors import SchemaError, ValidationError
from repro.xschema.types import SimpleType

UNBOUNDED: Optional[int] = None


@dataclass(frozen=True)
class AttributeDecl:
    """Declaration of one attribute of an element type."""

    name: str
    type: SimpleType = SimpleType.STRING
    required: bool = True


@dataclass(frozen=True)
class ChildDecl:
    """One entry of a sequence content model: a typed child with cardinality.

    ``max_occurs=None`` denotes unbounded (``n``). The paper's Figure 1
    writes these as ``0..1``, ``1..n`` etc., defaulting to ``1..1``.
    """

    type_name: str
    min_occurs: int = 1
    max_occurs: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.min_occurs < 0:
            raise SchemaError(f"negative min_occurs for {self.type_name!r}")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise SchemaError(
                f"max_occurs < min_occurs for {self.type_name!r}"
            )

    @property
    def unbounded(self) -> bool:
        return self.max_occurs is None

    def cardinality_str(self) -> str:
        upper = "n" if self.max_occurs is None else str(self.max_occurs)
        return f"{self.min_occurs}..{upper}"


@dataclass
class ElementDecl:
    """Declaration of one element type.

    Exactly one of ``content`` (simple type) or ``children`` (sequence of
    :class:`ChildDecl`) describes the element's content; an element with
    neither is empty. Element types are identified by their name, i.e. the
    label used in documents.
    """

    name: str
    attributes: list[AttributeDecl] = field(default_factory=list)
    children: list[ChildDecl] = field(default_factory=list)
    content: Optional[SimpleType] = None

    def __post_init__(self) -> None:
        if self.content is not None and self.children:
            raise SchemaError(
                f"element {self.name!r} cannot have both simple content and children"
            )

    def child_decl(self, type_name: str) -> Optional[ChildDecl]:
        for decl in self.children:
            if decl.type_name == type_name:
                return decl
        return None

    def attribute_decl(self, name: str) -> Optional[AttributeDecl]:
        for decl in self.attributes:
            if decl.name == name:
                return decl
        return None


class Schema:
    """A named set of element declarations."""

    def __init__(self, name: str, declarations: Iterable[ElementDecl] = ()):
        self.name = name
        self._decls: dict[str, ElementDecl] = {}
        for decl in declarations:
            self.declare(decl)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def declare(self, decl: ElementDecl) -> ElementDecl:
        if decl.name in self._decls:
            raise SchemaError(f"duplicate declaration for {decl.name!r}")
        self._decls[decl.name] = decl
        return decl

    def element(
        self,
        name: str,
        children: Iterable[ChildDecl] = (),
        attributes: Iterable[AttributeDecl] = (),
        content: Optional[SimpleType] = None,
    ) -> ElementDecl:
        """Declare an element type in one call (fluent schema building)."""
        return self.declare(
            ElementDecl(
                name=name,
                attributes=list(attributes),
                children=list(children),
                content=content,
            )
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> ElementDecl:
        try:
            return self._decls[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._decls

    def type_names(self) -> list[str]:
        return list(self._decls.keys())

    # ------------------------------------------------------------------
    # Validation (the "satisfies" relation of §3.1)
    # ------------------------------------------------------------------
    def satisfies(self, node: XMLNode, type_name: str) -> bool:
        """True when the tree rooted at ``node`` satisfies ``type_name``."""
        try:
            self.validate(node, type_name)
        except ValidationError:
            return False
        return True

    def validate(self, node: XMLNode, type_name: str) -> None:
        """Raise :class:`ValidationError` when ``node`` violates the type."""
        decl = self.get(type_name)
        if node.kind is not NodeKind.ELEMENT:
            raise ValidationError(f"expected an element of type {type_name!r}")
        if node.label != decl.name:
            raise ValidationError(
                f"expected element {decl.name!r}, found {node.label!r}"
            )
        self._validate_attributes(node, decl)
        if decl.content is not None:
            self._validate_simple_content(node, decl)
        else:
            self._validate_children(node, decl)

    def _validate_attributes(self, node: XMLNode, decl: ElementDecl) -> None:
        present = {a.label: a for a in node.attributes()}
        for attr_decl in decl.attributes:
            attr = present.pop(attr_decl.name, None)
            if attr is None:
                if attr_decl.required:
                    raise ValidationError(
                        f"element {decl.name!r} missing required attribute"
                        f" {attr_decl.name!r}"
                    )
                continue
            if not attr_decl.type.accepts(attr.value or ""):
                raise ValidationError(
                    f"attribute {attr_decl.name!r} of {decl.name!r} has invalid"
                    f" {attr_decl.type.value} value {attr.value!r}"
                )
        if present:
            undeclared = ", ".join(sorted(present))
            raise ValidationError(
                f"element {decl.name!r} has undeclared attributes: {undeclared}"
            )

    def _validate_simple_content(self, node: XMLNode, decl: ElementDecl) -> None:
        non_attr = [c for c in node.children if c.kind is not NodeKind.ATTRIBUTE]
        assert decl.content is not None
        if not non_attr:
            # Empty simple content is the lexical empty string.
            if not decl.content.accepts(""):
                raise ValidationError(
                    f"element {decl.name!r} requires {decl.content.value} content"
                )
            return
        if len(non_attr) > 1 or non_attr[0].kind is not NodeKind.TEXT:
            raise ValidationError(
                f"element {decl.name!r} must have simple content only"
            )
        value = non_attr[0].value or ""
        if not decl.content.accepts(value):
            raise ValidationError(
                f"element {decl.name!r} content {value!r} is not a valid"
                f" {decl.content.value}"
            )

    def _validate_children(self, node: XMLNode, decl: ElementDecl) -> None:
        elements = [c for c in node.children if c.kind is NodeKind.ELEMENT]
        if any(c.kind is NodeKind.TEXT for c in node.children) and decl.children:
            raise ValidationError(
                f"element {decl.name!r} has text where children were declared"
            )
        if not decl.children:
            if elements:
                raise ValidationError(
                    f"element {decl.name!r} was declared empty but has children"
                )
            return
        index = 0
        for child_decl in decl.children:
            count = 0
            while (
                index < len(elements)
                and elements[index].label == child_decl.type_name
            ):
                self.validate(elements[index], child_decl.type_name)
                count += 1
                index += 1
            if count < child_decl.min_occurs:
                raise ValidationError(
                    f"element {decl.name!r} requires at least"
                    f" {child_decl.min_occurs} {child_decl.type_name!r}"
                    f" children, found {count}"
                )
            if child_decl.max_occurs is not None and count > child_decl.max_occurs:
                raise ValidationError(
                    f"element {decl.name!r} allows at most"
                    f" {child_decl.max_occurs} {child_decl.type_name!r}"
                    f" children, found {count}"
                )
        if index < len(elements):
            raise ValidationError(
                f"element {decl.name!r} has unexpected child"
                f" {elements[index].label!r}"
            )

    # ------------------------------------------------------------------
    # Static path analysis
    # ------------------------------------------------------------------
    def type_at_path(self, steps: list[str], root_type: str) -> ElementDecl:
        """Element declaration reached by child steps from ``root_type``.

        ``steps`` are element labels *excluding* the root label itself.
        Raises :class:`SchemaError` when the path leaves the schema.
        """
        decl = self.get(root_type)
        for step in steps:
            child = decl.child_decl(step)
            if child is None:
                raise SchemaError(
                    f"type {decl.name!r} has no child {step!r} in schema"
                    f" {self.name!r}"
                )
            decl = self.get(child.type_name)
        return decl

    def max_path_cardinality(self, steps: list[str], root_type: str) -> Optional[int]:
        """Maximum number of nodes a child-step path may select per document.

        Returns None for unbounded. This implements the static side of the
        Definition 3 validity rule: a vertical fragment path must have
        maximum cardinality 1 (or use a positional step, which the caller
        accounts for separately).
        """
        decl = self.get(root_type)
        total: Optional[int] = 1
        for step in steps:
            child = decl.child_decl(step)
            if child is None:
                raise SchemaError(
                    f"type {decl.name!r} has no child {step!r} in schema"
                    f" {self.name!r}"
                )
            if child.max_occurs is None:
                total = None
            elif total is not None:
                total *= child.max_occurs
            decl = self.get(child.type_name)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema(name={self.name!r}, types={len(self._decls)})"
