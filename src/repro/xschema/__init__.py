"""Schema layer: element declarations, validation and path analysis."""

from repro.xschema.schema import (
    UNBOUNDED,
    AttributeDecl,
    ChildDecl,
    ElementDecl,
    Schema,
)
from repro.xschema.types import SimpleType

__all__ = [
    "UNBOUNDED",
    "AttributeDecl",
    "ChildDecl",
    "ElementDecl",
    "Schema",
    "SimpleType",
]
