"""The differential oracle: centralized vs fragmented, across transports.

For each generated case the runner stands up a fresh cluster (one site
per fragment plus a ``central`` baseline site), publishes the collection
both ways, re-verifies the §3.3 correctness rules empirically, and runs
every query once per configuration: centralized, then fragmented in each
requested execution mode (``simulated`` and ``threads`` by default;
``tcp`` adds real site-server processes — the case's repository is
mirrored over the wire and sub-queries travel through sockets;
``tcp-stream`` runs the same processes through the streamed RESULT_CHUNK
pipeline with an adversarially tiny chunk size, so chunk boundaries fall
inside multi-byte UTF-8 characters and the incremental composer's answer
must still be byte-identical). Two comparisons apply:

* **mode** — the composed answers of every execution mode must be
  byte-identical, always. Plan-order composition is a hard contract:
  the middleware aligns partial results by plan index no matter in which
  order the dispatcher's lanes complete.
* **answer** — the fragmented answer must match the centralized one.
  Byte-identical when the composition is an aggregate or a
  reconstruction, or when the plan has at most one sub-query; for
  multi-fragment ``concat`` plans the comparison is an order-insensitive
  line multiset, because fragments legitimately interleave the document
  order of the centralized repository (same policy as
  ``bench.scenarios``).

Two more oracles guard the planning layer itself:

* **plan-order composition** (reported as kind ``mode``) — a concat
  answer must equal the plan-order composition of the round's *own*
  per-lane partial results; a dispatcher that mis-aligns completed
  sub-queries corrupts every mode identically now that all modes share
  the one plan executor, so the contract is checked directly instead of
  by cross-mode comparison alone.
* **plan** — planning must be deterministic (two ``explain`` calls
  render the identical physical plan) and the rendered plan must
  round-trip through its JSON-serialized form.

Execution errors must be symmetric: a query that raises centrally must
raise the same error class against the fragmented repository, and vice
versa — an asymmetric error is reported as a mismatch of kind
``error``.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cluster.site import Cluster, Site
from repro.fuzz.generator import CaseSpec, GeneratedCase, generate_case, spec_for_iteration
from repro.partix.catalog import FragmentAllocation
from repro.partix.correctness import verify_fragmentation
from repro.partix.middleware import Partix, PartixResult
from repro.plan.executor import ExecutionMode
from repro.plan.explain import plan_from_dict

CENTRAL_SITE = "central"
#: Extra site holding one replica of every fragment in ``kill_site``
#: mode, so killing a primary's server leaves a live copy reachable.
MIRROR_SITE = "mirror"
#: Extra empty site added in ``migrate`` mode: the mid-run migration
#: splits or moves a fragment onto it, so the second pass exercises a
#: placement the first pass never saw.
SPARE_SITE = "spare"
EXECUTION_MODES = ("simulated", "threads")
ALL_EXECUTION_MODES = ("simulated", "threads", "tcp", "tcp-stream")

#: Chunk size forced when a streamed mode is under test. Tiny on
#: purpose: with 7-byte RESULT_CHUNK frames almost every multi-byte
#: UTF-8 character in a result is split across a chunk boundary, and the
#: coordinator's spill buffers overflow to disk constantly — the two
#: nastiest streaming code paths exercised on every query.
ADVERSARIAL_CHUNK_BYTES = 7


@dataclass
class Mismatch:
    """One oracle violation observed while running a case."""

    kind: str  # "answer" | "mode" | "plan" | "correctness" | "error" | "failover" | "migrate" | "index" | "shard"
    detail: str
    query_index: Optional[int] = None
    query: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "query_index": self.query_index,
            "query": self.query,
        }


@dataclass
class CaseOutcome:
    """Everything the oracle observed for one case."""

    spec: CaseSpec
    mismatches: list[Mismatch] = field(default_factory=list)
    queries_run: int = 0
    queries_skipped: int = 0
    comparisons: int = 0
    composition_kinds: Counter = field(default_factory=Counter)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def mismatch_kinds(self) -> tuple[str, ...]:
        """Stable fingerprint used by the minimizer to match failures."""
        return tuple(sorted({m.kind for m in self.mismatches}))

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "queries_run": self.queries_run,
            "queries_skipped": self.queries_skipped,
            "comparisons": self.comparisons,
            "composition_kinds": dict(self.composition_kinds),
            "mismatches": [m.to_dict() for m in self.mismatches],
            "notes": self.notes,
        }


def _diff_snippet(left: str, right: str, limit: int = 240) -> str:
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    for index, (a, b) in enumerate(zip(left_lines, right_lines)):
        if a != b:
            return (
                f"first differing line {index}:"
                f" {a[:limit]!r} vs {b[:limit]!r}"
            )
    return (
        f"line counts differ: {len(left_lines)} vs {len(right_lines)}"
        f" (tail: {left_lines[len(right_lines):len(right_lines)+1]!r}"
        f" vs {right_lines[len(left_lines):len(left_lines)+1]!r})"
    )


def _signature(text: str) -> tuple[str, ...]:
    """Order-insensitive line multiset (fragments interleave doc order)."""
    return tuple(sorted(line for line in text.splitlines() if line.strip()))


def run_case(
    spec: CaseSpec,
    case: Optional[GeneratedCase] = None,
    partix_factory: Optional[Callable[[Cluster], Partix]] = None,
    modes: Sequence[str] = EXECUTION_MODES,
    kill_site: bool = False,
    migrate: bool = False,
    indexes: bool = False,
    shards: bool = False,
) -> CaseOutcome:
    """Generate (unless given) and differentially execute one case.

    ``indexes`` is the index-pushdown oracle: every compared query is
    additionally run twice per mode with the per-query index override
    forced on and forced off (``Partix.execute(use_indexes=...)``), and
    the three answers — index probes everywhere, full scans everywhere,
    and the plan's own per-lane choice — must be byte-identical (same
    plan, same lane order, so not even concat interleaving may differ).
    A divergence is reported as a mismatch of kind ``index``.

    ``shards`` is the intra-site parallelism oracle: the cluster is
    built with a per-site worker pool (``shard_workers=2``) and every
    compared query is additionally run twice per mode with the per-lane
    shard degree forced serial and forced sharded
    (``Partix.execute(shard_degree=...)``); both answers must reproduce
    the default run's byte-for-byte (a site may decline sharding — a
    non-shardable query still forces the serial path — but the answer
    may never change). A divergence is a mismatch of kind ``shard``.

    ``partix_factory`` lets tests swap in a middleware with a tampered
    dispatcher — that is how the injected-bug acceptance test proves the
    oracle actually bites. ``modes`` selects the fragmented execution
    modes to compare; including ``"tcp"`` spawns real site-server
    processes for the case (mirrored over the wire, reaped afterwards).

    ``kill_site`` is the failover oracle (requires a tcp mode): every
    fragment is published twice — primary on its round-robin site plus a
    replica on a dedicated ``mirror`` site — the queries run once
    healthy, then the first primary's server process is killed and the
    same queries run again. The answers must still converge to the
    centralized baseline through the replica: an asymmetric error or a
    differing answer is caught by the standard oracles, and if the dead
    site was targeted but no sub-query ever failed over (nor was the
    site ejected by health tracking) a mismatch of kind ``failover`` is
    reported. Killing between the passes means the coordinator's pooled
    sockets to the victim die mid-use — the retry loop discovers the
    corpse on a live connection, not on a fresh connect.

    ``migrate`` is the online-rebalancing oracle (any execution mode):
    the queries run once against the published design, then a live
    migration fires — the first splittable horizontal fragment is split
    onto a dedicated empty ``spare`` site, falling back to moving the
    first fragment there — and the same queries run again against the
    new catalog version. Both passes face the standard oracles, so at
    least one query is compared on *each* catalog version and the
    answers must keep converging to the centralized baseline; a
    migration that fails to complete (or to bump the catalog version) is
    reported as a mismatch of kind ``migrate``. A plan cache is
    installed so the version bump also exercises cache invalidation.
    """
    outcome = CaseOutcome(spec=spec)
    if kill_site and migrate:
        raise ValueError(
            "kill_site and migrate are mutually exclusive oracles:"
            " a mid-run migration needs every site alive"
        )
    if case is None:
        case = generate_case(spec)
    outcome.notes.extend(case.notes)

    parsed_modes = [ExecutionMode.parse(mode) for mode in modes]
    if kill_site and not any(mode.transport == "tcp" for mode in parsed_modes):
        raise ValueError(
            "kill_site=True needs a tcp execution mode: killing a site"
            " process only perturbs the networked transports"
        )

    report = verify_fragmentation(case.design, case.collection)
    if not report.ok:
        for violation in report.violations:
            outcome.mismatches.append(
                Mismatch(kind="correctness", detail=violation)
            )
        return outcome

    shard_workers = 2 if shards else 0
    cluster = Cluster.with_sites(
        len(case.design), prefix="site", shard_workers=shard_workers
    )
    if kill_site:
        cluster.add(Site(MIRROR_SITE, shard_workers=shard_workers))
    partix = (
        partix_factory(cluster) if partix_factory is not None else Partix(cluster)
    )
    allocations = None
    victim = None
    if kill_site:
        # Mirror the publisher's default round-robin placement for the
        # primaries (the mirror site must not absorb one), then add one
        # replica of every fragment on the mirror site. Victim: the
        # first primary — killing it leaves each of its fragments with
        # exactly one live copy.
        primaries = [f"site{index}" for index in range(len(case.design))]
        allocations = []
        for index, fragment in enumerate(case.design.fragments):
            allocations.append(
                FragmentAllocation(
                    fragment=fragment.name,
                    site=primaries[index % len(primaries)],
                    stored_collection=fragment.name,
                )
            )
            allocations.append(
                FragmentAllocation(
                    fragment=fragment.name,
                    site=MIRROR_SITE,
                    stored_collection=fragment.name,
                )
            )
        victim = primaries[0]
    partix.publish(
        case.collection,
        case.design,
        allocations=allocations,
        frag_mode=case.frag_mode,
    )
    if migrate:
        # Added *after* publish so the round-robin placement ignores it:
        # the spare site is empty until the mid-run migration fills it.
        cluster.add(Site(SPARE_SITE))
    cluster.add(Site(CENTRAL_SITE))
    partix.publish_centralized(case.collection, CENTRAL_SITE)

    try:
        if any(mode.streaming for mode in parsed_modes):
            # Adversarial chunking: see ADVERSARIAL_CHUNK_BYTES. Must be
            # set before start_tcp so clients negotiate it.
            partix.chunk_bytes = ADVERSARIAL_CHUNK_BYTES
        if any(mode.transport == "tcp" for mode in parsed_modes):
            partix.start_tcp()
        if migrate:
            _run_migrate_case(
                partix, case, outcome, modes, indexes=indexes, shards=shards
            )
            return outcome
        if not kill_site:
            for index, query in case.active_queries:
                _run_query(
                    partix, index, query, outcome, modes,
                    indexes=indexes, shards=shards,
                )
            return outcome

        tcp_modes = [
            mode
            for mode, parsed in zip(modes, parsed_modes)
            if parsed.transport == "tcp"
        ]
        # Pass 1 — healthy run: standard oracles, and note whether any
        # tcp plan actually routed a lane to the victim (pruning can
        # legitimately skip its fragment for some queries).
        victim_targeted = False
        for index, query in case.active_queries:
            results = _run_query(
                partix, index, query, outcome, modes,
                indexes=indexes, shards=shards,
            )
            for mode in tcp_modes:
                result = results.get(mode)
                if result is not None and result.plan is not None and any(
                    subquery.site == victim
                    for subquery in result.plan.subqueries
                ):
                    victim_targeted = True

        partix.tcp.kill(victim)
        outcome.notes.append(
            f"killed tcp site {victim!r} between passes"
            " (pooled sockets die mid-use)"
        )

        # Pass 2 — the victim is dead: answers must still converge to
        # the centralized baseline through the mirror replica.
        failovers = 0
        for index, query in case.active_queries:
            results = _run_query(
                partix, index, query, outcome, modes,
                indexes=indexes, shards=shards,
            )
            failovers += sum(
                results[mode].failover_count
                for mode in tcp_modes
                if mode in results
            )
        outcome.notes.append(f"replica failovers observed: {failovers}")
        if (
            victim_targeted
            and failovers == 0
            and partix.site_health is not None
            and not partix.site_health.is_ejected(victim)
        ):
            outcome.mismatches.append(
                Mismatch(
                    kind="failover",
                    detail=(
                        f"site {victim!r} was killed while hosting primary"
                        " lanes, yet no tcp sub-query failed over to its"
                        " replica and the site was never ejected"
                    ),
                )
            )
    finally:
        partix.stop_tcp()
    return outcome


def _run_migrate_case(
    partix: Partix,
    case: GeneratedCase,
    outcome: CaseOutcome,
    modes: Sequence[str],
    indexes: bool = False,
    shards: bool = False,
) -> None:
    """Two differential passes with a live migration fired in between."""
    from repro.plan.cache import PlanCache

    if partix.plan_cache is None:
        # The version bump must also invalidate cached plans; give the
        # middleware a cache so both passes plan through it.
        partix.plan_cache = PlanCache()
    catalog = partix.distribution_catalog
    version_before = catalog.version

    for index, query in case.active_queries:
        _run_query(
            partix, index, query, outcome, modes, indexes=indexes, shards=shards
        )
    first_pass = outcome.queries_run

    report = _fire_migration(partix, case, outcome)
    if report is None or not report.completed:
        outcome.mismatches.append(
            Mismatch(
                kind="migrate",
                detail="no migration could be performed on the case design",
            )
        )
        return
    if catalog.version == version_before:
        outcome.mismatches.append(
            Mismatch(
                kind="migrate",
                detail=(
                    f"migration reported completion but the catalog version"
                    f" stayed at {version_before}"
                ),
            )
        )
        return

    for index, query in case.active_queries:
        _run_query(
            partix, index, query, outcome, modes, indexes=indexes, shards=shards
        )
    outcome.notes.append(
        f"queries compared on catalog v{version_before}: {first_pass},"
        f" on v{catalog.version}: {outcome.queries_run - first_pass}"
    )
    stats = partix.plan_cache.stats()
    outcome.notes.append(
        f"plan cache across the migration: {stats}"
    )


def _fire_migration(partix: Partix, case: GeneratedCase, outcome: CaseOutcome):
    """Split the first splittable horizontal fragment onto the spare
    site, else move the first fragment there. Returns the report, or
    None when every migration attempt failed."""
    from repro.errors import RebalanceError
    from repro.partix.fragments import HorizontalFragment
    from repro.rebalance import Rebalancer

    rebalancer = Rebalancer(partix)
    collection = case.collection.name
    catalog = partix.distribution_catalog
    for fragment in case.design.fragments:
        if not isinstance(fragment, HorizontalFragment):
            continue
        primary = catalog.allocation(collection, fragment.name)
        try:
            report = rebalancer.split(
                collection,
                fragment.name,
                target_sites=(primary.site, SPARE_SITE),
            )
        except RebalanceError:
            continue
        outcome.notes.append(
            f"migration: split {fragment.name!r} at {report.split_path}"
            f" ∈ {report.split_values} → {report.new_fragments}"
            f" ({report.documents_moved} documents, spare site got one half)"
        )
        return report
    first = case.design.fragments[0].name
    try:
        report = rebalancer.move(collection, first, SPARE_SITE)
    except RebalanceError as error:
        outcome.notes.append(f"migration fallback failed: {error}")
        return None
    outcome.notes.append(
        f"migration: moved {first!r} to the spare site"
        f" ({report.documents_moved} documents)"
    )
    return report


def _run_query(
    partix: Partix,
    index: int,
    query: str,
    outcome: CaseOutcome,
    modes: Sequence[str],
    indexes: bool = False,
    shards: bool = False,
) -> dict[str, PartixResult]:
    """Run one query through every configuration; returns the successful
    fragmented results keyed by mode (empty on error paths)."""
    central_text, central_error = _attempt(
        lambda: partix.execute_centralized(query, CENTRAL_SITE).result_text
    )
    by_mode: dict[str, str] = {}
    results_by_mode: dict[str, PartixResult] = {}
    for mode in modes:
        result, error = _attempt(
            lambda mode=mode: partix.execute(
                query, collection="Cfuzz", execution_mode=mode
            )
        )
        text = result.result_text if result is not None else None
        if (error is None) != (central_error is None) or (
            error is not None
            and central_error is not None
            and type(error) is not type(central_error)
        ):
            outcome.mismatches.append(
                Mismatch(
                    kind="error",
                    detail=(
                        f"asymmetric failure in mode {mode!r}:"
                        f" centralized {central_error!r},"
                        f" fragmented {error!r}"
                    ),
                    query_index=index,
                    query=query,
                )
            )
            return {}
        if text is not None:
            by_mode[mode] = text
            results_by_mode[mode] = result

    if central_error is not None:
        # Same error everywhere: consistent, but nothing to compare.
        outcome.queries_skipped += 1
        outcome.notes.append(
            f"query {index} raises {type(central_error).__name__} in all"
            " configurations"
        )
        return {}

    outcome.queries_run += 1
    plan = partix.explain(query, "Cfuzz")
    outcome.composition_kinds[plan.composition.kind] += 1
    _check_plan_equivalence(partix, query, plan, outcome, index)
    _check_plan_order(partix, results_by_mode, outcome, index, query)

    reference_mode = modes[0]
    simulated = by_mode[reference_mode]
    for mode in modes[1:]:
        outcome.comparisons += 1
        if by_mode[mode] != simulated:
            outcome.mismatches.append(
                Mismatch(
                    kind="mode",
                    detail=(
                        f"{reference_mode} vs {mode} answers differ;"
                        f" {_diff_snippet(simulated, by_mode[mode])}"
                    ),
                    query_index=index,
                    query=query,
                )
            )

    outcome.comparisons += 1
    byte_strict = (
        plan.composition.kind in ("aggregate", "reconstruct")
        or len(plan.subqueries) <= 1
    )
    if byte_strict:
        matches = simulated == central_text
    else:
        matches = _signature(simulated) == _signature(central_text)
    if not matches:
        policy = "byte-identical" if byte_strict else "line-multiset"
        outcome.mismatches.append(
            Mismatch(
                kind="answer",
                detail=(
                    f"centralized vs fragmented ({policy},"
                    f" composition={plan.composition.kind},"
                    f" subqueries={len(plan.subqueries)});"
                    f" {_diff_snippet(central_text, simulated)}"
                ),
                query_index=index,
                query=query,
            )
        )
    if indexes:
        _check_index_differential(
            partix, query, by_mode, outcome, index, modes
        )
    if shards:
        _check_shard_differential(
            partix, query, by_mode, outcome, index, modes
        )
    return results_by_mode


def _check_index_differential(
    partix: Partix,
    query: str,
    by_mode: dict,
    outcome: CaseOutcome,
    index: int,
    modes: Sequence[str],
) -> None:
    """The index-pushdown oracle: per mode, the same query re-run with
    the per-query index override forced on and forced off must both
    reproduce the default run's answer byte-for-byte. The override
    leaves the plan (and so the lane order) untouched — only each
    site's access path flips — so even multi-fragment concat answers
    may not differ by a byte. An index probe returning an unsound
    candidate set, or label verification pruning a matching document,
    shows up here as a mismatch of kind ``index``.
    """
    for mode in modes:
        if mode not in by_mode:
            continue
        default_text = by_mode[mode]
        for forced in (True, False):
            text, error = _attempt(
                lambda mode=mode, forced=forced: partix.execute(
                    query,
                    collection="Cfuzz",
                    execution_mode=mode,
                    use_indexes=forced,
                ).result_text
            )
            outcome.comparisons += 1
            label = "on" if forced else "off"
            if error is not None:
                outcome.mismatches.append(
                    Mismatch(
                        kind="index",
                        detail=(
                            f"mode {mode!r} with indexes forced {label}"
                            f" raised {error!r} although the default run"
                            " answered"
                        ),
                        query_index=index,
                        query=query,
                    )
                )
            elif text != default_text:
                outcome.mismatches.append(
                    Mismatch(
                        kind="index",
                        detail=(
                            f"mode {mode!r} answers differ with indexes"
                            f" forced {label};"
                            f" {_diff_snippet(default_text, text)}"
                        ),
                        query_index=index,
                        query=query,
                    )
                )


def _check_shard_differential(
    partix: Partix,
    query: str,
    by_mode: dict,
    outcome: CaseOutcome,
    index: int,
    modes: Sequence[str],
) -> None:
    """The intra-site parallelism oracle: per mode, the same query
    re-run with the per-lane shard degree forced serial (``1``) and
    forced sharded (``2``) must both reproduce the default run's answer
    byte-for-byte. Forcing the degree only changes how each site
    evaluates its own lane — candidate slices in worker processes with
    the partials folded back in slice order — so the plan, the lane
    order, and every byte of the composed answer must be untouched. A
    fold that reorders partials, double-counts an aggregate, or loses a
    shard shows up here as a mismatch of kind ``shard``.
    """
    for mode in modes:
        if mode not in by_mode:
            continue
        default_text = by_mode[mode]
        for degree in (1, 2):
            text, error = _attempt(
                lambda mode=mode, degree=degree: partix.execute(
                    query,
                    collection="Cfuzz",
                    execution_mode=mode,
                    shard_degree=degree,
                ).result_text
            )
            outcome.comparisons += 1
            label = "serial" if degree == 1 else f"degree {degree}"
            if error is not None:
                outcome.mismatches.append(
                    Mismatch(
                        kind="shard",
                        detail=(
                            f"mode {mode!r} with shards forced {label}"
                            f" raised {error!r} although the default run"
                            " answered"
                        ),
                        query_index=index,
                        query=query,
                    )
                )
            elif text != default_text:
                outcome.mismatches.append(
                    Mismatch(
                        kind="shard",
                        detail=(
                            f"mode {mode!r} answers differ with shards"
                            f" forced {label};"
                            f" {_diff_snippet(default_text, text)}"
                        ),
                        query_index=index,
                        query=query,
                    )
                )


def _check_plan_equivalence(
    partix: Partix,
    query: str,
    plan,
    outcome: CaseOutcome,
    index: int,
) -> None:
    """Planning must be deterministic and explain must round-trip.

    Two independent ``explain`` calls have to render the identical
    physical plan (lowering is pure given the catalog), and the rendered
    plan must survive ``to_dict`` → JSON → ``plan_from_dict``.
    """
    rendered = plan.render()
    replanned = partix.explain(query, "Cfuzz")
    if replanned.render() != rendered:
        outcome.mismatches.append(
            Mismatch(
                kind="plan",
                detail=(
                    "planning is nondeterministic: two explain calls"
                    f" rendered different plans; {_diff_snippet(rendered, replanned.render())}"
                ),
                query_index=index,
                query=query,
            )
        )
    roundtripped = plan_from_dict(json.loads(json.dumps(plan.to_dict())))
    if roundtripped.render() != rendered:
        outcome.mismatches.append(
            Mismatch(
                kind="plan",
                detail=(
                    "explain does not round-trip through its serialized"
                    f" form; {_diff_snippet(rendered, roundtripped.render())}"
                ),
                query_index=index,
                query=query,
            )
        )


def _check_plan_order(
    partix: Partix,
    results_by_mode: dict,
    outcome: CaseOutcome,
    index: int,
    query: str,
) -> None:
    """The plan-order composition contract, checked directly.

    A concat answer must equal the plan-order composition of the round's
    own per-lane partial results. Every mode runs through the same plan
    executor, so a dispatcher that mis-aligns completions corrupts all
    modes identically — cross-mode comparison alone can no longer see
    it. The reference ordering is recovered from each execution's own
    ``fragment`` (stamped by the transport from the sub-query itself),
    never from list positions, so a merely reordered completion log stays
    benign while a mis-*aligned* one is caught. Streamed rounds are
    skipped: their executions carry no partial text (the bytes went to
    the chunk sink).
    """
    for mode, result in results_by_mode.items():
        plan = result.plan
        if (
            result.streamed
            or plan is None
            or plan.composition.kind != "concat"
            or len(plan.subqueries) <= 1
        ):
            continue
        position = {
            subquery.fragment: order
            for order, subquery in enumerate(plan.subqueries)
        }
        ordered = sorted(
            result.round.executions,
            key=lambda execution: position.get(
                execution.fragment, len(position)
            ),
        )
        expected = partix.composer.compose(
            plan.composition,
            [
                (None, execution.result.result_text)
                for execution in ordered
            ],
        ).result_text
        if result.result_text != expected:
            outcome.mismatches.append(
                Mismatch(
                    kind="mode",
                    detail=(
                        f"mode {mode!r} composed answer does not follow"
                        f" plan order; {_diff_snippet(expected, result.result_text)}"
                    ),
                    query_index=index,
                    query=query,
                )
            )


def _attempt(thunk: Callable[[], str]) -> tuple[Optional[str], Optional[Exception]]:
    try:
        return thunk(), None
    except Exception as error:  # noqa: BLE001 — the oracle compares failures
        return None, error


def run_fuzz(
    seed: int,
    iterations: int,
    minimize: bool = True,
    repro_dir: Optional[str] = None,
    partix_factory: Optional[Callable[[Cluster], Partix]] = None,
    max_failures: int = 5,
    modes: Sequence[str] = EXECUTION_MODES,
    kill_site: bool = False,
    migrate: bool = False,
    indexes: bool = False,
    shards: bool = False,
) -> dict:
    """Run the full differential session; returns a JSON-able summary.

    Stops early once ``max_failures`` distinct failing cases have been
    collected (each one is expensive: it triggers minimization and a
    written reproducer when ``repro_dir`` is set). ``kill_site`` runs
    every case through the failover oracle, ``migrate`` through the
    online-rebalancing oracle, ``indexes`` through the index-pushdown
    oracle, ``shards`` through the intra-site parallelism oracle (see
    :func:`run_case`).
    """
    summary: dict = {
        "seed": seed,
        "iterations": iterations,
        "execution_modes": list(modes),
        "kill_site": kill_site,
        "migrate": migrate,
        "indexes": indexes,
        "shards": shards,
        "migrations_completed": 0,
        "cases": 0,
        "queries_run": 0,
        "queries_skipped": 0,
        "comparisons": 0,
        "families": {},
        "composition_kinds": {},
        "failures": [],
        "ok": True,
    }
    families: Counter = Counter()
    kinds: Counter = Counter()
    for iteration in range(iterations):
        spec = spec_for_iteration(seed, iteration)
        outcome = run_case(
            spec,
            partix_factory=partix_factory,
            modes=modes,
            kill_site=kill_site,
            migrate=migrate,
            indexes=indexes,
            shards=shards,
        )
        if migrate and not any(
            m.kind == "migrate" for m in outcome.mismatches
        ):
            summary["migrations_completed"] += 1
        summary["cases"] += 1
        summary["queries_run"] += outcome.queries_run
        summary["queries_skipped"] += outcome.queries_skipped
        summary["comparisons"] += outcome.comparisons
        families[spec.family] += 1
        kinds.update(outcome.composition_kinds)
        if outcome.ok:
            continue
        summary["ok"] = False
        failure: dict = {"iteration": iteration, **outcome.to_dict()}
        if minimize or repro_dir is not None:
            from repro.fuzz.minimize import minimize_spec, write_repro

            minimized = (
                minimize_spec(
                    spec,
                    outcome,
                    partix_factory=partix_factory,
                    modes=modes,
                    kill_site=kill_site,
                    migrate=migrate,
                    indexes=indexes,
                    shards=shards,
                )
                if minimize
                else outcome
            )
            failure["minimized"] = minimized.to_dict()
            if repro_dir is not None:
                failure["repro_path"] = write_repro(minimized, repro_dir)
        summary["failures"].append(failure)
        if len(summary["failures"]) >= max_failures:
            summary["stopped_early_at"] = iteration
            break
    summary["families"] = dict(families)
    summary["composition_kinds"] = dict(kinds)
    return summary
