"""CLI: ``python -m repro.fuzz --seed N --iterations K``.

Writes the JSON summary to stdout (or ``--output``), a human-readable
digest to stderr, and exits non-zero when the oracle found mismatches —
the contract the CI ``fuzz-smoke`` job relies on. ``--replay`` re-runs a
single spec (as emitted in reproducer files) instead of a whole session.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.reporting import format_kv_table
from repro.fuzz.generator import CaseSpec
from repro.fuzz.runner import (
    ALL_EXECUTION_MODES,
    EXECUTION_MODES,
    run_case,
    run_fuzz,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of PartiX: centralized vs"
        " fragmented answers across execution modes.",
    )
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--iterations", type=int, default=50)
    parser.add_argument(
        "--repro-dir",
        default="tests/repros",
        help="where minimized reproducers are written (default: %(default)s)",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="report failures without shrinking them",
    )
    parser.add_argument(
        "--no-repros",
        action="store_true",
        help="do not write reproducer files",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many failing cases (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        default="-",
        help="file for the JSON summary ('-' = stdout, the default)",
    )
    parser.add_argument(
        "--replay",
        metavar="SPEC_JSON",
        help="run one CaseSpec (JSON dict) instead of a fuzz session",
    )
    parser.add_argument(
        "--modes",
        default=",".join(EXECUTION_MODES),
        help="comma-separated fragmented execution modes to compare"
        " (subset of %s; default: %%(default)s)"
        % "/".join(ALL_EXECUTION_MODES),
    )
    parser.add_argument(
        "--kill-site",
        action="store_true",
        help="failover oracle: replicate every fragment on a mirror"
        " site, kill one primary's server mid-case, and require the"
        " answers to still converge via the replica (needs a tcp mode)",
    )
    parser.add_argument(
        "--migrate",
        action="store_true",
        help="online-rebalancing oracle: run every case once, fire a"
        " live split/move migration onto a spare site, run it again —"
        " answers must converge on both catalog versions",
    )
    parser.add_argument(
        "--indexes",
        action="store_true",
        help="index-pushdown oracle: re-run every compared query per"
        " mode with the per-query index override forced on and off —"
        " all three answers must be byte-identical",
    )
    parser.add_argument(
        "--shards",
        action="store_true",
        help="intra-site parallelism oracle: give every site a worker"
        " pool and re-run every compared query per mode with the shard"
        " degree forced serial and forced sharded — all three answers"
        " must be byte-identical",
    )
    options = parser.parse_args(argv)

    modes = tuple(
        mode.strip() for mode in options.modes.split(",") if mode.strip()
    )
    unknown = [mode for mode in modes if mode not in ALL_EXECUTION_MODES]
    if not modes or unknown:
        parser.error(
            f"--modes must name at least one of"
            f" {', '.join(ALL_EXECUTION_MODES)}"
            + (f" (got {', '.join(unknown)})" if unknown else "")
        )
    if options.kill_site and not any(mode.startswith("tcp") for mode in modes):
        parser.error("--kill-site requires a tcp mode in --modes")
    if options.kill_site and options.migrate:
        parser.error("--kill-site and --migrate are mutually exclusive")

    if options.replay is not None:
        outcome = run_case(
            CaseSpec.from_dict(json.loads(options.replay)),
            modes=modes,
            kill_site=options.kill_site,
            migrate=options.migrate,
            indexes=options.indexes,
            shards=options.shards,
        )
        payload = outcome.to_dict()
        ok = outcome.ok
    else:
        payload = run_fuzz(
            options.seed,
            options.iterations,
            minimize=not options.no_minimize,
            repro_dir=None if options.no_repros else options.repro_dir,
            max_failures=options.max_failures,
            modes=modes,
            kill_site=options.kill_site,
            migrate=options.migrate,
            indexes=options.indexes,
            shards=options.shards,
        )
        ok = payload["ok"]
        _print_digest(payload)

    text = json.dumps(payload, indent=2, sort_keys=True)
    if options.output == "-":
        print(text)
    else:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"summary written to {options.output}", file=sys.stderr)
    return 0 if ok else 1


def _print_digest(summary: dict) -> None:
    rows = [
        ("cases", summary["cases"]),
        ("queries compared", summary["queries_run"]),
        ("queries skipped (symmetric errors)", summary["queries_skipped"]),
        ("comparisons", summary["comparisons"]),
    ]
    rows.extend(
        (f"family {name}", count)
        for name, count in sorted(summary["families"].items())
    )
    rows.extend(
        (f"composition {kind}", count)
        for kind, count in sorted(summary["composition_kinds"].items())
    )
    if summary.get("migrate"):
        rows.append(("migrations completed", summary["migrations_completed"]))
    rows.append(("failures", len(summary["failures"])))
    title = (
        f"repro.fuzz — seed {summary['seed']},"
        f" {summary['iterations']} iterations,"
        f" modes {'/'.join(summary['execution_modes'])}"
        + (" [kill-site]" if summary.get("kill_site") else "")
        + (" [migrate]" if summary.get("migrate") else "")
        + (" [indexes]" if summary.get("indexes") else "")
        + (" [shards]" if summary.get("shards") else "")
    )
    print(format_kv_table(title, rows), file=sys.stderr)
    for failure in summary["failures"]:
        spec = failure.get("minimized", failure)["spec"]
        kinds = sorted({m["kind"] for m in failure["mismatches"]})
        line = (
            f"FAILURE at iteration {failure['iteration']}:"
            f" kinds={','.join(kinds)} minimized-spec={json.dumps(spec)}"
        )
        if "repro_path" in failure:
            line += f" repro={failure['repro_path']}"
        print(line, file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
