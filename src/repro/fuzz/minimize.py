"""Greedy case minimization and reproducer emission.

A failing fuzz case is rarely minimal — ten documents, four fragments and
five queries obscure the two documents and one predicate that actually
matter. :func:`minimize_spec` shrinks the *spec* (never the materialized
artifacts — regeneration keeps every reproducer a one-line
``CaseSpec.from_dict``) while the failure fingerprint (the set of
mismatch kinds) is preserved:

1. pin the failing query (``query_index``);
2. repeatedly apply the generator's shrink moves — halve/decrement the
   document count, collapse to two fragments, strip the ``where`` clause,
   simplify the ``return`` — accepting any move that still fails the same
   way, until no move applies (a greedy fixpoint).

:func:`write_repro` then renders the minimal spec as a ready-to-run
pytest file under ``tests/repros/`` so the failure becomes a committed
regression test.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace
from typing import Callable, Optional

from repro.fuzz.generator import CaseSpec, shrink_candidates
from repro.fuzz.runner import CaseOutcome, run_case

#: Upper bound on shrink attempts; each attempt re-runs a full case.
DEFAULT_BUDGET = 40


def minimize_spec(
    spec: CaseSpec,
    outcome: CaseOutcome,
    partix_factory: Optional[Callable] = None,
    budget: int = DEFAULT_BUDGET,
    modes: Optional[tuple] = None,
    kill_site: bool = False,
    migrate: bool = False,
    indexes: bool = False,
    shards: bool = False,
) -> CaseOutcome:
    """Shrink ``spec`` greedily while it keeps failing the same way.

    Returns the outcome of the smallest reproducing spec found (the
    original ``outcome`` if nothing smaller reproduces). The failure
    fingerprint is :meth:`CaseOutcome.mismatch_kinds`; a shrunk case must
    fail with the same kinds to be accepted — a *different* failure is a
    different bug and would make the reproducer lie about its origin.
    """
    fingerprint = outcome.mismatch_kinds()
    best_spec, best_outcome = spec, outcome
    attempts = 0

    # Pin the failing query first: it usually removes 80% of the case.
    if best_spec.query_index is None:
        failing = [m.query_index for m in outcome.mismatches if m.query_index is not None]
        if failing:
            candidate = replace(best_spec, query_index=failing[0])
            attempts += 1
            reproduced = _reproduces(
                candidate, fingerprint, partix_factory, modes, kill_site,
                migrate, indexes, shards,
            )
            if reproduced is not None:
                best_spec, best_outcome = candidate, reproduced

    progress = True
    while progress and attempts < budget:
        progress = False
        for candidate in shrink_candidates(best_spec):
            if attempts >= budget:
                break
            attempts += 1
            reproduced = _reproduces(
                candidate, fingerprint, partix_factory, modes, kill_site,
                migrate, indexes, shards,
            )
            if reproduced is not None:
                best_spec, best_outcome = candidate, reproduced
                progress = True
                break  # restart from the new, smaller spec
    return best_outcome


def _reproduces(
    spec: CaseSpec,
    fingerprint: tuple[str, ...],
    partix_factory: Optional[Callable],
    modes: Optional[tuple] = None,
    kill_site: bool = False,
    migrate: bool = False,
    indexes: bool = False,
    shards: bool = False,
) -> Optional[CaseOutcome]:
    try:
        if modes is None:
            outcome = run_case(
                spec,
                partix_factory=partix_factory,
                kill_site=kill_site,
                migrate=migrate,
                indexes=indexes,
                shards=shards,
            )
        else:
            outcome = run_case(
                spec,
                partix_factory=partix_factory,
                modes=modes,
                kill_site=kill_site,
                migrate=migrate,
                indexes=indexes,
                shards=shards,
            )
    except Exception:  # noqa: BLE001 — a crashing shrink is just rejected
        return None
    if not outcome.ok and outcome.mismatch_kinds() == fingerprint:
        return outcome
    return None


_REPRO_TEMPLATE = '''"""Minimized fuzz reproducer (auto-written by repro.fuzz).

Failure fingerprint: {kinds}
{details}
Regenerate / rerun by hand:

    PYTHONPATH=src python -m repro.fuzz --replay '{spec_json}'
"""

from repro.fuzz import CaseSpec, run_case

SPEC = CaseSpec.from_dict({spec_dict})


def test_fuzz_repro_{digest}():
    outcome = run_case(SPEC)
    assert outcome.ok, "\\n".join(
        f"{{m.kind}}: {{m.detail}}" for m in outcome.mismatches
    )
'''


def write_repro(outcome: CaseOutcome, directory: str) -> str:
    """Write ``outcome`` as a pytest file; returns the path.

    The file name is a stable digest of the spec, so re-running the same
    fuzz session overwrites rather than accumulates.
    """
    spec_dict = outcome.spec.to_dict()
    spec_json = json.dumps(spec_dict, sort_keys=True)
    digest = hashlib.sha1(spec_json.encode("utf-8")).hexdigest()[:10]
    details = "".join(
        f"  {m.kind}: {m.detail}\n" for m in outcome.mismatches[:3]
    )
    body = _REPRO_TEMPLATE.format(
        kinds=", ".join(outcome.mismatch_kinds()),
        details=details,
        spec_json=spec_json,
        spec_dict=json.dumps(spec_dict, indent=8).replace("null", "None")
        .replace("true", "True").replace("false", "False"),
        digest=digest,
    )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"test_repro_{digest}.py")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
    return path
