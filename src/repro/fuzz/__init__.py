"""Differential correctness fuzzing for the PartiX stack.

The paper's entire argument rests on a correctness contract — every
fragmentation design must be complete, disjoint and reconstructible, and
the decomposer/composer/dispatcher pipeline must return the same answer a
centralized repository would. This package turns that contract into a
standing randomized oracle:

* :mod:`repro.fuzz.generator` — a seeded generator of random document
  collections (ToXgene templates), random horizontal/vertical/hybrid
  fragmentation designs over them, and random queries from the supported
  XQuery subset, all derived deterministically from a :class:`CaseSpec`;
* :mod:`repro.fuzz.runner` — the differential oracle: each query runs
  centralized and against the fragmented repository in both execution
  modes, answers are compared, and the §3.3 correctness rules are
  re-verified empirically;
* :mod:`repro.fuzz.minimize` — a greedy case minimizer that shrinks a
  failing (collection, design, query) triple to a minimal reproducer and
  writes it as a ready-to-run pytest file under ``tests/repros/``;
* ``python -m repro.fuzz --seed N --iterations K`` — the CLI, emitting a
  JSON summary (the CI ``fuzz-smoke`` job runs it on every push).
"""

from repro.fuzz.generator import CaseSpec, GeneratedCase, generate_case, spec_for_iteration
from repro.fuzz.minimize import minimize_spec, write_repro
from repro.fuzz.runner import CaseOutcome, Mismatch, run_case, run_fuzz

__all__ = [
    "CaseSpec",
    "GeneratedCase",
    "CaseOutcome",
    "Mismatch",
    "generate_case",
    "spec_for_iteration",
    "minimize_spec",
    "run_case",
    "run_fuzz",
    "write_repro",
]
